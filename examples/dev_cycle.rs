//! The local development cycle (paper Figures 1 and 6): simulate a
//! developer iterating on the `02` kernel under the default, PCH, and
//! YALLA configurations, printing the first build and five edit
//! iterations of each.
//!
//! Run with `cargo run --release --example dev_cycle`.

use yalla::corpus::subject_by_name;
use yalla::sim::BuildConfig;
use yalla::CompilerProfile;
use yalla_bench_helpers::evaluate;

/// Local shim: the bench crate's harness is not a dependency of the
/// facade, so this example carries a tiny local copy of the evaluation
/// call sequence.
mod yalla_bench_helpers {
    use yalla::corpus::Subject;
    use yalla::sim::build::{build_pch, compile_default, compile_using_pch};
    use yalla::sim::pch::PchFile;
    use yalla::sim::CompilerProfile;
    use yalla::{Engine, Options};

    pub struct Eval {
        pub default: yalla::sim::build::CompiledTu,
        pub pch: yalla::sim::build::CompiledTu,
        pub pch_file: PchFile,
        pub yalla: yalla::sim::build::CompiledTu,
        pub wrappers: yalla::sim::build::CompiledTu,
        pub tool_ms: f64,
    }

    pub fn evaluate(subject: &Subject, profile: &CompilerProfile) -> Eval {
        let default =
            compile_default(&subject.vfs, &subject.main_source, profile, &[]).expect("default");
        let pch_refs: Vec<&str> = subject.pch_headers.iter().map(|s| s.as_str()).collect();
        let pch_file = build_pch(&subject.vfs, &pch_refs, profile, &[]).expect("pch");
        let pch = compile_using_pch(&subject.vfs, &subject.main_source, &pch_file, profile, &[])
            .expect("pch compile");
        let options = Options {
            header: subject.header.clone(),
            sources: subject.sources.clone(),
            ..Options::default()
        };
        let result = Engine::new(options.clone())
            .run(&subject.vfs)
            .expect("engine");
        assert!(result.report.verification.passed());
        let mut sub_vfs = subject.vfs.clone();
        result.install_into(&mut sub_vfs, &options);
        let yalla =
            compile_default(&sub_vfs, &subject.main_source, profile, &[]).expect("yalla compile");
        let wrappers = compile_default(&sub_vfs, &options.wrappers_name, profile, &[])
            .expect("wrappers compile");
        Eval {
            tool_ms: default.work.lines as f64 * 13.0 / 1000.0,
            default,
            pch,
            pch_file,
            yalla,
            wrappers,
        }
    }
}

fn main() {
    let profile = CompilerProfile::clang();
    let subject = subject_by_name("02").expect("02 subject");
    println!("simulating the dev cycle on subject `02` (times are virtual ms)\n");

    let eval = evaluate(&subject, &profile);
    let sim = yalla::sim::DevCycleSim::new(profile);
    let configs = [
        (
            BuildConfig::Default,
            eval.default.phases,
            vec![eval.default.object],
            0.0,
        ),
        (
            BuildConfig::Pch,
            eval.pch.phases,
            vec![eval.pch.object],
            eval.pch_file.build.total_ms(),
        ),
        (
            BuildConfig::Yalla,
            eval.yalla.phases,
            vec![eval.yalla.object, eval.wrappers.object],
            eval.tool_ms + eval.wrappers.phases.total_ms(),
        ),
    ];

    for (config, phases, objects, extra) in configs {
        // A nominal 30 ms run keeps the comparison about compile+link.
        let run_cycles = (30.0 * yalla::sim::devcycle::CYCLES_PER_MS) as u64;
        let report = sim.cycle(config, &phases, &objects, run_cycles, extra);
        println!("== {} ==", config.label());
        println!(
            "  first build: {:>8.0} ms (includes one-off {extra:.0} ms)",
            report.initial_ms()
        );
        let mut total = report.initial_ms();
        for i in 1..=5 {
            total += report.iteration_ms();
            println!(
                "  edit #{i}:     {:>8.0} ms  (compile {:.0} + link {:.0} + run {:.0})",
                report.iteration_ms(),
                report.compile_ms,
                report.link_ms,
                report.run_ms
            );
        }
        println!("  total for first build + 5 edits: {total:.0} ms\n");
    }
    println!("(paper: YALLA speeds the steady-state cycle up to 4.68x on average)");
}
