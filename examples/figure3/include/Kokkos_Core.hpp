#pragma once
#include <Kokkos_Impl.hpp>
namespace Kokkos {
  class OpenMP;
  class LayoutRight {};
  template<class D, class L> class View {
  public:
    View();
    int& operator()(int i, int j);
  };
  template<class S> class TeamPolicy {
  public:
    using member_type = Impl::HostThreadTeamMember<S>;
  };
  template<class M> Impl::TeamThreadRangeBoundariesStruct TeamThreadRange(M& m, int n);
  template<class R, class F> void parallel_for(R range, F functor);
}
