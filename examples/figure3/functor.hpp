#pragma once
#include <Kokkos_Core.hpp>
using sp_t = Kokkos::OpenMP;
using member_t = Kokkos::TeamPolicy<sp_t>::member_type;
struct add_y {
  int y;
  Kokkos::View<int**, Kokkos::LayoutRight> x;
  void operator()(member_t &m);
};
