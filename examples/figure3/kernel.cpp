#include "functor.hpp"
void add_y::operator()(member_t &m) {
  int j = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, 5),
    [&](int i) { x(j, i) += y; });
}
