//! Walk the evaluation corpus: print each subject's library family, the
//! header it substitutes, and the scale of the translation unit — the raw
//! material of the paper's Table 3.
//!
//! Run with `cargo run --release --example explore_corpus`.

use yalla::corpus::all_subjects;
use yalla::sim::measure_tu;

fn main() {
    println!(
        "{:<24} {:<12} {:<24} {:>10} {:>9} {:>8}",
        "subject", "suite", "substituted header", "TU lines", "headers", "kernel?"
    );
    for subject in all_subjects() {
        let work = measure_tu(&subject.vfs, &subject.main_source, &[]).expect("subject parses");
        println!(
            "{:<24} {:<12} {:<24} {:>10} {:>9} {:>8}",
            subject.name,
            subject.suite.name(),
            subject.header,
            work.lines,
            work.headers,
            if subject.kernel.is_some() {
                "yes"
            } else {
                "no"
            }
        );
    }
}
