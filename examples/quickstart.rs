//! Quickstart: substitute a header in a small program and print every
//! artifact YALLA generates.
//!
//! Run with `cargo run --example quickstart`.

use yalla::{Engine, Options, Vfs};

fn main() -> Result<(), yalla::YallaError> {
    // A little library: one class, one function that returns a value of a
    // helper struct (the case that needs a *function wrapper*), and a
    // templated algorithm (the case that needs explicit instantiation).
    let mut vfs = Vfs::new();
    vfs.add_file(
        "geometry.hpp",
        r#"#pragma once
namespace geo {
struct BoundingBox { int w; int h; };
class Shape {
public:
  Shape();
  int area() const;
  int perimeter() const;
};
BoundingBox measure(Shape& shape);
template <typename F>
void for_each_vertex(Shape& shape, int count, F visit);
}
"#,
    );
    vfs.add_file(
        "app.cpp",
        r#"#include "geometry.hpp"
int summarize(geo::Shape& shape) {
  int total = shape.area();
  geo::for_each_vertex(shape, 4, [&](int v) { total += v; });
  return total + shape.perimeter();
}
"#,
    );

    let result = Engine::new(Options {
        header: "geometry.hpp".into(),
        sources: vec!["app.cpp".into()],
        ..Options::default()
    })
    .run(&vfs)?;

    println!("==== report ====\n{}", result.report);
    println!(
        "==== yalla_lightweight.hpp ====\n{}",
        result.lightweight_header
    );
    println!("==== yalla_wrappers.cpp ====\n{}", result.wrappers_file);
    println!(
        "==== rewritten app.cpp ====\n{}",
        result.rewritten_sources["app.cpp"]
    );
    Ok(())
}
