//! The paper's running example (Figures 3 → 4): a PyKokkos-generated
//! kernel whose `#include <Kokkos_Core.hpp>` pulls in ~111k lines, reduced
//! to a two-header lightweight TU.
//!
//! Run with `cargo run --release --example kokkos_kernel`.

use yalla::corpus::subject_by_name;
use yalla::{Engine, Options};

fn main() -> Result<(), yalla::YallaError> {
    let subject = subject_by_name("02").expect("the 02 subject exists");
    println!(
        "subject `02`: substituting <{}> out of {} + functor.hpp\n",
        subject.header, subject.main_source
    );

    let result = Engine::new(Options {
        header: subject.header.clone(),
        sources: subject.sources.clone(),
        ..Options::default()
    })
    .run(&subject.vfs)?;

    println!("==== substitution report ====\n{}", result.report);
    println!(
        "engine phases: parse {:.1?}, analyze {:.1?}, plan {:.1?}, generate {:.1?}, verify {:.1?}\n",
        result.timings.parse,
        result.timings.analyze,
        result.timings.plan,
        result.timings.generate,
        result.timings.verify
    );
    println!(
        "==== lightweight header (Figure 4a) ====\n{}",
        result.lightweight_header
    );
    println!(
        "==== rewritten functor.hpp (Figure 4b top) ====\n{}",
        result.rewritten_sources["functor.hpp"]
    );
    println!(
        "==== rewritten kernel.cpp (Figure 4b bottom) ====\n{}",
        result.rewritten_sources["kernel.cpp"]
    );
    for d in &result.plan.diagnostics {
        println!("note: {}", d.message);
    }
    Ok(())
}
