//! A small AST-matcher combinator library.
//!
//! YALLA (the original) is built on Clang's `ASTMatchers`; this module
//! provides the equivalent vocabulary over our AST so analysis passes can
//! be written declaratively. Matchers are predicates over nodes, composed
//! with `and`/`or`, and run over a whole translation unit with
//! [`match_decls`] / [`match_exprs`].
//!
//! # Example
//!
//! ```
//! use yalla_analysis::matchers::{class_decl, has_name, is_definition, match_decls, DeclMatcher};
//! use yalla_cpp::parse::parse_str;
//!
//! let tu = parse_str("class A; class B { };").unwrap();
//! let defs = match_decls(&tu, &class_decl().and(is_definition()));
//! assert_eq!(defs.len(), 1);
//! let named = match_decls(&tu, &class_decl().and(has_name("A")));
//! assert_eq!(named.len(), 1);
//! ```

use yalla_cpp::ast::visit::{walk_tu, Visitor};
use yalla_cpp::ast::{Decl, DeclKind, Expr, ExprKind, TranslationUnit};

/// A predicate over declarations.
pub struct DeclMatcher(Box<dyn Fn(&Decl) -> bool>);

impl DeclMatcher {
    /// Builds a matcher from a closure.
    pub fn new(f: impl Fn(&Decl) -> bool + 'static) -> Self {
        DeclMatcher(Box::new(f))
    }

    /// True when the matcher accepts `decl`.
    pub fn matches(&self, decl: &Decl) -> bool {
        (self.0)(decl)
    }

    /// Both matchers must accept.
    pub fn and(self, other: DeclMatcher) -> DeclMatcher {
        DeclMatcher::new(move |d| self.matches(d) && other.matches(d))
    }

    /// Either matcher may accept.
    pub fn or(self, other: DeclMatcher) -> DeclMatcher {
        DeclMatcher::new(move |d| self.matches(d) || other.matches(d))
    }

    /// Inverts the matcher (`unless` in Clang ASTMatchers parlance).
    pub fn negate(self) -> DeclMatcher {
        DeclMatcher::new(move |d| !self.matches(d))
    }
}

/// A predicate over expressions.
pub struct ExprMatcher(Box<dyn Fn(&Expr) -> bool>);

impl ExprMatcher {
    /// Builds a matcher from a closure.
    pub fn new(f: impl Fn(&Expr) -> bool + 'static) -> Self {
        ExprMatcher(Box::new(f))
    }

    /// True when the matcher accepts `expr`.
    pub fn matches(&self, expr: &Expr) -> bool {
        (self.0)(expr)
    }

    /// Both matchers must accept.
    pub fn and(self, other: ExprMatcher) -> ExprMatcher {
        ExprMatcher::new(move |e| self.matches(e) && other.matches(e))
    }

    /// Either matcher may accept.
    pub fn or(self, other: ExprMatcher) -> ExprMatcher {
        ExprMatcher::new(move |e| self.matches(e) || other.matches(e))
    }
}

// ----- decl matchers (Clang-style names) -----------------------------------

/// Matches class/struct declarations (`cxxRecordDecl`).
pub fn class_decl() -> DeclMatcher {
    DeclMatcher::new(|d| matches!(d.kind, DeclKind::Class(_)))
}

/// Matches function declarations (`functionDecl`).
pub fn function_decl() -> DeclMatcher {
    DeclMatcher::new(|d| matches!(d.kind, DeclKind::Function(_)))
}

/// Matches variable/field declarations (`varDecl`/`fieldDecl`).
pub fn var_decl() -> DeclMatcher {
    DeclMatcher::new(|d| matches!(d.kind, DeclKind::Variable(_)))
}

/// Matches type aliases (`typeAliasDecl`).
pub fn alias_decl() -> DeclMatcher {
    DeclMatcher::new(|d| matches!(d.kind, DeclKind::Alias(_)))
}

/// Matches enums (`enumDecl`).
pub fn enum_decl() -> DeclMatcher {
    DeclMatcher::new(|d| matches!(d.kind, DeclKind::Enum(_)))
}

/// Matches declarations whose declared name equals `name` (`hasName`).
/// The target is interned once up front, so each candidate is an
/// integer compare instead of a string compare against a fresh `String`.
pub fn has_name(name: &str) -> DeclMatcher {
    let name = yalla_cpp::Sym::intern(name);
    DeclMatcher::new(move |d| d.declared_name() == Some(name))
}

/// Matches definitions (classes with bodies, functions with bodies).
pub fn is_definition() -> DeclMatcher {
    DeclMatcher::new(|d| match &d.kind {
        DeclKind::Class(c) => c.is_definition,
        DeclKind::Function(f) => f.body.is_some(),
        _ => false,
    })
}

/// Matches templated declarations (`isTemplateDecl`-ish).
pub fn is_template() -> DeclMatcher {
    DeclMatcher::new(|d| match &d.kind {
        DeclKind::Class(c) => c.template.is_some(),
        DeclKind::Function(f) => f.template.is_some(),
        DeclKind::Alias(a) => a.template.is_some(),
        _ => false,
    })
}

// ----- expr matchers ---------------------------------------------------------

/// Matches call expressions (`callExpr`).
pub fn call_expr() -> ExprMatcher {
    ExprMatcher::new(|e| matches!(e.kind, ExprKind::Call { .. }))
}

/// Matches member-access expressions (`memberExpr`).
pub fn member_expr() -> ExprMatcher {
    ExprMatcher::new(|e| matches!(e.kind, ExprKind::Member { .. }))
}

/// Matches lambda expressions (`lambdaExpr`).
pub fn lambda_expr() -> ExprMatcher {
    ExprMatcher::new(|e| matches!(e.kind, ExprKind::Lambda(_)))
}

/// Matches calls whose callee (possibly qualified) ends with `name`
/// (`callee(functionDecl(hasName(...)))`).
pub fn calls_named(name: &str) -> ExprMatcher {
    let name = name.to_string();
    ExprMatcher::new(move |e| match &e.kind {
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Name(n) => n.base_ident() == name,
            ExprKind::Member { member, .. } => member.ident == name,
            _ => false,
        },
        _ => false,
    })
}

// ----- runners ----------------------------------------------------------------

/// Runs a decl matcher over the whole TU (all nesting levels), returning
/// matching nodes.
pub fn match_decls<'tu>(tu: &'tu TranslationUnit, matcher: &DeclMatcher) -> Vec<&'tu Decl> {
    struct V<'m, 'tu> {
        m: &'m DeclMatcher,
        hits: Vec<&'tu Decl>,
    }
    impl<'m, 'tu> Visitor for V<'m, 'tu> {
        fn visit_decl(&mut self, _d: &Decl) {}
    }
    // The generic Visitor cannot hand back references with the right
    // lifetime, so use the TU's own recursive iterator.
    let mut v = V {
        m: matcher,
        hits: Vec::new(),
    };
    for d in tu.walk() {
        if v.m.matches(d) {
            v.hits.push(d);
        }
    }
    v.hits
}

/// Runs an expr matcher over the whole TU, returning owned clones of the
/// matching expressions (expressions live deep inside bodies; cloning
/// keeps lifetimes simple for callers).
pub fn match_exprs(tu: &TranslationUnit, matcher: &ExprMatcher) -> Vec<Expr> {
    struct V<'m> {
        m: &'m ExprMatcher,
        hits: Vec<Expr>,
    }
    impl Visitor for V<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if self.m.matches(e) {
                self.hits.push(e.clone());
            }
        }
    }
    let mut v = V {
        m: matcher,
        hits: Vec::new(),
    };
    walk_tu(&mut v, tu);
    v.hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::parse::parse_str;

    const SRC: &str = r#"
namespace K {
  class View;
  template<class T> class TeamPolicy { public: int rank(); };
  template<class F> void parallel_for(int n, F f);
}
struct add_y { int y; void operator()(int m); };
void add_y::operator()(int m) {
  K::parallel_for(5, [&](int i) { y += i; });
}
"#;

    #[test]
    fn decl_matchers() {
        let tu = parse_str(SRC).unwrap();
        assert_eq!(match_decls(&tu, &class_decl()).len(), 3);
        assert_eq!(
            match_decls(&tu, &class_decl().and(is_definition())).len(),
            2
        );
        assert_eq!(match_decls(&tu, &class_decl().and(is_template())).len(), 1);
        assert_eq!(match_decls(&tu, &has_name("View")).len(), 1);
        // operator() declaration + out-of-line definition + rank + parallel_for
        assert_eq!(match_decls(&tu, &function_decl()).len(), 4);
        assert_eq!(
            match_decls(&tu, &function_decl().and(is_definition())).len(),
            1
        );
    }

    #[test]
    fn expr_matchers() {
        let tu = parse_str(SRC).unwrap();
        let calls = match_exprs(&tu, &call_expr());
        assert_eq!(calls.len(), 1);
        assert_eq!(match_exprs(&tu, &lambda_expr()).len(), 1);
        assert_eq!(match_exprs(&tu, &calls_named("parallel_for")).len(), 1);
        assert_eq!(match_exprs(&tu, &calls_named("nothing")).len(), 0);
    }

    #[test]
    fn combinators() {
        let tu = parse_str(SRC).unwrap();
        let none = match_decls(&tu, &class_decl().and(function_decl()));
        assert!(none.is_empty());
        let both = match_decls(&tu, &class_decl().or(enum_decl()));
        assert_eq!(both.len(), 3);
        let not_classes = match_decls(&tu, &class_decl().negate());
        assert!(not_classes
            .iter()
            .all(|d| !matches!(d.kind, DeclKind::Class(_))));
    }
}
