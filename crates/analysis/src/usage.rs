//! Usage analysis: which symbols from the target header do the sources use,
//! and *how*.
//!
//! This is the analysis phase of the paper's Figure 5 (`getUsedClasses`,
//! `getUsedFunctions`, `getLambdas`) plus the usage-*nature* recording of
//! §4.1: for every class the collector notes whether it is used by value,
//! by pointer, by reference, or as a template argument; for every function
//! and method it records the call sites with best-effort inferred argument
//! types (needed later for explicit wrapper instantiation).

use std::collections::{BTreeMap, HashMap, HashSet};

use yalla_cpp::ast::{
    ClassDecl, Decl, DeclKind, Expr, ExprKind, ForInit, FunctionDecl, LambdaExpr, QualName, Stmt,
    StmtKind, TranslationUnit, Type, TypeKind,
};
use yalla_cpp::loc::{FileId, Span};
use yalla_cpp::Sym;

use crate::aliases::AliasResolver;
use crate::symbols::{SymbolKind, SymbolTable};

/// How a class is used at some site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UsageNature {
    /// Declared/passed by value (`View v;`) — illegal on incomplete types,
    /// so these sites must be pointerized.
    ByValue,
    /// Behind a pointer — legal on incomplete types.
    Pointer,
    /// Behind a reference — legal on incomplete types.
    Reference,
    /// Mentioned as a template argument.
    TemplateArg,
    /// Named as the target of a type alias in the sources.
    AliasTarget,
}

/// Aggregated usage of one class from the target header.
#[derive(Debug, Clone, Default)]
pub struct ClassUsage {
    /// All the natures observed.
    pub natures: std::collections::BTreeSet<UsageNature>,
    /// Source spans of by-value declarations that must be pointerized.
    pub by_value_spans: Vec<Span>,
}

impl ClassUsage {
    /// True when at least one use requires the complete type by value.
    pub fn has_by_value(&self) -> bool {
        self.natures.contains(&UsageNature::ByValue)
    }
}

/// One call site of a used function or method.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Span of the whole call expression.
    pub span: Span,
    /// Span of just the callee name (rewritten to the wrapper name).
    pub callee_span: Span,
    /// Inferred argument types (None where inference failed).
    pub arg_types: Vec<Option<Type>>,
    /// Explicit template arguments written at the call site, rendered.
    pub explicit_targs: Option<Vec<String>>,
    /// For method calls: the inferred type of the receiver object.
    pub receiver: Option<Type>,
}

/// A free function from the target header used by the sources.
#[derive(Debug, Clone)]
pub struct UsedFunction {
    /// Fully qualified key.
    pub key: String,
    /// The declaration (signature) from the header.
    pub decl: FunctionDecl,
    /// Call sites in the sources.
    pub calls: Vec<CallSite>,
}

/// A method (or call operator, or field) of a target-header class used by
/// the sources.
#[derive(Debug, Clone)]
pub struct MethodUsage {
    /// Key of the class that owns the member.
    pub class_key: String,
    /// Member name as spelled (`league_rank`, `operator()`).
    pub method: String,
    /// Call sites.
    pub calls: Vec<CallSite>,
}

/// A field of a target-header class accessed by the sources.
#[derive(Debug, Clone)]
pub struct FieldUsage {
    /// Key of the class that owns the field.
    pub class_key: String,
    /// Field name.
    pub field: String,
    /// Access spans.
    pub spans: Vec<Span>,
    /// Inferred receiver types at the access sites.
    pub receiver_types: Vec<Type>,
}

/// A lambda passed as an argument to a used function/method.
#[derive(Debug, Clone)]
pub struct LambdaUse {
    /// The lambda itself.
    pub lambda: LambdaExpr,
    /// Span of the lambda expression in the source.
    pub span: Span,
    /// Key of the function whose call receives the lambda, when that
    /// function comes from the target header.
    pub target_function: Option<String>,
    /// Index of the lambda among the call's arguments.
    pub arg_index: usize,
    /// Variables captured from the enclosing scope (free variables of the
    /// body), with their declared types — the functor generator turns
    /// these into fields (§3.4).
    pub captured: Vec<(String, Type)>,
}

/// An enum from the target header used by the sources.
#[derive(Debug, Clone)]
pub struct EnumUsage {
    /// Fully qualified key of the enum.
    pub key: String,
    /// The enum declaration (for underlying type and enumerator values).
    pub decl: yalla_cpp::ast::EnumDecl,
    /// Spans of expressions naming an enumerator (`Layout::Right`),
    /// with the enumerator name.
    pub constants: Vec<(Span, String)>,
    /// Spans of declarations whose type names the enum.
    pub type_decl_spans: Vec<Span>,
}

/// Everything the sources use from the target header.
#[derive(Debug, Clone, Default)]
pub struct UsageReport {
    /// Used classes by key.
    pub classes: BTreeMap<String, ClassUsage>,
    /// Used free functions by key.
    pub functions: BTreeMap<String, UsedFunction>,
    /// Used methods by `(class_key, method)`.
    pub methods: BTreeMap<(String, String), MethodUsage>,
    /// Used fields by `(class_key, field)`.
    pub fields: BTreeMap<(String, String), FieldUsage>,
    /// Lambdas passed to used functions.
    pub lambdas: Vec<LambdaUse>,
    /// Used enums by key.
    pub enums: BTreeMap<String, EnumUsage>,
}

impl UsageReport {
    /// Collects usage of symbols declared in `target_files` by code living
    /// in `source_files`.
    pub fn collect(
        tu: &TranslationUnit,
        table: &SymbolTable,
        target_files: &HashSet<FileId>,
        source_files: &HashSet<FileId>,
    ) -> Self {
        let _span = yalla_obs::span("analysis", "usage_collection");
        let mut c = Collector {
            table,
            aliases: AliasResolver::new(table),
            target_files,
            source_files,
            report: UsageReport::default(),
            scopes: Vec::new(),
            namespace_ctx: Vec::new(),
        };
        c.walk_decls(&tu.decls);
        let used = c.report.classes.len()
            + c.report.functions.len()
            + c.report.methods.len()
            + c.report.fields.len()
            + c.report.enums.len();
        yalla_obs::count(yalla_obs::metrics::names::USED_SYMBOLS, used as i64);
        c.report
    }

    /// True when nothing from the target header is used.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
            && self.functions.is_empty()
            && self.methods.is_empty()
            && self.fields.is_empty()
            && self.enums.is_empty()
    }

    /// Merges another TU's usage of the *same* target header into this
    /// report. Symbol entries union by key; call sites, spans, and
    /// lambdas append in merge order — so merging reports in a fixed TU
    /// order yields a deterministic combined report. This is how a
    /// multi-root session folds per-TU usage into one plan: every key
    /// names a header-side symbol, so the union resolves against any
    /// TU's symbol table that includes the header.
    pub fn merge_from(&mut self, other: UsageReport) {
        use std::collections::btree_map::Entry;
        for (key, usage) in other.classes {
            let entry = self.classes.entry(key).or_default();
            entry.natures.extend(usage.natures);
            entry.by_value_spans.extend(usage.by_value_spans);
        }
        for (key, f) in other.functions {
            match self.functions.entry(key) {
                Entry::Occupied(mut e) => e.get_mut().calls.extend(f.calls),
                Entry::Vacant(e) => {
                    e.insert(f);
                }
            }
        }
        for (key, m) in other.methods {
            match self.methods.entry(key) {
                Entry::Occupied(mut e) => e.get_mut().calls.extend(m.calls),
                Entry::Vacant(e) => {
                    e.insert(m);
                }
            }
        }
        for (key, f) in other.fields {
            match self.fields.entry(key) {
                Entry::Occupied(mut e) => {
                    let existing = e.get_mut();
                    existing.spans.extend(f.spans);
                    existing.receiver_types.extend(f.receiver_types);
                }
                Entry::Vacant(e) => {
                    e.insert(f);
                }
            }
        }
        self.lambdas.extend(other.lambdas);
        for (key, en) in other.enums {
            match self.enums.entry(key) {
                Entry::Occupied(mut e) => {
                    let existing = e.get_mut();
                    existing.constants.extend(en.constants);
                    existing.type_decl_spans.extend(en.type_decl_spans);
                }
                Entry::Vacant(e) => {
                    e.insert(en);
                }
            }
        }
    }
}

struct Collector<'a> {
    table: &'a SymbolTable,
    aliases: AliasResolver<'a>,
    target_files: &'a HashSet<FileId>,
    source_files: &'a HashSet<FileId>,
    report: UsageReport,
    /// Lexical scopes: name → declared type.
    scopes: Vec<HashMap<String, Type>>,
    namespace_ctx: Vec<String>,
}

impl<'a> Collector<'a> {
    fn in_sources(&self, span: Span) -> bool {
        self.source_files.contains(&span.file)
    }

    /// Resolves a written type name to the key of a class declared in the
    /// target header (following aliases). Returns `None` for anything else.
    fn target_class_key(&self, name: &QualName) -> Option<String> {
        let key = self.resolve_in_context(name)?;
        let class_key = self.aliases.resolve_key_to_class(&key)?;
        let sym = self.table.get(&class_key)?;
        if self.target_files.contains(&sym.file) {
            Some(class_key)
        } else {
            None
        }
    }

    /// Resolves `name` first as written, then against enclosing namespaces.
    fn resolve_in_context(&self, name: &QualName) -> Option<String> {
        if let Some(sym) = self.table.resolve(&name.key()) {
            return Some(sym.key.clone());
        }
        let mut ctx = self.namespace_ctx.clone();
        while !ctx.is_empty() {
            let candidate = format!("{}::{}", ctx.join("::"), name.key());
            if let Some(sym) = self.table.resolve(&candidate) {
                return Some(sym.key.clone());
            }
            ctx.pop();
        }
        None
    }

    fn record_class(&mut self, key: String, nature: UsageNature, span: Span) {
        let entry = self.report.classes.entry(key).or_default();
        entry.natures.insert(nature);
        if nature == UsageNature::ByValue {
            entry.by_value_spans.push(span);
        }
    }

    /// Records every class mentioned in a written type. The top-level
    /// shape determines the nature; nested template arguments are
    /// `TemplateArg` uses.
    fn record_type(&mut self, ty: &Type, span: Span, top_nature_override: Option<UsageNature>) {
        let top = match &ty.kind {
            TypeKind::Named(_) => Some(UsageNature::ByValue),
            TypeKind::Pointer(_) => Some(UsageNature::Pointer),
            TypeKind::LValueRef(_) | TypeKind::RValueRef(_) => Some(UsageNature::Reference),
            _ => None,
        };
        let top = top_nature_override.or(top);
        // Core class.
        if let Some(core) = ty.core_name() {
            if let Some(key) = self.target_class_key(core) {
                self.record_class(key, top.unwrap_or(UsageNature::ByValue), span);
            }
            self.maybe_record_enum_type(core, span);
            // Template arguments anywhere in the name.
            let mut arg_names = Vec::new();
            core_template_arg_names(core, &mut arg_names);
            for n in arg_names {
                if let Some(key) = self.target_class_key(&n) {
                    self.record_class(key, UsageNature::TemplateArg, span);
                }
            }
        }
    }

    // ----- declaration walking ---------------------------------------------

    fn walk_decls(&mut self, decls: &[Decl]) {
        for d in decls {
            self.walk_decl(d);
        }
    }

    #[allow(clippy::collapsible_match)] // arm-level span guards read better uncollapsed
    fn walk_decl(&mut self, decl: &Decl) {
        match &decl.kind {
            DeclKind::Namespace(ns) => {
                self.namespace_ctx.push(ns.name.clone());
                self.walk_decls(&ns.decls);
                self.namespace_ctx.pop();
            }
            DeclKind::Class(c) => {
                if !self.in_sources(decl.span) {
                    return;
                }
                for m in &c.members {
                    match &m.decl.kind {
                        DeclKind::Variable(v) => {
                            self.record_type(&v.ty, m.decl.span, None);
                        }
                        DeclKind::Function(f) => {
                            self.walk_signature(f, m.decl.span);
                            if f.body.is_some() {
                                self.walk_method_body(f, Some(c));
                            }
                        }
                        DeclKind::Alias(a) => {
                            self.record_type(
                                &a.target,
                                m.decl.span,
                                Some(UsageNature::AliasTarget),
                            );
                        }
                        _ => {}
                    }
                }
            }
            DeclKind::Alias(a) => {
                if self.in_sources(decl.span) {
                    self.record_type(&a.target, decl.span, Some(UsageNature::AliasTarget));
                }
            }
            DeclKind::UsingDecl(n) => {
                if self.in_sources(decl.span) {
                    if let Some(key) = self.target_class_key(n) {
                        self.record_class(key, UsageNature::AliasTarget, decl.span);
                    }
                }
            }
            DeclKind::Function(f) => {
                if !self.in_sources(decl.span) {
                    return;
                }
                self.walk_signature(f, decl.span);
                if f.body.is_some() {
                    // Out-of-line method definition: bring the class's
                    // fields into scope.
                    let class = f.qualifier.as_ref().and_then(|q| {
                        let key = self.resolve_in_context(q)?;
                        match &self.table.get(&key)?.kind {
                            SymbolKind::Class(c) => Some((**c).clone()),
                            _ => None,
                        }
                    });
                    self.walk_method_body(f, class.as_ref());
                }
            }
            DeclKind::Variable(v) => {
                if self.in_sources(decl.span) {
                    self.record_type(&v.ty, decl.span, None);
                    if let Some(init) = &v.init {
                        self.scopes.push(HashMap::new());
                        self.walk_expr(init, None);
                        self.scopes.pop();
                    }
                }
            }
            _ => {}
        }
    }

    fn walk_signature(&mut self, f: &FunctionDecl, span: Span) {
        if let Some(ret) = &f.ret {
            self.record_type(ret, span, None);
        }
        for p in &f.params {
            self.record_type(&p.ty, span, None);
        }
    }

    fn walk_method_body(&mut self, f: &FunctionDecl, class: Option<&ClassDecl>) {
        let mut scope = HashMap::new();
        if let Some(c) = class {
            for (_, field) in c.fields() {
                scope.insert(field.name.clone(), field.ty.clone());
            }
        }
        for p in &f.params {
            if !p.name.is_empty() {
                scope.insert(p.name.clone(), p.ty.clone());
            }
        }
        self.scopes.push(scope);
        if let Some(body) = &f.body {
            for s in &body.stmts {
                self.walk_stmt(s);
            }
        }
        self.scopes.pop();
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Expr(e) => self.walk_expr(e, None),
            StmtKind::Decl(v) => {
                if self.in_sources(stmt.span) {
                    self.record_type(&v.ty, stmt.span, None);
                }
                if let Some(init) = &v.init {
                    self.walk_expr(init, None);
                }
                self.declare_local(&v.name, &v.ty);
            }
            StmtKind::Block(b) => {
                self.scopes.push(HashMap::new());
                for s in &b.stmts {
                    self.walk_stmt(s);
                }
                self.scopes.pop();
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.walk_expr(cond, None);
                self.walk_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.walk_stmt(e);
                }
            }
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => {
                self.scopes.push(HashMap::new());
                match init.as_ref() {
                    ForInit::Decl(v) => {
                        if let Some(i) = &v.init {
                            self.walk_expr(i, None);
                        }
                        self.declare_local(&v.name, &v.ty);
                    }
                    ForInit::Expr(e) => self.walk_expr(e, None),
                    ForInit::Empty => {}
                }
                if let Some(c) = cond {
                    self.walk_expr(c, None);
                }
                if let Some(i) = inc {
                    self.walk_expr(i, None);
                }
                self.walk_stmt(body);
                self.scopes.pop();
            }
            StmtKind::RangeFor { var, range, body } => {
                self.scopes.push(HashMap::new());
                self.walk_expr(range, None);
                self.declare_local(&var.name, &var.ty);
                self.walk_stmt(body);
                self.scopes.pop();
            }
            StmtKind::While { cond, body } => {
                self.walk_expr(cond, None);
                self.walk_stmt(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.walk_stmt(body);
                self.walk_expr(cond, None);
            }
            StmtKind::Return(Some(e)) => self.walk_expr(e, None),
            _ => {}
        }
    }

    fn declare_local(&mut self, name: &str, ty: &Type) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), ty.clone());
        }
    }

    fn lookup_local(&self, name: &str) -> Option<&Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    // ----- expression walking ------------------------------------------------

    /// Walks an expression. `enclosing_call` carries the key of the
    /// target-header function whose argument list we are inside (for
    /// lambda attribution) together with the argument index.
    fn walk_expr(&mut self, expr: &Expr, enclosing_call: Option<(&str, usize)>) {
        match &expr.kind {
            ExprKind::Call { callee, args } => {
                let fn_key = self.handle_call(callee, args, expr.span);
                for (i, a) in args.iter().enumerate() {
                    self.walk_expr(a, fn_key.as_deref().map(|k| (k, i)));
                }
            }
            ExprKind::Member {
                base,
                member,
                arrow: _,
            } => {
                // Bare member access (not a call — calls are handled above):
                // a field use.
                if let Some(class_key) = self.infer_class_of(base) {
                    if self.is_target_class(&class_key) && self.in_sources(expr.span) {
                        let receiver = self.infer_type(base);
                        let entry = self
                            .report
                            .fields
                            .entry((class_key.clone(), member.ident.clone()))
                            .or_insert_with(|| FieldUsage {
                                class_key,
                                field: member.ident.clone(),
                                spans: Vec::new(),
                                receiver_types: Vec::new(),
                            });
                        entry.spans.push(expr.span);
                        if let Some(r) = receiver {
                            entry.receiver_types.push(r);
                        }
                    }
                }
                self.walk_expr(base, None);
            }
            ExprKind::Lambda(l) => {
                if self.in_sources(expr.span) {
                    let captured = self.lambda_captures(l);
                    self.report.lambdas.push(LambdaUse {
                        lambda: l.clone(),
                        span: expr.span,
                        target_function: enclosing_call.map(|(k, _)| k.to_string()),
                        arg_index: enclosing_call.map(|(_, i)| i).unwrap_or(0),
                        captured,
                    });
                }
                self.scopes.push(
                    l.params
                        .iter()
                        .filter(|(_, n)| !n.is_empty())
                        .map(|(t, n)| (n.clone(), t.clone()))
                        .collect(),
                );
                for s in &l.body.stmts {
                    self.walk_stmt(s);
                }
                self.scopes.pop();
            }
            ExprKind::Unary { expr: e, .. }
            | ExprKind::Paren(e)
            | ExprKind::Delete { expr: e, .. } => self.walk_expr(e, enclosing_call),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs, None);
                self.walk_expr(rhs, None);
            }
            ExprKind::Conditional {
                cond,
                then_expr,
                else_expr,
            } => {
                self.walk_expr(cond, None);
                self.walk_expr(then_expr, None);
                self.walk_expr(else_expr, None);
            }
            ExprKind::Index { base, index } => {
                self.walk_expr(base, None);
                self.walk_expr(index, None);
            }
            ExprKind::New { ty, args } => {
                if self.in_sources(expr.span) {
                    // `new T` requires the complete type but the result is
                    // a pointer; record as by-value (needs definition).
                    self.record_type(ty, expr.span, Some(UsageNature::ByValue));
                }
                for a in args {
                    self.walk_expr(a, None);
                }
            }
            ExprKind::Cast { ty, expr: e, .. } => {
                if self.in_sources(expr.span) {
                    self.record_type(ty, expr.span, None);
                }
                self.walk_expr(e, None);
            }
            ExprKind::BraceInit { ty, args } => {
                if let Some(t) = ty {
                    if self.in_sources(expr.span) {
                        self.record_type(t, expr.span, Some(UsageNature::ByValue));
                    }
                }
                for a in args {
                    self.walk_expr(a, None);
                }
            }
            ExprKind::Name(n) => {
                self.maybe_record_enum_constant(n, expr.span);
                // A bare name use of a target *function* (passed as a
                // function pointer, say) still counts as a use.
                if self.in_sources(expr.span) && self.lookup_local(&n.key()).is_none() {
                    if let Some(key) = self.resolve_in_context(n) {
                        if let Some(sym) = self.table.get(&key) {
                            if matches!(sym.kind, SymbolKind::Function(_))
                                && self.target_files.contains(&sym.file)
                            {
                                self.record_function_use(&key, None, expr.span, expr.span, &[]);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Handles a call expression; returns the key of the called
    /// target-header function (for lambda attribution).
    fn handle_call(&mut self, callee: &Expr, args: &[Expr], call_span: Span) -> Option<String> {
        match &callee.kind {
            ExprKind::Name(name) => {
                // Object with overloaded operator()?
                let base = name.key();
                if let Some(ty) = self.lookup_local(&base).cloned() {
                    if let Some(class_key) = self.class_key_of_type(&ty) {
                        if self.is_target_class(&class_key) && self.in_sources(call_span) {
                            self.record_method_use(
                                &class_key,
                                "operator()",
                                call_span,
                                callee.span,
                                args,
                                Some(ty.clone()),
                            );
                        }
                    }
                    return None;
                }
                // Free function from the target header?
                let key = self.resolve_in_context(name)?;
                let sym = self.table.get(&key)?;
                if !matches!(sym.kind, SymbolKind::Function(_)) {
                    return None;
                }
                if self.target_files.contains(&sym.file) && self.in_sources(call_span) {
                    let explicit: Vec<String> = name
                        .last()
                        .args
                        .as_ref()
                        .map(|a| a.iter().map(|x| x.to_string()).collect())
                        .unwrap_or_default();
                    self.record_function_use(
                        &key,
                        if explicit.is_empty() {
                            None
                        } else {
                            Some(explicit)
                        },
                        call_span,
                        callee.span,
                        args,
                    );
                    return Some(key);
                }
                None
            }
            ExprKind::Member { base, member, .. } => {
                let class_key = self.infer_class_of(base)?;
                if self.is_target_class(&class_key) && self.in_sources(call_span) {
                    let receiver = self.infer_type(base);
                    self.record_method_use(
                        &class_key,
                        &member.ident,
                        call_span,
                        callee.span,
                        args,
                        receiver,
                    );
                }
                self.walk_expr(base, None);
                None
            }
            ExprKind::Paren(inner) | ExprKind::Unary { expr: inner, .. } => {
                self.handle_call(inner, args, call_span)
            }
            other => {
                // Walk exotic callees for completeness.
                let dummy = Expr::new(other.clone(), callee.span);
                self.walk_expr(&dummy, None);
                None
            }
        }
    }

    fn record_function_use(
        &mut self,
        key: &str,
        explicit_targs: Option<Vec<String>>,
        span: Span,
        callee_span: Span,
        args: &[Expr],
    ) {
        let decl = match self.table.get(key).map(|s| &s.kind) {
            Some(SymbolKind::Function(f)) => (**f).clone(),
            _ => return,
        };
        let arg_types = args.iter().map(|a| self.infer_type(a)).collect();
        self.report
            .functions
            .entry(key.to_string())
            .or_insert_with(|| UsedFunction {
                key: key.to_string(),
                decl,
                calls: Vec::new(),
            })
            .calls
            .push(CallSite {
                span,
                callee_span,
                arg_types,
                explicit_targs,
                receiver: None,
            });
    }

    fn record_method_use(
        &mut self,
        class_key: &str,
        method: &str,
        span: Span,
        callee_span: Span,
        args: &[Expr],
        receiver: Option<Type>,
    ) {
        let arg_types = args.iter().map(|a| self.infer_type(a)).collect();
        self.report
            .methods
            .entry((class_key.to_string(), method.to_string()))
            .or_insert_with(|| MethodUsage {
                class_key: class_key.to_string(),
                method: method.to_string(),
                calls: Vec::new(),
            })
            .calls
            .push(CallSite {
                span,
                callee_span,
                arg_types,
                explicit_targs: None,
                receiver,
            });
    }

    /// Computes the free variables of a lambda's body that refer to the
    /// enclosing scope, in first-use order, with their declared types.
    fn lambda_captures(&self, l: &LambdaExpr) -> Vec<(String, Type)> {
        // The walk speaks interned `Sym`s — the bound set and first-use
        // list allocate nothing per occurrence; names become `String`s
        // only at the captured-variable boundary below.
        let mut bound: HashSet<Sym> = l.params.iter().map(|(_, n)| Sym::intern(n)).collect();
        let mut captured: Vec<(String, Type)> = Vec::new();
        let mut order = Vec::new();
        collect_free_names(&l.body.stmts, &mut bound, &mut order);
        for name in order {
            if captured.iter().any(|(n, _)| name == n.as_str()) {
                continue;
            }
            if let Some(ty) = self.lookup_local(name.as_str()) {
                captured.push((name.as_str().to_string(), ty.clone()));
            }
        }
        captured
    }

    /// Records a type usage of a target-header enum.
    fn maybe_record_enum_type(&mut self, name: &QualName, span: Span) {
        if !self.in_sources(span) {
            return;
        }
        let Some(key) = self.resolve_in_context(name) else {
            return;
        };
        let Some(sym) = self.table.get(&key) else {
            return;
        };
        let SymbolKind::Enum(decl) = &sym.kind else {
            return;
        };
        if !self.target_files.contains(&sym.file) {
            return;
        }
        let decl = (**decl).clone();
        self.report
            .enums
            .entry(key.clone())
            .or_insert_with(|| EnumUsage {
                key,
                decl,
                constants: Vec::new(),
                type_decl_spans: Vec::new(),
            })
            .type_decl_spans
            .push(span);
    }

    /// Records `Enum::Constant` expression uses.
    fn maybe_record_enum_constant(&mut self, name: &QualName, span: Span) {
        if name.segs.len() < 2 || !self.in_sources(span) {
            return;
        }
        let prefix = QualName {
            global: name.global,
            segs: name.segs[..name.segs.len() - 1].to_vec(),
        };
        let constant = name.base_ident().to_string();
        let Some(key) = self.resolve_in_context(&prefix) else {
            return;
        };
        let Some(sym) = self.table.get(&key) else {
            return;
        };
        // Two spellings reach an enumerator: `Enum::CONST` (prefix is the
        // enum) and — for unscoped enums — `Namespace::CONST` (the
        // constant leaks into the enclosing namespace).
        let (key, decl) = match &sym.kind {
            SymbolKind::Enum(decl)
                if self.target_files.contains(&sym.file)
                    && decl.enumerators.iter().any(|e| e.name == constant) =>
            {
                (sym.key.clone(), (**decl).clone())
            }
            SymbolKind::Namespace => {
                let ns_key = sym.key.clone();
                let Some(found) = self.table.iter().find_map(|s| match &s.kind {
                    SymbolKind::Enum(d)
                        if !d.scoped
                            && s.scope.join("::") == ns_key
                            && self.target_files.contains(&s.file)
                            && d.enumerators.iter().any(|e| e.name == constant) =>
                    {
                        Some((s.key.clone(), (**d).clone()))
                    }
                    _ => None,
                }) else {
                    return;
                };
                found
            }
            _ => return,
        };
        self.report
            .enums
            .entry(key.clone())
            .or_insert_with(|| EnumUsage {
                key,
                decl,
                constants: Vec::new(),
                type_decl_spans: Vec::new(),
            })
            .constants
            .push((span, constant));
    }

    fn is_target_class(&self, key: &str) -> bool {
        self.table
            .get(key)
            .is_some_and(|s| self.target_files.contains(&s.file))
    }

    /// The (alias-resolved) class key of a written type, if any.
    fn class_key_of_type(&self, ty: &Type) -> Option<String> {
        let resolved = self.aliases.resolve_type(ty);
        let core = resolved.core_name()?;
        let key = self.resolve_in_context(core)?;
        self.aliases.resolve_key_to_class(&key)
    }

    /// Best-effort: the class key of the object an expression denotes.
    fn infer_class_of(&self, expr: &Expr) -> Option<String> {
        let ty = self.infer_type(expr)?;
        self.class_key_of_type(&ty)
    }

    /// Best-effort type inference for call-site arguments.
    fn infer_type(&self, expr: &Expr) -> Option<Type> {
        match &expr.kind {
            ExprKind::Int(_) => Some(Type::builtin(yalla_cpp::ast::Builtin::Int)),
            ExprKind::Float(_) => Some(Type::builtin(yalla_cpp::ast::Builtin::Double)),
            ExprKind::Bool(_) => Some(Type::builtin(yalla_cpp::ast::Builtin::Bool)),
            ExprKind::Name(n) => {
                if let Some(t) = self.lookup_local(&n.key()) {
                    return Some(t.clone());
                }
                let key = self.resolve_in_context(n)?;
                match &self.table.get(&key)?.kind {
                    SymbolKind::Variable(t) => Some((**t).clone()),
                    _ => None,
                }
            }
            ExprKind::Paren(e) => self.infer_type(e),
            ExprKind::Unary { op, expr: e } => {
                let t = self.infer_type(e)?;
                match op {
                    yalla_cpp::ast::UnaryOp::Deref => match t.kind {
                        TypeKind::Pointer(inner) => Some(*inner),
                        _ => Some(t),
                    },
                    yalla_cpp::ast::UnaryOp::AddrOf => Some(Type::pointer(t)),
                    _ => Some(t),
                }
            }
            ExprKind::Member { base, member, .. } => {
                let class_key = self.infer_class_of(base)?;
                let class = match &self.table.get(&class_key)?.kind {
                    SymbolKind::Class(c) => c,
                    _ => return None,
                };
                class
                    .fields()
                    .find(|(_, f)| f.name == member.ident)
                    .map(|(_, f)| f.ty.clone())
            }
            ExprKind::Call { callee, .. } => {
                // Return type of the called function, when resolvable.
                if let ExprKind::Name(n) = &callee.kind {
                    let key = self.resolve_in_context(n)?;
                    if let SymbolKind::Function(f) = &self.table.get(&key)?.kind {
                        return f.ret.clone();
                    }
                }
                None
            }
            ExprKind::New { ty, .. } => Some(Type::pointer(ty.clone())),
            ExprKind::Cast { ty, .. } => Some(ty.clone()),
            ExprKind::BraceInit { ty, .. } => ty.clone(),
            _ => None,
        }
    }
}

/// Collects unqualified names used in `stmts` that are not bound locally,
/// in first-use order. `bound` starts with the lambda parameters and grows
/// with local declarations. Both collections hold interned `Sym`s: the
/// bound set is order-insensitive membership and the out list preserves
/// first-use order by position, so interning changes no observable order.
#[allow(clippy::collapsible_match)] // arm-level guards read better uncollapsed
fn collect_free_names(stmts: &[Stmt], bound: &mut HashSet<Sym>, out: &mut Vec<Sym>) {
    #[allow(clippy::collapsible_match)]
    fn expr_names(e: &Expr, bound: &HashSet<Sym>, out: &mut Vec<Sym>) {
        match &e.kind {
            ExprKind::Name(n) => {
                if n.segs.len() == 1 && !n.global {
                    let name = Sym::intern(&n.segs[0].ident);
                    if !bound.contains(&name) {
                        out.push(name);
                    }
                }
            }
            ExprKind::Unary { expr, .. }
            | ExprKind::Paren(expr)
            | ExprKind::Delete { expr, .. } => expr_names(expr, bound, out),
            ExprKind::Binary { lhs, rhs, .. } => {
                expr_names(lhs, bound, out);
                expr_names(rhs, bound, out);
            }
            ExprKind::Conditional {
                cond,
                then_expr,
                else_expr,
            } => {
                expr_names(cond, bound, out);
                expr_names(then_expr, bound, out);
                expr_names(else_expr, bound, out);
            }
            ExprKind::Call { callee, args } => {
                // Callees that are unqualified names are only captures when
                // they denote objects (operator() calls); qualified callees
                // are functions. We conservatively record unqualified ones —
                // the collector's scope lookup filters out non-locals.
                expr_names(callee, bound, out);
                for a in args {
                    expr_names(a, bound, out);
                }
            }
            ExprKind::Member { base, .. } => expr_names(base, bound, out),
            ExprKind::Index { base, index } => {
                expr_names(base, bound, out);
                expr_names(index, bound, out);
            }
            ExprKind::Cast { expr, .. } => expr_names(expr, bound, out),
            ExprKind::New { args, .. } | ExprKind::BraceInit { args, .. } => {
                for a in args {
                    expr_names(a, bound, out);
                }
            }
            ExprKind::Lambda(inner) => {
                // Nested lambda: its free names are free here too, minus
                // its own params.
                let mut inner_bound = bound.clone();
                inner_bound.extend(inner.params.iter().map(|(_, n)| Sym::intern(n)));
                collect_free_names(&inner.body.stmts, &mut inner_bound, out);
            }
            _ => {}
        }
    }
    for s in stmts {
        match &s.kind {
            StmtKind::Expr(e) => expr_names(e, bound, out),
            StmtKind::Decl(v) => {
                if let Some(i) = &v.init {
                    expr_names(i, bound, out);
                }
                bound.insert(Sym::intern(&v.name));
            }
            StmtKind::Block(b) => collect_free_names(&b.stmts, &mut bound.clone(), out),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                expr_names(cond, bound, out);
                collect_free_names(std::slice::from_ref(then_branch), &mut bound.clone(), out);
                if let Some(e) = else_branch {
                    collect_free_names(std::slice::from_ref(e), &mut bound.clone(), out);
                }
            }
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => {
                let mut inner = bound.clone();
                match init.as_ref() {
                    ForInit::Decl(v) => {
                        if let Some(i) = &v.init {
                            expr_names(i, &inner, out);
                        }
                        inner.insert(Sym::intern(&v.name));
                    }
                    ForInit::Expr(e) => expr_names(e, &inner, out),
                    ForInit::Empty => {}
                }
                if let Some(c) = cond {
                    expr_names(c, &inner, out);
                }
                if let Some(i) = inc {
                    expr_names(i, &inner, out);
                }
                collect_free_names(std::slice::from_ref(body), &mut inner, out);
            }
            StmtKind::RangeFor { var, range, body } => {
                expr_names(range, bound, out);
                let mut inner = bound.clone();
                inner.insert(Sym::intern(&var.name));
                collect_free_names(std::slice::from_ref(body), &mut inner, out);
            }
            StmtKind::While { cond, body } => {
                expr_names(cond, bound, out);
                collect_free_names(std::slice::from_ref(body), &mut bound.clone(), out);
            }
            StmtKind::DoWhile { body, cond } => {
                collect_free_names(std::slice::from_ref(body), &mut bound.clone(), out);
                expr_names(cond, bound, out);
            }
            StmtKind::Return(Some(e)) => expr_names(e, bound, out),
            _ => {}
        }
    }
}

/// Collects the names appearing in template arguments anywhere in `name`.
fn core_template_arg_names(name: &QualName, out: &mut Vec<QualName>) {
    for seg in &name.segs {
        if let Some(args) = &seg.args {
            for a in args {
                if let yalla_cpp::ast::TemplateArg::Type(t) = a {
                    if let Some(n) = t.core_name() {
                        out.push(n.clone());
                        core_template_arg_names(n, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::frontend::Frontend;
    use yalla_cpp::vfs::Vfs;

    /// Analyzes `source` against the standard mini-Kokkos header.
    pub(super) fn analyze_pair(source: &str) -> UsageReport {
        analyze(KOKKOS_MINI, source)
    }

    /// Parses a header + source pair and runs usage collection with the
    /// header as the substitution target.
    pub(super) fn analyze(header: &str, source: &str) -> UsageReport {
        let mut vfs = Vfs::new();
        let h = vfs.add_file("lib.hpp", header);
        let s = vfs.add_file("main.cpp", format!("#include \"lib.hpp\"\n{source}"));
        let fe = Frontend::new(vfs);
        let tu = fe.parse_translation_unit("main.cpp").unwrap();
        let table = SymbolTable::build(&tu.ast);
        let targets: HashSet<FileId> = [h].into_iter().collect();
        let sources: HashSet<FileId> = [s].into_iter().collect();
        UsageReport::collect(&tu.ast, &table, &targets, &sources)
    }

    pub(super) const KOKKOS_MINI: &str = r#"
namespace Kokkos {
  class OpenMP;
  class LayoutRight {};
  template<class D, class L> class View {
  public:
    View();
    int& operator()(int i, int j);
    int extent(int d) const;
    int rank;
  };
  template<class P> class HostThreadTeamMember {
  public:
    int league_rank() const;
  };
  template<class S> class TeamPolicy {
  public:
    using member_type = HostThreadTeamMember<S>;
  };
  struct BoundsStruct { int lo; int hi; };
  template<class M> BoundsStruct TeamThreadRange(M& m, int n);
  template<class R, class F> void parallel_for(R range, F functor);
}
"#;

    #[test]
    fn field_and_value_usage_natures() {
        let r = analyze(
            KOKKOS_MINI,
            "struct add_y { int y; Kokkos::View<int**, Kokkos::LayoutRight> x; };",
        );
        let view = &r.classes["Kokkos::View"];
        assert!(view.has_by_value());
        assert_eq!(view.by_value_spans.len(), 1);
        let layout = &r.classes["Kokkos::LayoutRight"];
        assert!(layout.natures.contains(&UsageNature::TemplateArg));
        assert!(!layout.has_by_value());
    }

    #[test]
    fn pointer_and_reference_natures() {
        let r = analyze(
            KOKKOS_MINI,
            "void f(Kokkos::View<int, int>* p, Kokkos::View<int, int>& q);",
        );
        let view = &r.classes["Kokkos::View"];
        assert!(view.natures.contains(&UsageNature::Pointer));
        assert!(view.natures.contains(&UsageNature::Reference));
        assert!(!view.has_by_value());
    }

    #[test]
    fn alias_target_usage() {
        let r = analyze(KOKKOS_MINI, "using sp_t = Kokkos::OpenMP;");
        assert!(r.classes["Kokkos::OpenMP"]
            .natures
            .contains(&UsageNature::AliasTarget));
    }

    #[test]
    fn member_type_alias_resolves_to_host_member() {
        let r = analyze(
            KOKKOS_MINI,
            "using sp_t = Kokkos::OpenMP;\nusing member_t = Kokkos::TeamPolicy<sp_t>::member_type;",
        );
        // member_type resolves to HostThreadTeamMember (the paper's §3.2.1).
        assert!(
            r.classes.contains_key("Kokkos::HostThreadTeamMember"),
            "classes: {:?}",
            r.classes.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn free_function_call_recorded() {
        let r = analyze(
            KOKKOS_MINI,
            "void go() { Kokkos::View<int,int>* v; Kokkos::parallel_for(1, 2); }",
        );
        let pf = &r.functions["Kokkos::parallel_for"];
        assert_eq!(pf.calls.len(), 1);
        assert_eq!(pf.calls[0].arg_types.len(), 2);
    }

    #[test]
    fn figure_3_method_calls() {
        let source = r#"
using sp_t = Kokkos::OpenMP;
using member_t = Kokkos::TeamPolicy<sp_t>::member_type;
struct add_y {
  int y;
  Kokkos::View<int**, Kokkos::LayoutRight> x;
  void operator()(member_t &m);
};
void add_y::operator()(member_t &m) {
  int j = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, 5),
    [&](int i) { x(j, i) += y; });
}
"#;
        let r = analyze(KOKKOS_MINI, source);
        // league_rank on the (alias-resolved) member class.
        assert!(
            r.methods
                .contains_key(&("Kokkos::HostThreadTeamMember".into(), "league_rank".into())),
            "methods: {:?}",
            r.methods.keys().collect::<Vec<_>>()
        );
        // x(j, i) — operator() on the View.
        assert!(
            r.methods
                .contains_key(&("Kokkos::View".into(), "operator()".into())),
            "methods: {:?}",
            r.methods.keys().collect::<Vec<_>>()
        );
        // Both free functions.
        assert!(r.functions.contains_key("Kokkos::TeamThreadRange"));
        assert!(r.functions.contains_key("Kokkos::parallel_for"));
        // The lambda is attributed to parallel_for as argument 1.
        assert_eq!(r.lambdas.len(), 1);
        assert_eq!(
            r.lambdas[0].target_function.as_deref(),
            Some("Kokkos::parallel_for")
        );
        assert_eq!(r.lambdas[0].arg_index, 1);
    }

    #[test]
    fn uses_in_header_itself_do_not_count() {
        // The header's own internals are not "usage by the sources".
        let r = analyze(KOKKOS_MINI, "int unrelated;");
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn method_call_through_local_variable() {
        let r = analyze(
            KOKKOS_MINI,
            "void f() { Kokkos::View<int,int> v; int e = v.extent(0); }",
        );
        assert!(r
            .methods
            .contains_key(&("Kokkos::View".into(), "extent".into())));
        assert!(r.classes["Kokkos::View"].has_by_value());
    }

    #[test]
    fn field_access_recorded() {
        let r = analyze(
            KOKKOS_MINI,
            "void f(Kokkos::View<int,int>& v) { int r = v.rank; }",
        );
        assert!(r
            .fields
            .contains_key(&("Kokkos::View".into(), "rank".into())));
    }

    #[test]
    fn new_expression_is_by_value_use() {
        let r = analyze(
            KOKKOS_MINI,
            "void f() { auto* p = new Kokkos::LayoutRight(); }",
        );
        assert!(r.classes["Kokkos::LayoutRight"].has_by_value());
    }

    #[test]
    fn call_argument_types_inferred() {
        let r = analyze(
            KOKKOS_MINI,
            "void f(Kokkos::HostThreadTeamMember<Kokkos::OpenMP>& m) { Kokkos::TeamThreadRange(m, 5); }",
        );
        let ttr = &r.functions["Kokkos::TeamThreadRange"];
        let t0 = ttr.calls[0].arg_types[0].as_ref().unwrap();
        assert!(t0.to_string().contains("HostThreadTeamMember"));
        let t1 = ttr.calls[0].arg_types[1].as_ref().unwrap();
        assert_eq!(t1.to_string(), "int");
    }
}

#[cfg(test)]
mod capture_tests {
    use super::tests::analyze_pair;

    #[test]
    fn lambda_captures_enclosing_variables_in_order() {
        let source = r#"
struct add_y {
  int y;
  Kokkos::View<int**, Kokkos::LayoutRight> x;
  void operator()(int m);
};
void add_y::operator()(int m) {
  int j = m;
  Kokkos::parallel_for(Kokkos::TeamThreadRange(j, 5), [&](int i) { x(j, i) += y; });
}
"#;
        let r = analyze_pair(source);
        assert_eq!(r.lambdas.len(), 1);
        let caps: Vec<&str> = r.lambdas[0]
            .captured
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        // First-use order: x (receiver of the call), j, y.
        assert_eq!(caps, vec!["x", "j", "y"]);
        let x_ty = &r.lambdas[0].captured[0].1;
        assert!(x_ty.to_string().contains("View"));
    }

    #[test]
    fn lambda_params_and_locals_are_not_captured() {
        let source = r#"
void go(int outer) {
  Kokkos::parallel_for(1, [&](int i) { int t = i + outer; t += 1; });
}
"#;
        let r = analyze_pair(source);
        let caps: Vec<&str> = r.lambdas[0]
            .captured
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(caps, vec!["outer"]);
    }
}

#[cfg(test)]
mod enum_tests {
    use super::tests::analyze;

    const HEADER: &str = r#"
namespace cv {
  enum class LineType : int { Solid = 1, Dashed = 4, AntiAliased = 16 };
  enum Flags { READ, WRITE, APPEND };
}
"#;

    #[test]
    fn enum_type_and_constant_usage() {
        let r = analyze(
            HEADER,
            "void draw(cv::LineType t);\nint pick() { int k = static_cast<int>(cv::LineType::Dashed); return k; }",
        );
        let e = &r.enums["cv::LineType"];
        assert_eq!(e.type_decl_spans.len(), 1);
        assert_eq!(e.constants.len(), 1);
        assert_eq!(e.constants[0].1, "Dashed");
        assert_eq!(e.decl.enumerators.len(), 3);
    }

    #[test]
    fn unscoped_enum_constant() {
        let r = analyze(HEADER, "int m() { return cv::Flags::WRITE; }");
        assert_eq!(r.enums["cv::Flags"].constants.len(), 1);
    }

    #[test]
    fn unrelated_enum_untouched() {
        let r = analyze(HEADER, "enum Local { A }; Local use_it() { return A; }");
        assert!(r.enums.is_empty());
    }
}
