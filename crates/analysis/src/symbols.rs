//! Symbol table construction.
//!
//! Walks a parsed translation unit and records every named declaration
//! with its fully qualified key (`Kokkos::View`), its kind, the file it
//! was declared in, and enough of its shape (template head, members,
//! signature) for the Header Substitution engine to generate forward
//! declarations and wrappers.

use std::collections::HashMap;

use yalla_cpp::ast::{
    AliasDecl, ClassDecl, Decl, DeclKind, EnumDecl, FunctionDecl, TranslationUnit, Type,
};
use yalla_cpp::loc::FileId;

/// What a symbol is.
#[derive(Debug, Clone, PartialEq)]
pub enum SymbolKind {
    /// A class or struct; payload keeps the declaration (with members when
    /// this entry saw the definition).
    Class(Box<ClassDecl>),
    /// An enum.
    Enum(Box<EnumDecl>),
    /// A type alias; payload is the aliased type.
    Alias(Box<AliasDecl>),
    /// A free function (overload set collapses to the first seen
    /// declaration plus a count).
    Function(Box<FunctionDecl>),
    /// A namespace.
    Namespace,
    /// A global variable.
    Variable(Box<Type>),
}

impl SymbolKind {
    /// Short tag for diagnostics.
    pub fn tag(&self) -> &'static str {
        match self {
            SymbolKind::Class(_) => "class",
            SymbolKind::Enum(_) => "enum",
            SymbolKind::Alias(_) => "alias",
            SymbolKind::Function(_) => "function",
            SymbolKind::Namespace => "namespace",
            SymbolKind::Variable(_) => "variable",
        }
    }
}

/// A symbol table entry.
#[derive(Debug, Clone)]
pub struct SymbolInfo {
    /// Fully qualified key, e.g. `Kokkos::TeamPolicy`.
    pub key: String,
    /// Namespace path enclosing the symbol (empty for global scope).
    /// Enclosing *classes* also appear here for nested declarations; the
    /// `nested_in_class` flag distinguishes the two.
    pub scope: Vec<String>,
    /// True when the innermost enclosing scope is a class (the symbol is a
    /// nested type/member) — the case the paper cannot forward declare.
    pub nested_in_class: bool,
    /// What the symbol is.
    pub kind: SymbolKind,
    /// File of the (first) declaration.
    pub file: FileId,
    /// Number of declarations merged into this entry (overloads,
    /// redeclarations).
    pub decl_count: usize,
}

/// A queryable symbol table for one translation unit.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    by_key: HashMap<String, SymbolInfo>,
    /// Secondary index: unqualified name → keys (for unqualified lookup).
    by_base: HashMap<String, Vec<String>>,
}

impl SymbolTable {
    /// Builds the table from a translation unit.
    pub fn build(tu: &TranslationUnit) -> Self {
        let _span = yalla_obs::span("analysis", "symbol_table");
        let mut table = SymbolTable::default();
        let mut scope = Vec::new();
        for d in &tu.decls {
            table.add_decl(d, &mut scope, false);
        }
        yalla_obs::count(
            yalla_obs::metrics::names::SYMBOLS_RESOLVED,
            table.len() as i64,
        );
        table
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when no symbols were recorded.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Looks up a symbol by fully qualified key (no template args).
    pub fn get(&self, key: &str) -> Option<&SymbolInfo> {
        self.by_key.get(key)
    }

    /// Resolves a possibly-unqualified name against the table: tries the
    /// exact key first, then unique match on the base name.
    ///
    /// An unqualified name that matches several scopes resolves only if
    /// exactly one candidate exists (mirroring what name lookup would do
    /// with the using-directives the corpus uses).
    pub fn resolve(&self, key: &str) -> Option<&SymbolInfo> {
        if let Some(s) = self.by_key.get(key) {
            return Some(s);
        }
        let base = key.rsplit("::").next().unwrap_or(key);
        match self.by_base.get(base) {
            Some(keys) if !key.contains("::") => {
                let mut found: Option<&SymbolInfo> = None;
                for k in keys {
                    if let Some(s) = self.by_key.get(k) {
                        if found.is_some() {
                            return None; // ambiguous
                        }
                        found = Some(s);
                    }
                }
                found
            }
            // Qualified name with a suffix match (`View` looked up as
            // `Kokkos::View` when the qualifier is a namespace alias):
            Some(keys) => keys
                .iter()
                .filter_map(|k| self.by_key.get(k))
                .find(|s| s.key.ends_with(key)),
            None => None,
        }
    }

    /// Iterates over all symbols.
    pub fn iter(&self) -> impl Iterator<Item = &SymbolInfo> {
        self.by_key.values()
    }

    fn add_decl(&mut self, decl: &Decl, scope: &mut Vec<String>, in_class: bool) {
        match &decl.kind {
            DeclKind::Namespace(ns) => {
                if !ns.name.is_empty() {
                    self.insert(
                        scope,
                        &ns.name,
                        SymbolKind::Namespace,
                        decl.span.file,
                        in_class,
                    );
                    scope.push(ns.name.clone());
                    for d in &ns.decls {
                        self.add_decl(d, scope, false);
                    }
                    scope.pop();
                } else {
                    for d in &ns.decls {
                        self.add_decl(d, scope, false);
                    }
                }
            }
            DeclKind::Class(c) => {
                if c.is_explicit_instantiation {
                    return;
                }
                self.insert(
                    scope,
                    &c.name,
                    SymbolKind::Class(Box::new(c.clone())),
                    decl.span.file,
                    in_class,
                );
                // Recurse into members for nested types and methods.
                scope.push(c.name.clone());
                for m in &c.members {
                    self.add_decl(&m.decl, scope, true);
                }
                scope.pop();
            }
            DeclKind::Enum(e) => {
                if !e.name.is_empty() {
                    self.insert(
                        scope,
                        &e.name,
                        SymbolKind::Enum(Box::new(e.clone())),
                        decl.span.file,
                        in_class,
                    );
                }
            }
            DeclKind::Alias(a) => {
                self.insert(
                    scope,
                    &a.name,
                    SymbolKind::Alias(Box::new(a.clone())),
                    decl.span.file,
                    in_class,
                );
            }
            DeclKind::Function(f) => {
                // Methods are reachable through their class entry; free
                // functions get their own entries. Out-of-line method
                // definitions (`add_y::operator()`) are skipped: their
                // in-class declaration already created the entry.
                if in_class || f.qualifier.is_some() {
                    return;
                }
                let name = match f.name.as_ident() {
                    Some(n) => n.to_string(),
                    None => return, // free operator overloads: out of scope
                };
                self.insert(
                    scope,
                    &name,
                    SymbolKind::Function(Box::new(f.clone())),
                    decl.span.file,
                    in_class,
                );
            }
            DeclKind::Variable(v) => {
                if in_class {
                    return; // fields live in their ClassDecl
                }
                self.insert(
                    scope,
                    &v.name,
                    SymbolKind::Variable(Box::new(v.ty.clone())),
                    decl.span.file,
                    in_class,
                );
            }
            DeclKind::UsingDecl(_)
            | DeclKind::UsingNamespace(_)
            | DeclKind::StaticAssert
            | DeclKind::Access(_) => {}
        }
    }

    fn insert(
        &mut self,
        scope: &[String],
        name: &str,
        kind: SymbolKind,
        file: FileId,
        nested_in_class: bool,
    ) {
        let key = if scope.is_empty() {
            name.to_string()
        } else {
            format!("{}::{}", scope.join("::"), name)
        };
        if let Some(existing) = self.by_key.get_mut(&key) {
            existing.decl_count += 1;
            // A definition beats a forward declaration as the retained payload.
            let upgrade = matches!(
                (&existing.kind, &kind),
                (SymbolKind::Class(old), SymbolKind::Class(new))
                    if !old.is_definition && new.is_definition
            ) || matches!(
                (&existing.kind, &kind),
                (SymbolKind::Function(old), SymbolKind::Function(new))
                    if old.body.is_none() && new.body.is_some()
            );
            if upgrade {
                existing.kind = kind;
            }
            return;
        }
        self.by_base
            .entry(name.to_string())
            .or_default()
            .push(key.clone());
        self.by_key.insert(
            key.clone(),
            SymbolInfo {
                key,
                scope: scope.to_vec(),
                nested_in_class,
                kind,
                file,
                decl_count: 1,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::parse::parse_str;

    fn table(src: &str) -> SymbolTable {
        SymbolTable::build(&parse_str(src).unwrap())
    }

    #[test]
    fn namespaced_class() {
        let t = table("namespace Kokkos { class OpenMP; template<class T> class View { public: int extent(int d) const; }; }");
        let view = t.get("Kokkos::View").unwrap();
        assert_eq!(view.kind.tag(), "class");
        assert_eq!(view.scope, vec!["Kokkos"]);
        assert!(!view.nested_in_class);
        assert!(t.get("Kokkos::OpenMP").is_some());
        assert!(t.get("Kokkos").is_some());
    }

    #[test]
    fn nested_class_is_flagged() {
        let t = table("namespace K { class TeamPolicy { public: class member_type {}; }; }");
        let nested = t.get("K::TeamPolicy::member_type").unwrap();
        assert!(nested.nested_in_class);
        let parent = t.get("K::TeamPolicy").unwrap();
        assert!(!parent.nested_in_class);
    }

    #[test]
    fn functions_and_aliases() {
        let t = table(
            "namespace Kokkos { template<class F> void parallel_for(int n, F f); using DefaultSpace = OpenMP; }",
        );
        let f = t.get("Kokkos::parallel_for").unwrap();
        assert_eq!(f.kind.tag(), "function");
        assert_eq!(t.get("Kokkos::DefaultSpace").unwrap().kind.tag(), "alias");
    }

    #[test]
    fn definition_upgrades_forward_declaration() {
        let t = table("class V; class V { public: int x; };");
        match &t.get("V").unwrap().kind {
            SymbolKind::Class(c) => assert!(c.is_definition),
            other => panic!("bad kind: {other:?}"),
        }
        assert_eq!(t.get("V").unwrap().decl_count, 2);
    }

    #[test]
    fn unqualified_resolution() {
        let t = table("namespace Kokkos { class LayoutRight; }");
        assert_eq!(t.resolve("LayoutRight").unwrap().key, "Kokkos::LayoutRight");
        assert!(t.resolve("Kokkos::LayoutRight").is_some());
    }

    #[test]
    fn ambiguous_unqualified_resolution_fails() {
        let t = table("namespace A { class X; } namespace B { class X; }");
        assert!(t.resolve("X").is_none());
        assert!(t.resolve("A::X").is_some());
    }

    #[test]
    fn out_of_line_method_does_not_create_symbol() {
        let t = table("struct S { void run(); }; void S::run() { }");
        assert!(t.get("S").is_some());
        assert!(t.get("run").is_none());
        assert!(t.get("S::run").is_none()); // methods live in ClassDecl
    }

    #[test]
    fn file_origin_recorded() {
        // parse_str produces FileId::UNKNOWN spans; just assert the field
        // exists and is consistent.
        let t = table("class C;");
        assert_eq!(t.get("C").unwrap().file, yalla_cpp::loc::FileId::UNKNOWN);
    }

    #[test]
    fn overloads_merge() {
        let t = table("void f(int a); void f(double b);");
        assert_eq!(t.get("f").unwrap().decl_count, 2);
    }

    #[test]
    fn global_variables() {
        let t = table("int counter = 0;");
        assert_eq!(t.get("counter").unwrap().kind.tag(), "variable");
    }
}
