//! Incomplete-type rules: wrapper-need decisions and output verification.
//!
//! Two jobs, both straight from the paper:
//!
//! 1. **Decide** (§3.2.2/§3.2.3): a used function needs a *wrapper* when
//!    its signature involves a soon-to-be-incomplete class **by value**
//!    (return or parameter); methods and fields of forward-declared
//!    classes always need wrappers; everything else can be forward
//!    declared directly.
//! 2. **Verify**: after the engine rewrites sources, prove the result
//!    still compiles under C++'s incomplete-type restrictions — no
//!    by-value declarations of forward-declared classes, no member access
//!    on them, no `new`/`delete` of them in user code.

use std::collections::HashSet;

use yalla_cpp::ast::{
    Decl, DeclKind, Expr, ExprKind, ForInit, FunctionDecl, Stmt, StmtKind, TranslationUnit, Type,
};
use yalla_cpp::loc::Span;

use crate::aliases::AliasResolver;
use crate::symbols::SymbolTable;

/// Why (and whether) a function needs a wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrapperNeed {
    /// Plain forward declaration suffices.
    ForwardDeclarable,
    /// Returns an incomplete type by value — wrapper returns a pointer to a
    /// heap-allocated result (§3.2.2).
    ReturnsIncompleteByValue {
        /// Key of the offending class.
        class: String,
    },
    /// Takes an incomplete type by value — wrapper takes a pointer
    /// (§3.2.2, the `parallel_for` case).
    ParamIncompleteByValue {
        /// Key of the offending class.
        class: String,
        /// Index of the offending parameter.
        param_index: usize,
    },
}

/// Decides whether `f` can be forward declared as-is, given the set of
/// classes that will become incomplete (`incomplete`, by symbol key).
///
/// When several reasons apply, the return-type reason wins (the wrapper
/// generator handles parameters too once it knows a wrapper is needed).
pub fn wrapper_need(
    f: &FunctionDecl,
    incomplete: &HashSet<String>,
    table: &SymbolTable,
) -> WrapperNeed {
    let aliases = AliasResolver::new(table);
    let is_incomplete_by_value = |ty: &Type| -> Option<String> {
        if !ty.is_by_value() {
            return None;
        }
        let resolved = aliases.resolve_type(ty);
        let core = resolved.core_name()?;
        let key = table.resolve(&core.key()).map(|s| s.key.clone())?;
        incomplete.contains(&key).then_some(key)
    };
    if let Some(ret) = &f.ret {
        if let Some(class) = is_incomplete_by_value(ret) {
            return WrapperNeed::ReturnsIncompleteByValue { class };
        }
    }
    for (i, p) in f.params.iter().enumerate() {
        if let Some(class) = is_incomplete_by_value(&p.ty) {
            return WrapperNeed::ParamIncompleteByValue {
                class,
                param_index: i,
            };
        }
    }
    WrapperNeed::ForwardDeclarable
}

/// A violation of the incomplete-type rules found during verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncompleteViolation {
    /// Key of the incomplete class involved.
    pub class: String,
    /// What went wrong, human-readable.
    pub reason: String,
    /// Where.
    pub span: Span,
}

/// Checks that `tu` (typically: the rewritten sources re-parsed) never
/// uses any class in `incomplete` in a way C++ forbids for incomplete
/// types: by-value declarations, member access, `new`/`delete`.
///
/// Function *declarations* may mention incomplete types by value (that is
/// legal C++ as long as the function is not defined/called), so parameters
/// of bodyless declarations are exempt — matching the paper's reliance on
/// that rule for forward declarations.
pub fn check_incomplete_rules(
    tu: &TranslationUnit,
    incomplete: &HashSet<String>,
    table: &SymbolTable,
) -> Vec<IncompleteViolation> {
    let _span = yalla_obs::span("analysis", "incomplete_rules");
    yalla_obs::count(yalla_obs::metrics::names::INCOMPLETE_CHECKS, 1);
    let mut v = Checker {
        incomplete,
        table,
        violations: Vec::new(),
    };
    for d in &tu.decls {
        v.decl(d);
    }
    v.violations
}

struct Checker<'a> {
    incomplete: &'a HashSet<String>,
    table: &'a SymbolTable,
    violations: Vec<IncompleteViolation>,
}

impl Checker<'_> {
    fn incomplete_core(&self, ty: &Type) -> Option<String> {
        if !ty.is_by_value() {
            return None;
        }
        let aliases = AliasResolver::new(self.table);
        let resolved = aliases.resolve_type(ty);
        let core = resolved.core_name()?;
        let key = self
            .table
            .resolve(&core.key())
            .map(|s| s.key.clone())
            .unwrap_or_else(|| core.key());
        self.incomplete.contains(&key).then_some(key)
    }

    fn flag(&mut self, class: String, reason: impl Into<String>, span: Span) {
        self.violations.push(IncompleteViolation {
            class,
            reason: reason.into(),
            span,
        });
    }

    fn decl(&mut self, decl: &Decl) {
        match &decl.kind {
            DeclKind::Namespace(ns) => {
                for d in &ns.decls {
                    self.decl(d);
                }
            }
            DeclKind::Class(c) => {
                for m in &c.members {
                    match &m.decl.kind {
                        DeclKind::Variable(var) => {
                            if let Some(k) = self.incomplete_core(&var.ty) {
                                self.flag(
                                    k,
                                    "field of incomplete type (must be pointerized)",
                                    m.decl.span,
                                );
                            }
                        }
                        DeclKind::Function(f) => self.function(f),
                        _ => self.decl(&m.decl),
                    }
                }
            }
            DeclKind::Function(f) => self.function(f),
            DeclKind::Variable(var) => {
                if let Some(k) = self.incomplete_core(&var.ty) {
                    self.flag(k, "variable of incomplete type", decl.span);
                }
            }
            _ => {}
        }
    }

    fn function(&mut self, f: &FunctionDecl) {
        // Bodyless declarations may mention incomplete types by value.
        let Some(body) = &f.body else { return };
        if let Some(ret) = &f.ret {
            if let Some(k) = self.incomplete_core(ret) {
                self.flag(
                    k,
                    "defined function returns incomplete type by value",
                    body.span,
                );
            }
        }
        for p in &f.params {
            if let Some(k) = self.incomplete_core(&p.ty) {
                self.flag(
                    k,
                    "defined function takes incomplete type by value",
                    body.span,
                );
            }
        }
        for s in &body.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Decl(v) => {
                if let Some(k) = self.incomplete_core(&v.ty) {
                    self.flag(k, "local variable of incomplete type", stmt.span);
                }
                if let Some(i) = &v.init {
                    self.expr(i);
                }
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::Block(b) => {
                for s in &b.stmts {
                    self.stmt(s);
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                self.stmt(then_branch);
                if let Some(e) = else_branch {
                    self.stmt(e);
                }
            }
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => {
                match init.as_ref() {
                    ForInit::Decl(v) => {
                        if let Some(k) = self.incomplete_core(&v.ty) {
                            self.flag(k, "loop variable of incomplete type", stmt.span);
                        }
                    }
                    ForInit::Expr(e) => self.expr(e),
                    ForInit::Empty => {}
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(i) = inc {
                    self.expr(i);
                }
                self.stmt(body);
            }
            StmtKind::RangeFor { var, range, body } => {
                if let Some(k) = self.incomplete_core(&var.ty) {
                    self.flag(k, "loop variable of incomplete type", stmt.span);
                }
                self.expr(range);
                self.stmt(body);
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.stmt(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.stmt(body);
                self.expr(cond);
            }
            StmtKind::Return(Some(e)) => self.expr(e),
            _ => {}
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::New { ty, args } => {
                if let Some(k) = self.incomplete_core(ty) {
                    self.flag(k, "new of incomplete type in user code", e.span);
                }
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::BraceInit { ty: Some(ty), args } => {
                if let Some(k) = self.incomplete_core(ty) {
                    self.flag(k, "construction of incomplete type", e.span);
                }
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Unary { expr, .. }
            | ExprKind::Paren(expr)
            | ExprKind::Delete { expr, .. } => self.expr(expr),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Conditional {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr(cond);
                self.expr(then_expr);
                self.expr(else_expr);
            }
            ExprKind::Call { callee, args } => {
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Member { base, .. } => self.expr(base),
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.expr(index);
            }
            ExprKind::Lambda(l) => {
                for s in &l.body.stmts {
                    self.stmt(s);
                }
            }
            ExprKind::Cast { expr, .. } => self.expr(expr),
            ExprKind::BraceInit { ty: None, args } => {
                for a in args {
                    self.expr(a);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::parse::parse_str;

    fn setup(src: &str) -> (TranslationUnit, SymbolTable) {
        let tu = parse_str(src).unwrap();
        let table = SymbolTable::build(&tu);
        (tu, table)
    }

    fn fn_decl(src: &str) -> (FunctionDecl, SymbolTable) {
        let (tu, table) = setup(src);
        let f = tu
            .decls
            .iter()
            .find_map(|d| match &d.kind {
                DeclKind::Function(f) => Some(f.clone()),
                DeclKind::Namespace(ns) => ns.decls.iter().find_map(|d| match &d.kind {
                    DeclKind::Function(f) => Some(f.clone()),
                    _ => None,
                }),
                _ => None,
            })
            .expect("function in source");
        (f, table)
    }

    fn incomplete(keys: &[&str]) -> HashSet<String> {
        keys.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn plain_function_is_forward_declarable() {
        let (f, t) = fn_decl("namespace K { struct B {}; } void f(int x, K::B* b);");
        assert_eq!(
            wrapper_need(&f, &incomplete(&["K::B"]), &t),
            WrapperNeed::ForwardDeclarable
        );
    }

    #[test]
    fn incomplete_return_by_value_needs_wrapper() {
        // The paper's TeamThreadRange case.
        let (f, t) = fn_decl(
            "namespace K { struct BoundsStruct { int lo; }; template<class M> BoundsStruct TeamThreadRange(M& m, int n); }",
        );
        assert_eq!(
            wrapper_need(&f, &incomplete(&["K::BoundsStruct"]), &t),
            WrapperNeed::ReturnsIncompleteByValue {
                class: "K::BoundsStruct".into()
            }
        );
    }

    #[test]
    fn incomplete_param_by_value_needs_wrapper() {
        // The paper's parallel_for case.
        let (f, t) = fn_decl(
            "namespace K { struct BoundsStruct { int lo; }; template<class F> void parallel_for(BoundsStruct range, F f); }",
        );
        assert_eq!(
            wrapper_need(&f, &incomplete(&["K::BoundsStruct"]), &t),
            WrapperNeed::ParamIncompleteByValue {
                class: "K::BoundsStruct".into(),
                param_index: 0
            }
        );
    }

    #[test]
    fn reference_and_pointer_params_are_fine() {
        let (f, t) = fn_decl("namespace K { struct B {}; void f(B& a, const B* b); }");
        assert_eq!(
            wrapper_need(&f, &incomplete(&["K::B"]), &t),
            WrapperNeed::ForwardDeclarable
        );
    }

    #[test]
    fn return_reason_wins_over_param() {
        let (f, t) = fn_decl("namespace K { struct B {}; B both(B x); }");
        assert!(matches!(
            wrapper_need(&f, &incomplete(&["K::B"]), &t),
            WrapperNeed::ReturnsIncompleteByValue { .. }
        ));
    }

    #[test]
    fn alias_to_incomplete_detected() {
        let (f, t) = fn_decl("namespace K { struct B {}; using Alias = B; Alias g(); }");
        assert!(matches!(
            wrapper_need(&f, &incomplete(&["K::B"]), &t),
            WrapperNeed::ReturnsIncompleteByValue { .. }
        ));
    }

    #[test]
    fn checker_accepts_pointerized_code() {
        let (tu, t) = setup(
            "namespace K { class View; }\nstruct add_y { int y; K::View* x; };\nvoid f(K::View& v) { K::View* p = &v; }",
        );
        let violations = check_incomplete_rules(&tu, &incomplete(&["K::View"]), &t);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn checker_flags_by_value_field() {
        let (tu, t) = setup("namespace K { class View; }\nstruct S { K::View v; };");
        let violations = check_incomplete_rules(&tu, &incomplete(&["K::View"]), &t);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].reason.contains("field"));
    }

    #[test]
    fn checker_flags_local_and_new() {
        let (tu, t) =
            setup("namespace K { class View; }\nvoid f() { K::View v; auto* p = new K::View(); }");
        let violations = check_incomplete_rules(&tu, &incomplete(&["K::View"]), &t);
        assert_eq!(violations.len(), 2, "{violations:?}");
    }

    #[test]
    fn checker_allows_bodyless_declarations() {
        // Forward-declared functions may mention incomplete types by value.
        let (tu, t) = setup("namespace K { class B; }\nK::B make(K::B x);");
        let violations = check_incomplete_rules(&tu, &incomplete(&["K::B"]), &t);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn checker_flags_defined_function_with_by_value_param() {
        let (tu, t) = setup("namespace K { class B; }\nvoid f(K::B x) { }");
        let violations = check_incomplete_rules(&tu, &incomplete(&["K::B"]), &t);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn checker_descends_into_lambdas() {
        let (tu, t) =
            setup("namespace K { class B; }\nvoid f() { auto l = [](int i) { K::B local; }; }");
        let violations = check_incomplete_rules(&tu, &incomplete(&["K::B"]), &t);
        assert_eq!(violations.len(), 1, "{violations:?}");
    }
}
