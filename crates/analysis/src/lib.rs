//! Semantic analysis for Header Substitution.
//!
//! This crate plays the role Clang's semantic layer and AST-matcher library
//! play in the original YALLA tool: it builds a symbol table over the
//! parsed translation unit, resolves type aliases, collects which symbols
//! from a *target header* are actually used by the user's *source files*
//! (with the usage's "nature" — by value, pointer, reference, template
//! argument, as §4.1 of the paper describes), and implements the
//! incomplete-type rules that decide when a forward declaration suffices
//! and when a function/method wrapper is required (§3.2).
//!
//! The same rules power the engine's *verification* pass: after Header
//! Substitution rewrites the sources, the checker proves the output still
//! compiles under C++'s incomplete-type restrictions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aliases;
pub mod incomplete;
pub mod matchers;
pub mod symbols;
pub mod usage;

pub use aliases::AliasResolver;
pub use incomplete::{check_incomplete_rules, wrapper_need, IncompleteViolation, WrapperNeed};
pub use symbols::{SymbolInfo, SymbolKind, SymbolTable};
pub use usage::{ClassUsage, EnumUsage, MethodUsage, UsageNature, UsageReport, UsedFunction};
