//! Type-alias resolution.
//!
//! The paper's algorithm resolves aliases before forward declaring
//! (Fig. 5 line 4): `Kokkos::TeamPolicy<sp_t>::member_type` is an alias
//! for `Kokkos::Impl::HostThreadTeamMember<sp_t>`, and *that* class is the
//! one YALLA forward declares (§3.2.1). The resolver follows alias chains
//! transitively, with a depth limit to survive accidental cycles.

use yalla_cpp::ast::{Type, TypeKind};

use crate::symbols::{SymbolKind, SymbolTable};

/// Maximum alias-chain length before giving up (cycle guard).
const MAX_ALIAS_DEPTH: usize = 64;

/// Resolves alias chains against a symbol table.
#[derive(Debug, Clone, Copy)]
pub struct AliasResolver<'t> {
    table: &'t SymbolTable,
}

impl<'t> AliasResolver<'t> {
    /// Creates a resolver over `table`.
    pub fn new(table: &'t SymbolTable) -> Self {
        AliasResolver { table }
    }

    /// Fully resolves `ty`: while the core named type refers to an alias,
    /// substitute the alias target (keeping the original's qualifiers and
    /// indirections). Returns the input unchanged when nothing resolves.
    ///
    /// Member-type aliases are also followed: for
    /// `Kokkos::TeamPolicy::member_type` the resolver looks for an alias
    /// member declared inside the `TeamPolicy` class.
    pub fn resolve_type(&self, ty: &Type) -> Type {
        let mut current = ty.clone();
        for _ in 0..MAX_ALIAS_DEPTH {
            match self.step(&current) {
                Some(next) => current = next,
                None => break,
            }
        }
        current
    }

    /// Like [`AliasResolver::resolve_type`] but also resolves aliases
    /// appearing *inside* template arguments, recursively. Used when a type
    /// must be spelled in a context where the user's local aliases are not
    /// visible (explicit instantiations in the generated wrappers file).
    pub fn resolve_type_deep(&self, ty: &Type) -> Type {
        let mut out = self.resolve_type(ty);
        match &mut out.kind {
            TypeKind::Named(name) => {
                for seg in &mut name.segs {
                    if let Some(args) = &mut seg.args {
                        for a in args.iter_mut() {
                            if let yalla_cpp::ast::TemplateArg::Type(t) = a {
                                *t = self.resolve_type_deep(t);
                            }
                        }
                    }
                }
            }
            TypeKind::Pointer(inner)
            | TypeKind::LValueRef(inner)
            | TypeKind::RValueRef(inner)
            | TypeKind::Array(inner, _) => {
                **inner = self.resolve_type_deep(inner);
            }
            _ => {}
        }
        out
    }

    /// Resolves a symbol key through alias entries to the final class key,
    /// when the chain ends at a class. Returns `None` when the name never
    /// resolves to a class.
    pub fn resolve_key_to_class(&self, key: &str) -> Option<String> {
        let mut current = key.to_string();
        for _ in 0..MAX_ALIAS_DEPTH {
            let sym = self.table.resolve(&current)?;
            match &sym.kind {
                SymbolKind::Class(_) => return Some(sym.key.clone()),
                SymbolKind::Alias(a) => {
                    let target = a.target.core_name()?;
                    // Try resolving relative to the alias's own scope first
                    // (aliases inside `namespace Kokkos` see siblings
                    // unqualified).
                    let scoped = if sym.scope.is_empty() {
                        None
                    } else {
                        // The alias's scope may include a class for member
                        // aliases; strip back one level at a time.
                        let mut scopes = sym.scope.clone();
                        let mut found = None;
                        while !scopes.is_empty() {
                            let candidate = format!("{}::{}", scopes.join("::"), target.key());
                            if self.table.get(&candidate).is_some() {
                                found = Some(candidate);
                                break;
                            }
                            scopes.pop();
                        }
                        found
                    };
                    current = scoped.unwrap_or_else(|| target.key());
                }
                _ => return None,
            }
        }
        None
    }

    fn step(&self, ty: &Type) -> Option<Type> {
        match &ty.kind {
            TypeKind::Named(name) => {
                let sym = self.table.resolve(&name.key())?;
                let alias = match &sym.kind {
                    SymbolKind::Alias(a) => a,
                    _ => return None,
                };
                let mut out = alias.target.clone();
                out.is_const |= ty.is_const;
                out.is_volatile |= ty.is_volatile;
                // Requalify the target against the alias's own scope: an
                // alias written inside `namespace K` names siblings
                // unqualified, but the resolved type must be spelled from
                // global scope (it lands in the generated lightweight
                // header).
                if let TypeKind::Named(target_name) = &mut out.kind {
                    if self.table.get(&target_name.key()).is_none() {
                        let mut scopes = sym.scope.clone();
                        while !scopes.is_empty() {
                            let candidate = format!("{}::{}", scopes.join("::"), target_name.key());
                            if self.table.get(&candidate).is_some() {
                                let mut segs: Vec<yalla_cpp::ast::NameSeg> = scopes
                                    .iter()
                                    .map(|s| yalla_cpp::ast::NameSeg::plain(s.clone()))
                                    .collect();
                                segs.extend(target_name.segs.clone());
                                target_name.segs = segs;
                                break;
                            }
                            scopes.pop();
                        }
                    }
                }
                // Substitute template arguments positionally when the alias
                // is an alias template (`template<class T> using V = W<T>`).
                if let (Some(header), Some(args)) = (&alias.template, name.last().args.as_ref()) {
                    let params: Vec<&str> = header.params.iter().map(|p| p.name()).collect();
                    out = substitute_params(&out, &params, args);
                }
                // Member alias of a class template: `TeamPolicy<sp_t>::
                // member_type` substitutes the *class's* template
                // parameters with the arguments written on the class
                // segment of the qualified name.
                if sym.nested_in_class && name.segs.len() >= 2 {
                    let class_seg = &name.segs[name.segs.len() - 2];
                    if let Some(args) = &class_seg.args {
                        if let Some(SymbolKind::Class(class)) =
                            self.table.get(&sym.scope.join("::")).map(|s| &s.kind)
                        {
                            if let Some(header) = &class.template {
                                let params: Vec<&str> =
                                    header.params.iter().map(|p| p.name()).collect();
                                out = substitute_params(&out, &params, args);
                            }
                        }
                    }
                }
                Some(out)
            }
            TypeKind::Pointer(inner) => self.step(inner).map(|t| {
                let mut out = Type::pointer(t);
                out.is_const = ty.is_const;
                out
            }),
            TypeKind::LValueRef(inner) => self.step(inner).map(Type::lvalue_ref),
            TypeKind::RValueRef(inner) => self.step(inner).map(Type::rvalue_ref),
            _ => None,
        }
    }
}

/// Positional substitution of template parameters in `ty`: every bare
/// occurrence of `params[i]` is replaced by `args[i]`. Used for alias
/// templates and for concretizing method-wrapper signatures from a
/// receiver's template arguments.
pub fn substitute_params(ty: &Type, params: &[&str], args: &[yalla_cpp::ast::TemplateArg]) -> Type {
    use yalla_cpp::ast::TemplateArg;
    let mut out = ty.clone();
    match &mut out.kind {
        TypeKind::Named(name) => {
            // A bare parameter name (`T`) is replaced by the whole arg type.
            if name.segs.len() == 1 && name.segs[0].args.is_none() {
                if let Some(idx) = params.iter().position(|p| *p == name.segs[0].ident) {
                    if let Some(TemplateArg::Type(t)) = args.get(idx) {
                        let mut t = t.clone();
                        t.is_const |= out.is_const;
                        return t;
                    }
                }
            }
            for seg in &mut name.segs {
                if let Some(seg_args) = &mut seg.args {
                    for a in seg_args.iter_mut() {
                        if let TemplateArg::Type(t) = a {
                            *t = substitute_params(t, params, args);
                        } else if let TemplateArg::Value(v) = a {
                            if let Some(idx) = params.iter().position(|p| p == v) {
                                if let Some(arg) = args.get(idx) {
                                    *a = arg.clone();
                                }
                            }
                        }
                    }
                }
            }
        }
        TypeKind::Pointer(inner)
        | TypeKind::LValueRef(inner)
        | TypeKind::RValueRef(inner)
        | TypeKind::Array(inner, _) => {
            **inner = substitute_params(inner, params, args);
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;
    use yalla_cpp::parse::parse_str;

    fn setup(src: &str) -> SymbolTable {
        SymbolTable::build(&parse_str(src).unwrap())
    }

    fn resolve(table: &SymbolTable, ty_src: &str) -> String {
        let tu = parse_str(&format!("{ty_src} __probe;")).unwrap();
        let ty = match &tu.decls.last().unwrap().kind {
            yalla_cpp::ast::DeclKind::Variable(v) => v.ty.clone(),
            other => panic!("probe parse failed: {other:?}"),
        };
        AliasResolver::new(table).resolve_type(&ty).to_string()
    }

    #[test]
    fn simple_alias_chain() {
        let t = setup("namespace K { class OpenMP; } using sp_t = K::OpenMP;");
        assert_eq!(resolve(&t, "sp_t"), "K::OpenMP");
    }

    #[test]
    fn transitive_chain() {
        let t = setup("class A; using B = A; using C = B; using D = C;");
        assert_eq!(resolve(&t, "D"), "A");
    }

    #[test]
    fn non_alias_is_unchanged() {
        let t = setup("class A;");
        assert_eq!(resolve(&t, "A"), "A");
        assert_eq!(resolve(&t, "A*"), "A*");
    }

    #[test]
    fn alias_cycle_terminates() {
        // Illegal C++, but the resolver must not hang.
        let t = setup("using A = B; using B = A;");
        let _ = resolve(&t, "A");
    }

    #[test]
    fn member_type_alias_resolves_to_non_nested_class() {
        // The paper's §3.2.1 example: member_type is an alias to
        // HostThreadTeamMember which is NOT nested.
        let t = setup(
            "namespace Kokkos { template<class P> class HostThreadTeamMember { public: int league_rank() const; };\n  template<class S> class TeamPolicy { public: using member_type = HostThreadTeamMember<S>; }; }",
        );
        let r = AliasResolver::new(&t);
        let resolved = r.resolve_key_to_class("Kokkos::TeamPolicy::member_type");
        assert_eq!(resolved.as_deref(), Some("Kokkos::HostThreadTeamMember"));
    }

    #[test]
    fn alias_template_substitutes_args() {
        let t = setup(
            "namespace K { template<class T, class L> class View; template<class T> using RightView = View<T, LayoutRight>; }",
        );
        assert_eq!(
            resolve(&t, "K::RightView<int>"),
            "K::View<int, LayoutRight>"
        );
    }

    #[test]
    fn qualifiers_survive_resolution() {
        let t = setup("class A; using B = A;");
        assert_eq!(resolve(&t, "const B&"), "const A&");
    }

    #[test]
    fn resolve_key_through_alias() {
        let t = setup("namespace K { class Real; using Fake = Real; }");
        let r = AliasResolver::new(&t);
        assert_eq!(
            r.resolve_key_to_class("K::Fake").as_deref(),
            Some("K::Real")
        );
        assert_eq!(
            r.resolve_key_to_class("K::Real").as_deref(),
            Some("K::Real")
        );
        assert!(r.resolve_key_to_class("K::Missing").is_none());
    }
}

#[cfg(test)]
mod deep_tests {
    use super::*;
    use crate::symbols::SymbolTable;
    use yalla_cpp::parse::parse_str;

    #[test]
    fn deep_resolution_rewrites_template_args() {
        let table = SymbolTable::build(
            &parse_str(
                "namespace K { class OpenMP; template<class P> class Member; } using sp_t = K::OpenMP; using member_t = K::Member<sp_t>;",
            )
            .unwrap(),
        );
        let tu = parse_str("member_t& __probe;").unwrap();
        let ty = match &tu.decls[0].kind {
            yalla_cpp::ast::DeclKind::Variable(v) => v.ty.clone(),
            _ => unreachable!(),
        };
        let r = AliasResolver::new(&table);
        assert_eq!(r.resolve_type(&ty).to_string(), "K::Member<sp_t>&");
        assert_eq!(
            r.resolve_type_deep(&ty).to_string(),
            "K::Member<K::OpenMP>&"
        );
    }
}

#[cfg(test)]
mod member_alias_tests {
    use super::*;
    use crate::symbols::SymbolTable;
    use yalla_cpp::parse::parse_str;

    #[test]
    fn member_alias_substitutes_class_template_args() {
        let table = SymbolTable::build(
            &parse_str(
                "namespace K { template<class P> class HostMember; template<class S> class TeamPolicy { public: using member_type = HostMember<S>; }; class OpenMP; }",
            )
            .unwrap(),
        );
        let tu = parse_str("K::TeamPolicy<K::OpenMP>::member_type __probe;").unwrap();
        let ty = match &tu.decls[0].kind {
            yalla_cpp::ast::DeclKind::Variable(v) => v.ty.clone(),
            _ => unreachable!(),
        };
        let r = AliasResolver::new(&table);
        assert_eq!(r.resolve_type(&ty).to_string(), "K::HostMember<K::OpenMP>");
    }
}
