//! **yalla-exec** — a work-stealing task executor and dependency-DAG
//! scheduler for the YALLA pipeline.
//!
//! The engine's stage pipeline (parse → analyze → plan → emit → rewrite →
//! verify) and the `yalla serve` daemon both need the same thing: run many
//! independent pieces of work on a bounded pool of worker threads, respect
//! dependency edges, and never deadlock when a task has to wait for other
//! tasks. This crate provides:
//!
//! * [`Executor`] — a work-stealing thread pool. Every worker owns a deque;
//!   tasks spawned *from* a worker go to that worker's deque (LIFO, cache
//!   warm), idle workers steal from the injector and from each other
//!   (FIFO, oldest first). Sized explicitly or from `YALLA_WORKERS`
//!   (`max`/`0` = all hardware threads).
//! * [`Latch`] — a countdown latch whose [`Executor::wait`] *helps*: a
//!   worker blocked on a latch keeps executing pool tasks instead of
//!   parking, so nested waits (a daemon request that schedules a stage DAG
//!   that fans out per-source rewrites) cannot starve a small pool — even a
//!   one-worker executor runs arbitrarily nested task graphs to
//!   completion, it just runs them sequentially.
//! * [`Dag`] — a dependency-DAG scheduler over the executor. Nodes are
//!   fallible closures; a node runs when all of its dependencies
//!   succeeded, errors cancel all transitively dependent nodes, and nodes
//!   marked *cached* complete inline without ever being scheduled (the
//!   session layer's warm cache hits short-circuit scheduling).
//! * [`Priority`] — a two-level injector: interactive tasks (a client is
//!   blocked on them) always dequeue ahead of background tasks (warm-up
//!   prefetch), which run from idle capacity only. [`Dag::run_at`]
//!   schedules a whole graph at one priority.
//! * [`CancelToken`] — a cooperative cancellation flag polled at stage
//!   boundaries, with a deterministic trip-at-checkpoint-N injection
//!   mode for race testing (see [`cancel`]).
//!
//! Worker threads buffer their own `exec.*` counters in a
//! [`yalla_obs::metrics::LocalCounters`] and merge them into the shared
//! registry when they park and when they exit, so hot task loops never
//! contend on the registry lock.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cancel;
pub mod dag;
pub mod executor;

pub use cancel::CancelToken;
pub use dag::{Dag, DagOutcome, NodeId, NodeOutcome, NodeStatus};
pub use executor::{Executor, Latch, Priority};
