//! The work-stealing thread pool.
//!
//! Topology: one deque per worker plus a *two-level* shared injector for
//! external submissions. A worker pops its own deque from the back (LIFO
//! — the task it just spawned is the cache-warm one), and when empty
//! takes from the interactive injector, steals from sibling deques from
//! the front (FIFO — the oldest task is the one least likely to
//! conflict), and only then drains the background injector. Idle workers
//! park on a condvar; every submission re-arms them.
//!
//! The two injector levels implement [`Priority`]: interactive work (a
//! client-blocking rerun's stage DAG) always runs ahead of background
//! work (daemon warm-up prefetches) — background tasks are scheduled
//! strictly from idle capacity and can be starved indefinitely under
//! interactive load, by design. Nothing preempts: a background task that
//! already started runs to completion (or to its next cancel point).
//!
//! The pool never blocks a worker on another task's completion:
//! [`Executor::wait`] turns a blocked worker into a helper that keeps
//! draining the pool until its latch opens. That property is what lets
//! the session DAG and the `yalla serve` daemon nest waits arbitrarily
//! deep on a pool of any size — including a single worker — without
//! deadlock.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::Duration;

use yalla_obs::metrics::LocalCounters;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle worker sleeps between queue re-checks. Wakeups are
/// condvar-driven; the timeout is only a safety net.
const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// How long a helping waiter sleeps when the pool is drained but its
/// latch is still closed (tasks are in flight on other workers).
const HELP_TIMEOUT: Duration = Duration::from_micros(500);

/// Scheduling class for a submitted task.
///
/// Interactive tasks (the default for [`Executor::spawn`] and
/// [`crate::Dag::run`]) go to the high-priority injector; background
/// tasks go to a separate low-priority injector that workers only drain
/// when no interactive work exists anywhere in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// A client is waiting on this work: run it as soon as a worker
    /// frees up, ahead of any queued background task.
    #[default]
    Interactive,
    /// Speculative work nobody is waiting on (warm-up prefetch): runs
    /// from idle capacity only and may be starved under load.
    Background,
}

struct Inner {
    deques: Vec<Mutex<VecDeque<Task>>>,
    injector: Mutex<VecDeque<Task>>,
    /// The low-priority lane: drained only when deques, the interactive
    /// injector, and every steal target are all empty.
    background: Mutex<VecDeque<Task>>,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Inner {
    fn has_work(&self) -> bool {
        if !self.injector.lock().expect("injector lock").is_empty() {
            return true;
        }
        if self
            .deques
            .iter()
            .any(|d| !d.lock().expect("deque lock").is_empty())
        {
            return true;
        }
        !self.background.lock().expect("background lock").is_empty()
    }

    /// Pops a task: own deque back, interactive injector front, steal
    /// siblings front, and only then the background injector front. `me`
    /// is the calling worker's index, or `None` for external helpers
    /// (which skip the own-deque step).
    fn find_task(&self, me: Option<usize>, stats: &mut WorkerStats) -> Option<Task> {
        if let Some(i) = me {
            if let Some(t) = self.deques[i].lock().expect("deque lock").pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().expect("injector lock").pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = self.deques[victim].lock().expect("deque lock").pop_front() {
                stats.stolen += 1;
                return Some(t);
            }
        }
        self.background.lock().expect("background lock").pop_front()
    }

    fn notify(&self) {
        // Taking the sleep lock orders this notify after any in-progress
        // "check queues then wait" sequence, so submissions are never
        // missed (the park timeout is only a safety net).
        drop(self.sleep.lock().expect("sleep lock"));
        self.wake.notify_all();
    }
}

#[derive(Default)]
struct WorkerStats {
    executed: u64,
    stolen: u64,
    parks: u64,
}

impl WorkerStats {
    /// Moves the accumulated deltas into a thread-local counter buffer.
    fn drain_into(&mut self, local: &mut LocalCounters) {
        local.add("exec.tasks_executed", self.executed as i64);
        local.add("exec.tasks_stolen", self.stolen as i64);
        local.add("exec.parks", self.parks as i64);
        *self = WorkerStats::default();
    }
}

struct WorkerCtx {
    inner: Weak<Inner>,
    index: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

/// Index of the calling thread in `inner`'s pool, if it is one of its
/// workers.
fn current_index(inner: &Arc<Inner>) -> Option<usize> {
    CURRENT.with(|c| {
        c.borrow().as_ref().and_then(|ctx| {
            let mine = ctx.inner.upgrade()?;
            Arc::ptr_eq(&mine, inner).then_some(ctx.index)
        })
    })
}

fn run_task(task: Task) {
    // A panicking task must not take its worker thread down with it; the
    // DAG layer converts panics into run-level failures, and raw spawns
    // get the panic reported on stderr.
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic>".into());
        eprintln!("yalla-exec: task panicked: {msg}");
    }
}

fn worker_main(inner: Arc<Inner>, index: usize) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(WorkerCtx {
            inner: Arc::downgrade(&inner),
            index,
        });
    });
    let mut stats = WorkerStats::default();
    let mut local = LocalCounters::new();
    loop {
        if let Some(task) = inner.find_task(Some(index), &mut stats) {
            stats.executed += 1;
            run_task(task);
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Merge this worker's counter deltas before parking — the
        // "per-thread buffers merged when the thread goes quiet" half of
        // the thread-safe aggregation contract.
        stats.parks += 1;
        stats.drain_into(&mut local);
        local.flush_into(yalla_obs::global().metrics());
        let guard = inner.sleep.lock().expect("sleep lock");
        if inner.has_work() || inner.shutdown.load(Ordering::Acquire) {
            continue;
        }
        let _ = inner
            .wake
            .wait_timeout(guard, PARK_TIMEOUT)
            .expect("sleep lock");
    }
    stats.drain_into(&mut local);
    local.flush_into(yalla_obs::global().metrics());
}

/// Owns the worker threads; dropped exactly once, when the last
/// [`Executor`] clone goes away (workers hold `Arc<Inner>`, never the
/// core, so they cannot keep the pool alive).
struct Core {
    inner: Arc<Inner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
}

impl Drop for Core {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.notify();
        for handle in self.handles.lock().expect("handles lock").drain(..) {
            let _ = handle.join();
        }
    }
}

/// A work-stealing thread pool. Cloning shares the pool; the worker
/// threads stop when the last clone drops.
#[derive(Clone)]
pub struct Executor {
    core: Arc<Core>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.core.workers)
            .finish()
    }
}

impl Executor {
    /// A pool with `workers` threads (`0` means all hardware threads).
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            hardware_threads()
        } else {
            workers
        };
        let inner = Arc::new(Inner {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            background: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("yalla-exec-{i}"))
                    .spawn(move || worker_main(inner, i))
                    .expect("spawn worker")
            })
            .collect();
        yalla_obs::gauge("exec.workers", workers as i64);
        Executor {
            core: Arc::new(Core {
                inner,
                handles: Mutex::new(handles),
                workers,
            }),
        }
    }

    /// The process-wide executor, sized by the `YALLA_WORKERS` environment
    /// variable (`0` or `max` = all hardware threads; unset defaults to
    /// all hardware threads).
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(workers_from_env()))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// Submits an interactive task. Tasks spawned from a worker thread of
    /// this pool go to that worker's own deque (LIFO); external
    /// submissions go to the shared interactive injector.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.spawn_at(Priority::Interactive, task);
    }

    /// Submits a background task: it runs only when no interactive work
    /// is queued anywhere in the pool. Shorthand for
    /// [`Executor::spawn_at`] with [`Priority::Background`].
    pub fn spawn_background(&self, task: impl FnOnce() + Send + 'static) {
        self.spawn_at(Priority::Background, task);
    }

    /// Submits a task at an explicit [`Priority`]. Background tasks
    /// always go to the low-priority injector — even when spawned from a
    /// worker thread — so speculative work never rides the LIFO fast
    /// path ahead of a client-blocking task.
    pub fn spawn_at(&self, priority: Priority, task: impl FnOnce() + Send + 'static) {
        let task: Task = Box::new(task);
        let inner = &self.core.inner;
        match priority {
            Priority::Interactive => match current_index(inner) {
                Some(i) => inner.deques[i].lock().expect("deque lock").push_back(task),
                None => inner
                    .injector
                    .lock()
                    .expect("injector lock")
                    .push_back(task),
            },
            Priority::Background => {
                yalla_obs::count("exec.tasks_background", 1);
                inner
                    .background
                    .lock()
                    .expect("background lock")
                    .push_back(task);
            }
        }
        inner.notify();
    }

    /// Blocks until `latch` opens. When called from one of this pool's
    /// worker threads the wait *helps*: the worker keeps executing pool
    /// tasks while the latch is closed, so nested waits never deadlock —
    /// a one-worker pool still completes arbitrarily nested task graphs.
    pub fn wait(&self, latch: &Latch) {
        let inner = &self.core.inner;
        match current_index(inner) {
            Some(i) => {
                let mut stats = WorkerStats::default();
                while !latch.is_done() {
                    if let Some(task) = inner.find_task(Some(i), &mut stats) {
                        stats.executed += 1;
                        run_task(task);
                    } else {
                        latch.wait_timeout(HELP_TIMEOUT);
                    }
                }
                let mut local = LocalCounters::new();
                stats.drain_into(&mut local);
                local.flush_into(yalla_obs::global().metrics());
            }
            None => latch.wait(),
        }
    }

    /// Runs every closure to completion on the pool, blocking (helpfully)
    /// until all are done.
    pub fn run_all(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'static>>) {
        let latch = Arc::new(Latch::new(tasks.len()));
        for task in tasks {
            let latch = Arc::clone(&latch);
            self.spawn(move || {
                task();
                latch.count_down();
            });
        }
        self.wait(&latch);
    }
}

/// Hardware thread count (at least 1).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Worker count requested by `YALLA_WORKERS` (`0`/`max` = hardware).
pub fn workers_from_env() -> usize {
    match std::env::var("YALLA_WORKERS") {
        Ok(v) if v.eq_ignore_ascii_case("max") => hardware_threads(),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => hardware_threads(),
            Ok(n) => n,
        },
        Err(_) => hardware_threads(),
    }
}

/// A countdown latch: opens when [`Latch::count_down`] has been called
/// `count` times. `count == 0` starts open.
#[derive(Debug)]
pub struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    /// A latch that opens after `count` countdowns.
    pub fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            cv: Condvar::new(),
        }
    }

    /// Records one completion; the final call opens the latch.
    pub fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// True once every countdown has happened.
    pub fn is_done(&self) -> bool {
        *self.remaining.lock().expect("latch lock") == 0
    }

    /// Blocks until the latch opens.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        while *remaining > 0 {
            remaining = self.cv.wait(remaining).expect("latch lock");
        }
    }

    /// Blocks until the latch opens or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) {
        let remaining = self.remaining.lock().expect("latch lock");
        if *remaining > 0 {
            let _ = self
                .cv
                .wait_timeout(remaining, timeout)
                .expect("latch lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_spawned_tasks() {
        let exec = Executor::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let latch = Arc::new(Latch::new(100));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            let latch = Arc::clone(&latch);
            exec.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                latch.count_down();
            });
        }
        exec.wait(&latch);
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_means_hardware_threads() {
        let exec = Executor::new(0);
        assert!(exec.workers() >= 1);
    }

    #[test]
    fn nested_waits_complete_on_one_worker() {
        // A task that spawns subtasks and waits for them must not
        // deadlock a single-worker pool: the helping wait runs them.
        let exec = Executor::new(1);
        let latch = Arc::new(Latch::new(1));
        let done = Arc::new(AtomicUsize::new(0));
        {
            let exec2 = exec.clone();
            let latch = Arc::clone(&latch);
            let done = Arc::clone(&done);
            exec.spawn(move || {
                let inner_latch = Arc::new(Latch::new(8));
                for _ in 0..8 {
                    let inner_latch = Arc::clone(&inner_latch);
                    let done = Arc::clone(&done);
                    exec2.spawn(move || {
                        done.fetch_add(1, Ordering::Relaxed);
                        inner_latch.count_down();
                    });
                }
                exec2.wait(&inner_latch);
                latch.count_down();
            });
        }
        exec.wait(&latch);
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_spawned_tasks_can_be_stolen() {
        // One worker floods its own deque while holding the pool hostage;
        // the other worker must steal the flood.
        let exec = Executor::new(2);
        let latch = Arc::new(Latch::new(64));
        {
            let exec2 = exec.clone();
            let latch = Arc::clone(&latch);
            exec.spawn(move || {
                for _ in 0..64 {
                    let latch = Arc::clone(&latch);
                    exec2.spawn(move || {
                        std::thread::sleep(Duration::from_micros(100));
                        latch.count_down();
                    });
                }
            });
        }
        // External wait: blocks on the latch without helping.
        exec.wait(&latch);
        assert!(latch.is_done());
    }

    #[test]
    fn a_panicking_task_does_not_kill_the_pool() {
        let exec = Executor::new(1);
        exec.spawn(|| panic!("boom"));
        let latch = Arc::new(Latch::new(1));
        {
            let latch = Arc::clone(&latch);
            exec.spawn(move || latch.count_down());
        }
        exec.wait(&latch);
    }

    #[test]
    fn run_all_blocks_until_done() {
        let exec = Executor::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..20)
            .map(|_| {
                let hits = Arc::clone(&hits);
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        exec.run_all(tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn latch_zero_starts_open() {
        let latch = Latch::new(0);
        assert!(latch.is_done());
        latch.wait(); // must not block
    }

    #[test]
    fn workers_from_env_parses() {
        // Not exercised via the environment (tests run in parallel);
        // the parse rules are covered through Executor::new instead.
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn interactive_tasks_run_ahead_of_earlier_background_tasks() {
        // Hold the single worker hostage, queue a background task, then
        // an interactive one: the interactive task must run first even
        // though it was submitted later.
        let exec = Executor::new(1);
        let release = Arc::new(Latch::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new(Latch::new(3));
        {
            let release = Arc::clone(&release);
            let done = Arc::clone(&done);
            exec.spawn(move || {
                release.wait();
                done.count_down();
            });
        }
        // Give the worker a moment to pick up the blocker, so the next
        // two submissions genuinely queue behind it.
        std::thread::sleep(Duration::from_millis(20));
        {
            let order = Arc::clone(&order);
            let done = Arc::clone(&done);
            exec.spawn_background(move || {
                order.lock().unwrap().push("background");
                done.count_down();
            });
        }
        {
            let order = Arc::clone(&order);
            let done = Arc::clone(&done);
            exec.spawn(move || {
                order.lock().unwrap().push("interactive");
                done.count_down();
            });
        }
        release.count_down();
        exec.wait(&done);
        assert_eq!(*order.lock().unwrap(), vec!["interactive", "background"]);
    }

    #[test]
    fn background_tasks_run_when_the_pool_is_idle() {
        let exec = Executor::new(2);
        let latch = Arc::new(Latch::new(16));
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let latch = Arc::clone(&latch);
            let hits = Arc::clone(&hits);
            exec.spawn_background(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                latch.count_down();
            });
        }
        exec.wait(&latch);
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let exec = Executor::new(2);
        let latch = Arc::new(Latch::new(1));
        {
            let latch = Arc::clone(&latch);
            exec.spawn(move || latch.count_down());
        }
        exec.wait(&latch);
        drop(exec); // must not hang
    }
}
