//! The dependency-DAG scheduler.
//!
//! A [`Dag`] is a set of labeled nodes with dependency edges and fallible
//! closures. [`Dag::run`] schedules every node whose dependencies have all
//! succeeded onto an [`Executor`], lets independent nodes run
//! concurrently, and waits (helpfully — see [`Executor::wait`]) for the
//! whole graph. Three outcomes exist per node:
//!
//! * **ran** — the closure executed (successfully or not);
//! * **cached** — the node was added with [`Dag::cached`]: it completes
//!   inline the moment its dependencies finish, without a task ever being
//!   queued. This is how the session layer's warm cache hits
//!   short-circuit scheduling;
//! * **skipped** — a (transitive) dependency failed, so the closure never
//!   ran.
//!
//! The first error (in completion order) is reported; a panic inside a
//! node is captured and re-raised from [`Dag::run`] on the calling
//! thread.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::executor::{Executor, Latch, Priority};

type NodeFn<E> = Box<dyn FnOnce() -> Result<(), E> + Send + 'static>;

/// Identifies a node within one [`Dag`] (returned by [`Dag::node`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// How one node ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// The closure ran and returned `Ok`.
    Ran,
    /// The closure ran and returned `Err`.
    Failed,
    /// The node was a cache hit: completed without scheduling.
    Cached,
    /// A transitive dependency failed; the closure never ran.
    Skipped,
}

/// Per-node record of one [`Dag::run`].
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// The node's label.
    pub label: String,
    /// How it ended.
    pub status: NodeStatus,
    /// Wall-clock time inside the closure ([`Duration::ZERO`] unless the
    /// node ran).
    pub duration: Duration,
}

/// Everything one [`Dag::run`] produced.
#[derive(Debug)]
pub struct DagOutcome<E> {
    /// Per-node records, in the order the nodes were added.
    pub outcomes: Vec<NodeOutcome>,
    /// The first error any node returned, if any.
    pub error: Option<E>,
}

impl<E> DagOutcome<E> {
    /// True when every node ran (or was cached) successfully.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }

    /// The outcome recorded for `id`.
    pub fn outcome(&self, id: NodeId) -> &NodeOutcome {
        &self.outcomes[id.0]
    }
}

enum NodeKind<E> {
    Cached,
    Task(NodeFn<E>),
}

struct NodeSpec<E> {
    label: String,
    deps: Vec<usize>,
    kind: NodeKind<E>,
}

/// A dependency DAG of fallible tasks. Build with [`Dag::node`] /
/// [`Dag::cached`], execute once with [`Dag::run`].
pub struct Dag<E> {
    nodes: Vec<NodeSpec<E>>,
}

impl<E> Default for Dag<E> {
    fn default() -> Self {
        Dag { nodes: Vec::new() }
    }
}

struct RunState<E> {
    tasks: Vec<Mutex<Option<NodeFn<E>>>>,
    cached: Vec<bool>,
    labels: Vec<String>,
    pending_deps: Vec<AtomicUsize>,
    dependents: Vec<Vec<usize>>,
    dep_failed: Vec<AtomicBool>,
    results: Vec<OnceLock<(NodeStatus, Duration)>>,
    error: Mutex<Option<E>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    latch: Latch,
    exec: Executor,
    priority: Priority,
}

impl<E: Send + 'static> RunState<E> {
    /// Marks node `i` finished with `status`; failure (or skip) poisons
    /// dependents. Ready dependents are scheduled.
    fn complete(self: &Arc<Self>, i: usize, status: NodeStatus, duration: Duration) {
        let _ = self.results[i].set((status, duration));
        let failed = matches!(status, NodeStatus::Failed | NodeStatus::Skipped);
        for &d in &self.dependents[i] {
            if failed {
                self.dep_failed[d].store(true, Ordering::Release);
            }
            if self.pending_deps[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.schedule(d);
            }
        }
        self.latch.count_down();
    }

    /// All dependencies of `i` are done: run it inline (cached / skipped)
    /// or queue its closure on the executor.
    fn schedule(self: &Arc<Self>, i: usize) {
        if self.dep_failed[i].load(Ordering::Acquire) {
            self.complete(i, NodeStatus::Skipped, Duration::ZERO);
            return;
        }
        if self.cached[i] {
            self.complete(i, NodeStatus::Cached, Duration::ZERO);
            return;
        }
        let state = Arc::clone(self);
        // Request-id causality: a node spawned while a daemon request is
        // being handled (or by a node that was) carries that request's id
        // onto the worker thread, so telemetry emitted inside the task —
        // store lookups, event-log lines — joins back to the request.
        let req_id = yalla_obs::reqid::current();
        self.exec.spawn_at(self.priority, move || {
            let _ambient = yalla_obs::reqid::set(req_id);
            let task = state.tasks[i]
                .lock()
                .expect("dag task lock")
                .take()
                .expect("node scheduled once");
            let start = Instant::now();
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            let duration = start.elapsed();
            match verdict {
                Ok(Ok(())) => state.complete(i, NodeStatus::Ran, duration),
                Ok(Err(e)) => {
                    let mut slot = state.error.lock().expect("dag error lock");
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    drop(slot);
                    state.complete(i, NodeStatus::Failed, duration);
                }
                Err(payload) => {
                    let mut slot = state.panic.lock().expect("dag panic lock");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    drop(slot);
                    state.complete(i, NodeStatus::Failed, duration);
                }
            }
        });
    }
}

impl<E: Send + 'static> Dag<E> {
    /// An empty DAG.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes were added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a compute node that runs `f` once every node in `deps`
    /// succeeded.
    pub fn node(
        &mut self,
        label: impl Into<String>,
        deps: &[NodeId],
        f: impl FnOnce() -> Result<(), E> + Send + 'static,
    ) -> NodeId {
        self.push(label, deps, NodeKind::Task(Box::new(f)))
    }

    /// Adds a pre-satisfied node: it completes inline as soon as its
    /// dependencies finish, without occupying a worker. Used for stages
    /// whose artifact cache already holds the answer.
    pub fn cached(&mut self, label: impl Into<String>, deps: &[NodeId]) -> NodeId {
        self.push(label, deps, NodeKind::Cached)
    }

    fn push(&mut self, label: impl Into<String>, deps: &[NodeId], kind: NodeKind<E>) -> NodeId {
        let id = NodeId(self.nodes.len());
        for d in deps {
            assert!(d.0 < id.0, "dependencies must be added before dependents");
        }
        self.nodes.push(NodeSpec {
            label: label.into(),
            deps: deps.iter().map(|d| d.0).collect(),
            kind,
        });
        id
    }

    /// Executes the graph on `exec` at [`Priority::Interactive`],
    /// blocking until every node completed or was skipped.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any node closure raised.
    pub fn run(self, exec: &Executor) -> DagOutcome<E> {
        self.run_at(exec, Priority::Interactive)
    }

    /// Executes the graph on `exec`, queueing every node at `priority`.
    /// Background graphs (a daemon warm-up prefetch) only occupy idle
    /// workers — queued interactive tasks always go first.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any node closure raised.
    pub fn run_at(self, exec: &Executor, priority: Priority) -> DagOutcome<E> {
        let n = self.nodes.len();
        let mut tasks = Vec::with_capacity(n);
        let mut cached = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut pending = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, spec) in self.nodes.into_iter().enumerate() {
            labels.push(spec.label);
            pending.push(AtomicUsize::new(spec.deps.len()));
            for d in &spec.deps {
                dependents[*d].push(i);
            }
            match spec.kind {
                NodeKind::Cached => {
                    cached.push(true);
                    tasks.push(Mutex::new(None));
                }
                NodeKind::Task(f) => {
                    cached.push(false);
                    tasks.push(Mutex::new(Some(f)));
                }
            }
        }
        let state = Arc::new(RunState {
            tasks,
            cached,
            labels,
            pending_deps: pending,
            dependents,
            dep_failed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            results: (0..n).map(|_| OnceLock::new()).collect(),
            error: Mutex::new(None),
            panic: Mutex::new(None),
            latch: Latch::new(n),
            exec: exec.clone(),
            priority,
        });
        let roots: Vec<usize> = (0..n)
            .filter(|&i| state.pending_deps[i].load(Ordering::Acquire) == 0)
            .collect();
        for i in roots {
            state.schedule(i);
        }
        exec.wait(&state.latch);

        if let Some(payload) = state.panic.lock().expect("dag panic lock").take() {
            std::panic::resume_unwind(payload);
        }
        let error = state.error.lock().expect("dag error lock").take();
        let outcomes = state
            .results
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let (status, duration) = *cell.get().expect("all nodes completed");
                NodeOutcome {
                    label: state.labels[i].clone(),
                    status,
                    duration,
                }
            })
            .collect();
        DagOutcome { outcomes, error }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn exec() -> Executor {
        Executor::new(2)
    }

    #[test]
    fn respects_dependency_order() {
        // a -> b -> d, a -> c -> d: d must observe b and c, which must
        // observe a.
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut dag: Dag<()> = Dag::new();
        let push = |log: &Arc<Mutex<Vec<&'static str>>>, tag: &'static str| {
            let log = Arc::clone(log);
            move || {
                log.lock().unwrap().push(tag);
                Ok(())
            }
        };
        let a = dag.node("a", &[], push(&log, "a"));
        let b = dag.node("b", &[a], push(&log, "b"));
        let c = dag.node("c", &[a], push(&log, "c"));
        let _d = dag.node("d", &[b, c], push(&log, "d"));
        let run = dag.run(&exec());
        assert!(run.ok());
        let order = log.lock().unwrap().clone();
        assert_eq!(order[0], "a");
        assert_eq!(order[3], "d");
    }

    #[test]
    fn independent_nodes_fan_out() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut dag: Dag<()> = Dag::new();
        let root = dag.node("root", &[], || Ok(()));
        for i in 0..32 {
            let hits = Arc::clone(&hits);
            dag.node(format!("leaf{i}"), &[root], move || {
                hits.fetch_add(1, Ordering::Relaxed);
                Ok(())
            });
        }
        assert!(dag.run(&exec()).ok());
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn cached_nodes_complete_without_scheduling() {
        let mut dag: Dag<()> = Dag::new();
        let a = dag.cached("a", &[]);
        let b = dag.cached("b", &[a]);
        let ran = Arc::new(AtomicU64::new(0));
        {
            let ran = Arc::clone(&ran);
            dag.node("c", &[b], move || {
                ran.fetch_add(1, Ordering::Relaxed);
                Ok(())
            });
        }
        let run = dag.run(&exec());
        assert!(run.ok());
        assert_eq!(run.outcome(a).status, NodeStatus::Cached);
        assert_eq!(run.outcome(b).status, NodeStatus::Cached);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn errors_skip_transitive_dependents_only() {
        let mut dag: Dag<String> = Dag::new();
        let bad = dag.node("bad", &[], || Err("nope".to_string()));
        let child = dag.node("child", &[bad], || Ok(()));
        let grandchild = dag.node("grandchild", &[child], || Ok(()));
        let unrelated = dag.node("unrelated", &[], || Ok(()));
        let run = dag.run(&exec());
        assert_eq!(run.error.as_deref(), Some("nope"));
        assert_eq!(run.outcome(bad).status, NodeStatus::Failed);
        assert_eq!(run.outcome(child).status, NodeStatus::Skipped);
        assert_eq!(run.outcome(grandchild).status, NodeStatus::Skipped);
        assert_eq!(run.outcome(unrelated).status, NodeStatus::Ran);
    }

    #[test]
    #[should_panic(expected = "node exploded")]
    fn node_panics_propagate_to_the_caller() {
        let mut dag: Dag<()> = Dag::new();
        dag.node("boom", &[], || panic!("node exploded"));
        dag.run(&exec());
    }

    #[test]
    fn empty_dag_completes() {
        let dag: Dag<()> = Dag::new();
        let run = dag.run(&exec());
        assert!(run.ok());
        assert!(run.outcomes.is_empty());
    }

    #[test]
    fn runs_on_a_single_worker() {
        // The whole graph must complete on one worker (sequentially).
        let hits = Arc::new(AtomicU64::new(0));
        let mut dag: Dag<()> = Dag::new();
        let a = dag.node("a", &[], || Ok(()));
        for i in 0..8 {
            let hits = Arc::clone(&hits);
            dag.node(format!("n{i}"), &[a], move || {
                hits.fetch_add(1, Ordering::Relaxed);
                Ok(())
            });
        }
        assert!(dag.run(&Executor::new(1)).ok());
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn durations_recorded_for_ran_nodes() {
        let mut dag: Dag<()> = Dag::new();
        let slow = dag.node("slow", &[], || {
            std::thread::sleep(Duration::from_millis(2));
            Ok(())
        });
        let run = dag.run(&exec());
        assert!(run.outcome(slow).duration >= Duration::from_millis(2));
    }

    #[test]
    fn nodes_inherit_the_spawners_request_id() {
        // The causality guarantee the serve daemon's telemetry relies
        // on: every node — including transitively-scheduled dependents
        // running on other worker threads — observes the request id
        // ambient where `run` was called.
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut dag: Dag<()> = Dag::new();
        let record = |seen: &Arc<Mutex<Vec<u64>>>| {
            let seen = Arc::clone(seen);
            move || {
                seen.lock().unwrap().push(yalla_obs::reqid::current());
                Ok(())
            }
        };
        let a = dag.node("a", &[], record(&seen));
        let b = dag.node("b", &[a], record(&seen));
        dag.node("c", &[a, b], record(&seen));
        let guard = yalla_obs::reqid::set(41);
        assert!(dag.run(&Executor::new(4)).ok());
        drop(guard);
        assert_eq!(*seen.lock().unwrap(), vec![41, 41, 41]);
        // And the ambient id never leaks into unrelated work.
        let mut clean: Dag<()> = Dag::new();
        let seen2 = Arc::new(Mutex::new(Vec::new()));
        clean.node("x", &[], record(&seen2));
        assert!(clean.run(&Executor::new(2)).ok());
        assert_eq!(*seen2.lock().unwrap(), vec![0]);
    }
}
