//! Cooperative cancellation tokens.
//!
//! A [`CancelToken`] is a cheap, cloneable flag threaded from the request
//! layer (`yalla serve`) through `Session::rerun` into the DAG node
//! closures. Cancellation is *cooperative*: nothing is interrupted
//! mid-computation — the pipeline polls the token at well-defined
//! *cancel points* (stage and per-source-rewrite boundaries, plus the
//! disk-store probe) and abandons the run with a clean error when the
//! flag is up. That makes stage boundaries the only places a run can
//! stop, which is exactly what keeps the memoized stage slots and the
//! on-disk store consistent: a stage either completed and published its
//! artifact under its content key, or it never ran.
//!
//! For deterministic race testing the token can also be *armed* with
//! [`CancelToken::trip_after`]: the N-th [`CancelToken::checkpoint`]
//! call cancels the token itself, no timing involved. Iterating N over
//! the boundary count injects a cancellation at every stage boundary of
//! a run — the interleaving harness (`tests/cancel.rs`) and the fuzz
//! `--cancel-every` mode are built on this.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    /// When non-zero, the `trip_at`-th checkpoint cancels the token.
    trip_at: AtomicU64,
    /// Cancel points observed so far (across all clones).
    checkpoints: AtomicU64,
}

/// A cooperative cancellation flag shared by everyone working on one
/// run. Clones observe the same state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; never blocks. Work already past its
    /// last cancel point completes normally — cancellation is advisory
    /// until the next checkpoint.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] was called (or an armed trip
    /// fired). A pure read: does not count as a cancel point.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Records one cancel point and returns whether the run should stop.
    /// If the token was armed with [`CancelToken::trip_after`] and this
    /// is the N-th checkpoint, the token cancels itself first — the
    /// deterministic injection hook.
    pub fn checkpoint(&self) -> bool {
        let seen = self.inner.checkpoints.fetch_add(1, Ordering::AcqRel) + 1;
        let trip = self.inner.trip_at.load(Ordering::Acquire);
        if trip != 0 && seen >= trip {
            self.cancel();
        }
        self.is_cancelled()
    }

    /// Arms the token to cancel itself at the `n`-th checkpoint
    /// (1-based). `0` disarms. Checkpoints already recorded count.
    pub fn trip_after(&self, n: u64) {
        self.inner.trip_at.store(n, Ordering::Release);
    }

    /// Cancel points recorded so far — how far a run got before it was
    /// (or would have been) stopped.
    pub fn checkpoints(&self) -> u64 {
        self.inner.checkpoints.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_and_counts_checkpoints() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.checkpoint());
        assert!(!t.checkpoint());
        assert_eq!(t.checkpoints(), 2);
    }

    #[test]
    fn cancel_is_shared_across_clones_and_sticky() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(t.checkpoint(), "checkpoint reports the raised flag");
        c.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn armed_token_trips_at_the_exact_checkpoint() {
        let t = CancelToken::new();
        t.trip_after(3);
        assert!(!t.checkpoint());
        assert!(!t.checkpoint());
        assert!(!t.is_cancelled(), "not tripped before the armed point");
        assert!(t.checkpoint(), "third checkpoint trips");
        assert!(t.is_cancelled());
    }

    #[test]
    fn trip_counts_checkpoints_across_clones() {
        let t = CancelToken::new();
        t.trip_after(2);
        let c = t.clone();
        assert!(!c.checkpoint());
        assert!(t.checkpoint(), "clone checkpoints share the counter");
    }

    #[test]
    fn is_cancelled_is_not_a_cancel_point() {
        let t = CancelToken::new();
        t.trip_after(1);
        for _ in 0..10 {
            assert!(!t.is_cancelled());
        }
        assert!(t.checkpoint(), "only checkpoint() advances the trip");
    }
}
