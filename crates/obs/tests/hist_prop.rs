//! Property tests for the latency histogram: merged-histogram quantiles
//! must bound the union's *exact* quantiles within one bucket's relative
//! error, for arbitrary inputs.

use proptest::prelude::*;
use yalla_obs::Histogram;

/// The exact rank-⌈qN⌉ order statistic of `sorted`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(a, b) quantiles bound the union's exact quantiles:
    /// `exact <= estimate <= exact * (1 + 2^-SUB_BITS) + 1`.
    #[test]
    fn merged_quantiles_bound_exact_union_quantiles(
        a in prop::collection::vec(0u64..2_000_000, 1..200),
        b in prop::collection::vec(0u64..2_000_000, 0..200),
    ) {
        let (ha, hb) = (Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        ha.merge_from(&hb);

        let mut union: Vec<u64> = a.iter().chain(&b).copied().collect();
        union.sort_unstable();
        let snap = ha.snapshot();
        prop_assert_eq!(snap.count, union.len() as u64);

        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&union, q);
            let est = snap.quantile(q);
            prop_assert!(est >= exact, "q={} est={} < exact={}", q, est, exact);
            // One bucket's width is at most lo/16; +1 absorbs the
            // integer-boundary case for tiny values.
            prop_assert!(
                est <= exact + exact / 16 + 1,
                "q={} est={} too far above exact={}", q, est, exact
            );
        }
        prop_assert_eq!(snap.quantile(1.0), *union.last().unwrap());
    }

    /// Merging is exact: recording the union directly and merging two
    /// halves produce identical snapshots (buckets, count, sum, min, max).
    #[test]
    fn merge_equals_direct_union_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let (ha, hb, direct) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
            direct.record(v);
        }
        for &v in &b {
            hb.record(v);
            direct.record(v);
        }
        ha.merge_from(&hb);
        prop_assert_eq!(ha.snapshot(), direct.snapshot());
    }
}
