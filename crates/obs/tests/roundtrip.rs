//! Integration tests: the profiler's output round-trips through the
//! Chrome-trace writer and back through the validating JSON parser.

use proptest::prelude::*;
use yalla_obs::json::{self, JsonValue};
use yalla_obs::{chrome, Event, Phase, Profiler};

/// Reads `field` of the `i`-th event object of a parsed trace array.
fn field<'a>(trace: &'a JsonValue, i: usize, field: &str) -> &'a JsonValue {
    trace.as_array().expect("array")[i]
        .get(field)
        .unwrap_or_else(|| panic!("event {i} missing {field}"))
}

#[test]
fn span_nesting_and_ordering_round_trip() {
    let p = Profiler::new();
    p.set_enabled(true);
    {
        let _a = p.span("engine", "substitute");
        {
            let _b = p.span("engine", "parse");
            let _c = p.span("frontend", "preprocess");
        }
        let _d = p.span("engine", "analyze");
    }

    let text = p.chrome_trace();
    let parsed = json::parse(&text).expect("writer emits valid JSON");
    let events = parsed.as_array().expect("array");
    assert_eq!(events.len(), 4);

    // Events appear in close order: preprocess, parse, analyze, substitute.
    let names: Vec<&str> = (0..4)
        .map(|i| field(&parsed, i, "name").as_str().unwrap())
        .collect();
    assert_eq!(names, ["preprocess", "parse", "analyze", "substitute"]);

    // Reconstruct nesting from ts/dur exactly the way the trace viewer
    // does, and check the hierarchy survived serialization.
    let get = |i: usize| {
        let ts = field(&parsed, i, "ts").as_f64().unwrap();
        let dur = field(&parsed, i, "dur").as_f64().unwrap();
        (ts, ts + dur)
    };
    let (pre_s, pre_e) = get(0);
    let (parse_s, parse_e) = get(1);
    let (ana_s, ana_e) = get(2);
    let (sub_s, sub_e) = get(3);
    assert!(
        sub_s <= parse_s && parse_e <= sub_e,
        "parse inside substitute"
    );
    assert!(
        parse_s <= pre_s && pre_e <= parse_e,
        "preprocess inside parse"
    );
    assert!(
        sub_s <= ana_s && ana_e <= sub_e,
        "analyze inside substitute"
    );
    assert!(parse_e <= ana_s, "analyze starts after parse closes");
}

#[test]
fn counter_events_interleave_with_spans() {
    let p = Profiler::new();
    p.set_enabled(true);
    {
        let _s = p.span("pp", "file.hpp");
        p.count("pp.files_preprocessed", 1);
        p.count("pp.lines_preprocessed", 120);
    }
    let parsed = json::parse(&p.chrome_trace()).expect("valid JSON");
    let events = parsed.as_array().unwrap();
    assert_eq!(events.len(), 3);
    assert_eq!(field(&parsed, 0, "ph").as_str(), Some("C"));
    assert_eq!(
        field(&parsed, 1, "args")
            .get("value")
            .and_then(JsonValue::as_f64),
        Some(120.0)
    );
    assert_eq!(field(&parsed, 2, "ph").as_str(), Some("X"));
}

#[test]
fn disabled_profiler_serializes_to_an_empty_trace() {
    let p = Profiler::new();
    {
        let _s = p.span("engine", "parse");
        p.count("n", 1);
    }
    let parsed = json::parse(&p.chrome_trace()).expect("valid JSON");
    assert_eq!(parsed.as_array().unwrap().len(), 0);
}

#[test]
fn counters_aggregate_across_threads_through_the_profiler() {
    let p = Profiler::new();
    p.set_enabled(true);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let p = p.clone();
            scope.spawn(move || {
                for _ in 0..100 {
                    p.count("shared.work", 1);
                }
            });
        }
    });
    assert_eq!(p.metrics().counter("shared.work").get(), 400);
    // The last counter sample in the trace carries the final total.
    let events = p.events();
    let last_value = events
        .iter()
        .rev()
        .find(|e| e.ph == Phase::Counter)
        .and_then(|e| match &e.args[..] {
            [(_, yalla_obs::ArgValue::Int(v))] => Some(*v),
            _ => None,
        });
    assert_eq!(last_value, Some(400));
}

#[test]
fn multiple_processes_coexist_via_pid_metadata() {
    let mut events = vec![
        Event::process_name(1, "config=default"),
        Event::process_name(2, "config=yalla"),
    ];
    events.push(Event::complete("compile", "sim", 0.0, 500.0, 1, 1));
    events.push(Event::complete("compile", "sim", 0.0, 20.0, 2, 1));
    let parsed = json::parse(&chrome::to_json(&events)).expect("valid JSON");
    let arr = parsed.as_array().unwrap();
    assert_eq!(arr[0].get("ph").and_then(JsonValue::as_str), Some("M"));
    assert_eq!(
        arr[1]
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(JsonValue::as_str),
        Some("config=yalla")
    );
    let pids: Vec<f64> = arr[2..]
        .iter()
        .map(|e| e.get("pid").and_then(JsonValue::as_f64).unwrap())
        .collect();
    assert_eq!(pids, [1.0, 2.0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary span names — any non-control junk, including quotes and
    /// backslashes via \PC, plus explicit escapes worth forcing — always
    /// serialize to valid JSON and survive the round trip byte-for-byte.
    #[test]
    fn arbitrary_span_names_serialize_to_valid_json(
        name in prop_oneof![
            "\\PC*",
            "[a-z\"\\\\]{1,12}".prop_map(|s| format!("{s}\n\t")),
        ]
    ) {
        let p = Profiler::new();
        p.set_enabled(true);
        p.span("prop", &name).finish();
        let text = p.chrome_trace();
        let parsed = yalla_obs::json::parse(&text)
            .unwrap_or_else(|e| panic!("invalid JSON for name {name:?}: {e}\n{text}"));
        let round_tripped = parsed.as_array().unwrap()[0]
            .get("name")
            .and_then(yalla_obs::json::JsonValue::as_str)
            .unwrap()
            .to_string();
        prop_assert_eq!(round_tripped, name);
    }

    /// Arbitrary metric names produce valid counter events too.
    #[test]
    fn arbitrary_counter_names_serialize_to_valid_json(name in "\\PC*", delta in 0i64..1000) {
        let p = Profiler::new();
        p.set_enabled(true);
        p.count(&name, delta);
        let parsed = yalla_obs::json::parse(&p.chrome_trace()).expect("valid JSON");
        let v = parsed.as_array().unwrap()[0]
            .get("args").unwrap().get("value").and_then(yalla_obs::json::JsonValue::as_f64);
        prop_assert_eq!(v, Some(delta as f64));
    }
}
