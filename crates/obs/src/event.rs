//! The shared trace-event model.
//!
//! One event type serves every producer in the workspace: the tool's own
//! profiler (`-ftime-trace`-style self-profiling) and the simulator's
//! virtual-time traces both serialize through
//! [`chrome::to_json`](crate::chrome::to_json), so a tool self-profile
//! and a simulated build load side-by-side in `chrome://tracing` /
//! Perfetto.

/// The Chrome-trace phase of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete duration event (`ph: "X"`).
    Complete,
    /// A counter sample (`ph: "C"`).
    Counter,
    /// An instant marker (`ph: "i"`).
    Instant,
    /// Process/thread metadata (`ph: "M"`), e.g. `process_name`.
    Metadata,
}

impl Phase {
    /// The single-letter Chrome-trace code.
    pub fn code(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Counter => "C",
            Phase::Instant => "i",
            Phase::Metadata => "M",
        }
    }
}

/// A value attached to an event's `args` object.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An integer argument.
    Int(i64),
    /// A float argument.
    Float(f64),
    /// A string argument.
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (span name, counter name, or metadata kind).
    pub name: String,
    /// Category (e.g. `engine`, `pp`, `compile`).
    pub cat: String,
    /// Phase.
    pub ph: Phase,
    /// Start timestamp in microseconds (wall-clock for self-profiles,
    /// virtual time for simulator traces).
    pub ts_us: f64,
    /// Duration in microseconds (only meaningful for [`Phase::Complete`]).
    pub dur_us: f64,
    /// Process id — different producers (configs, runs) use different
    /// pids so their tracks stay separate in the viewer.
    pub pid: u32,
    /// Thread id.
    pub tid: u64,
    /// Arguments rendered into the event's `args` object.
    pub args: Vec<(String, ArgValue)>,
}

impl Event {
    /// A complete (duration) event.
    pub fn complete(name: &str, cat: &str, ts_us: f64, dur_us: f64, pid: u32, tid: u64) -> Self {
        Event {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: Phase::Complete,
            ts_us,
            dur_us,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// A counter sample carrying a single `value` argument.
    pub fn counter(name: &str, ts_us: f64, value: i64, pid: u32, tid: u64) -> Self {
        Event {
            name: name.to_string(),
            cat: "metric".to_string(),
            ph: Phase::Counter,
            ts_us,
            dur_us: 0.0,
            pid,
            tid,
            args: vec![("value".to_string(), ArgValue::Int(value))],
        }
    }

    /// An instant marker (zero-width moment, e.g. "edit" in a dev-cycle
    /// timeline).
    pub fn instant(name: &str, cat: &str, ts_us: f64, pid: u32, tid: u64) -> Self {
        Event {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: Phase::Instant,
            ts_us,
            dur_us: 0.0,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// A `process_name` metadata event, so traces from several producers
    /// label their tracks when loaded together.
    pub fn process_name(pid: u32, label: &str) -> Self {
        Event {
            name: "process_name".to_string(),
            cat: "__metadata".to_string(),
            ph: Phase::Metadata,
            ts_us: 0.0,
            dur_us: 0.0,
            pid,
            tid: 0,
            args: vec![("name".to_string(), ArgValue::Str(label.to_string()))],
        }
    }

    /// A `thread_name` metadata event.
    pub fn thread_name(pid: u32, tid: u64, label: &str) -> Self {
        Event {
            name: "thread_name".to_string(),
            cat: "__metadata".to_string(),
            ph: Phase::Metadata,
            ts_us: 0.0,
            dur_us: 0.0,
            pid,
            tid,
            args: vec![("name".to_string(), ArgValue::Str(label.to_string()))],
        }
    }

    /// End timestamp (µs).
    pub fn end_us(&self) -> f64 {
        self.ts_us + self.dur_us
    }

    /// True when `other` lies strictly inside this event's time range on
    /// the same pid/tid — the nesting relation Chrome's flame view draws.
    pub fn encloses(&self, other: &Event) -> bool {
        self.pid == other.pid
            && self.tid == other.tid
            && self.ts_us <= other.ts_us
            && other.end_us() <= self.end_us()
            && self.dur_us > other.dur_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_codes() {
        assert_eq!(Phase::Complete.code(), "X");
        assert_eq!(Phase::Counter.code(), "C");
        assert_eq!(Phase::Instant.code(), "i");
        assert_eq!(Phase::Metadata.code(), "M");
    }

    #[test]
    fn enclosure_requires_same_track() {
        let outer = Event::complete("outer", "c", 0.0, 100.0, 1, 1);
        let inner = Event::complete("inner", "c", 10.0, 20.0, 1, 1);
        let other_thread = Event::complete("inner", "c", 10.0, 20.0, 1, 2);
        assert!(outer.encloses(&inner));
        assert!(!outer.encloses(&other_thread));
        assert!(!inner.encloses(&outer));
    }

    #[test]
    fn counter_carries_value() {
        let e = Event::counter("files", 5.0, 42, 1, 1);
        assert_eq!(e.args, vec![("value".to_string(), ArgValue::Int(42))]);
        assert_eq!(e.ph, Phase::Counter);
    }
}
