//! The profiler: hierarchical RAII spans plus counter events, recorded
//! against a shared wall-clock epoch.
//!
//! Design constraints (from the paper's own methodology — `-ftime-trace`
//! style attribution of where time goes):
//!
//! * **Negligible overhead when disabled.** `span()` always reads the
//!   clock (so callers can derive timings from spans whether or not a
//!   trace is being collected) but allocates and records nothing unless
//!   the profiler is enabled; the enabled check is one relaxed atomic
//!   load.
//! * **Thread-aware.** Each OS thread gets a stable small `tid` on first
//!   use; events from worker threads land on their own tracks.
//! * **One event model.** Events are [`crate::Event`]s, shared with the
//!   simulator's virtual-time traces.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::event::{ArgValue, Event, Phase};
use crate::hist::{Histogram, HistogramRegistry};
use crate::metrics::MetricsRegistry;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's stable small profiler tid (assigned on first
/// use; also stamped on trace events and event-log lines).
pub fn current_tid() -> u64 {
    THREAD_TID.with(|t| *t)
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    pid: AtomicU32,
    events: Mutex<Vec<Event>>,
    metrics: MetricsRegistry,
    hists: HistogramRegistry,
}

/// A handle to a profiler; clones share the same recording.
#[derive(Debug, Clone)]
pub struct Profiler {
    inner: Arc<Inner>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A new, *disabled* profiler.
    pub fn new() -> Self {
        Profiler {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(false),
                epoch: Instant::now(),
                pid: AtomicU32::new(1),
                events: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
                hists: HistogramRegistry::new(),
            }),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Sets the pid stamped on events and pushes a `process_name`
    /// metadata event, so multiple profiles load side-by-side.
    pub fn set_process(&self, pid: u32, label: &str) {
        self.inner.pid.store(pid, Ordering::Relaxed);
        self.push(Event::process_name(pid, label));
    }

    fn now_us(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn push(&self, event: Event) {
        if self.is_enabled() {
            self.inner.events.lock().expect("events lock").push(event);
        }
    }

    /// Opens a span. The guard *always* measures wall time (so
    /// [`Span::finish`] returns a real duration even when profiling is
    /// off); an event is recorded only when the profiler is enabled at
    /// the time the span closes.
    pub fn span(&self, cat: &'static str, name: &str) -> Span {
        Span {
            profiler: self.clone(),
            // Skip the allocation when nothing will be recorded.
            name: self.is_enabled().then(|| name.to_string()),
            cat,
            ts_us: self.now_us(),
            start: Instant::now(),
            done: false,
        }
    }

    /// Records an instant marker.
    pub fn instant(&self, cat: &str, name: &str) {
        if !self.is_enabled() {
            return;
        }
        let ts = self.now_us();
        self.push(Event {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: Phase::Instant,
            ts_us: ts,
            dur_us: 0.0,
            pid: self.inner.pid.load(Ordering::Relaxed),
            tid: current_tid(),
            args: Vec::new(),
        });
    }

    /// Bumps the counter metric `name` by `delta`; when enabled, also
    /// records a counter event sampling the new total.
    pub fn count(&self, name: &str, delta: i64) {
        let total = self.inner.metrics.counter(name).add(delta);
        if self.is_enabled() {
            let ts = self.now_us();
            self.push(Event::counter(
                name,
                ts,
                total,
                self.inner.pid.load(Ordering::Relaxed),
                current_tid(),
            ));
        }
    }

    /// Sets the gauge metric `name` (no trace event).
    pub fn gauge(&self, name: &str, value: i64) {
        self.inner.metrics.gauge(name).set(value);
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The latency-histogram registry.
    pub fn histograms(&self) -> &HistogramRegistry {
        &self.inner.hists
    }

    /// The latency histogram named `name` (created on first use).
    /// Recording is always on — histograms, like metrics, aggregate
    /// whether or not trace-event recording is enabled.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner.hists.histogram(name)
    }

    /// Records `value` (µs by convention) into histogram `name`.
    pub fn observe_us(&self, name: &str, value: u64) {
        self.inner.hists.histogram(name).record(value);
    }

    /// A copy of the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().expect("events lock").clone()
    }

    /// Drains and returns the recorded events.
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.inner.events.lock().expect("events lock"))
    }

    /// Clears events and zeroes metrics and histograms.
    pub fn reset(&self) {
        self.inner.events.lock().expect("events lock").clear();
        self.inner.metrics.reset();
        self.inner.hists.reset();
    }

    /// Serializes the recorded events as Chrome-trace JSON.
    pub fn chrome_trace(&self) -> String {
        crate::chrome::to_json(&self.events())
    }

    /// Renders the human-readable span + metrics summary.
    pub fn summary(&self) -> String {
        let mut out = crate::summary::span_table(&self.events());
        out.push_str(&crate::summary::metrics_table(&self.inner.metrics));
        out
    }

    fn record_span(&self, name: String, cat: &'static str, ts_us: f64, dur: Duration) {
        self.push(Event {
            name,
            cat: cat.to_string(),
            ph: Phase::Complete,
            ts_us,
            dur_us: dur.as_secs_f64() * 1e6,
            pid: self.inner.pid.load(Ordering::Relaxed),
            tid: current_tid(),
            args: Vec::new(),
        });
    }

    /// Records a pre-measured complete event with explicit timestamps —
    /// the bridge for producers that keep their own (virtual) clock.
    pub fn record_event(&self, mut event: Event) {
        if event.pid == 0 {
            event.pid = self.inner.pid.load(Ordering::Relaxed);
        }
        self.push(event);
    }

    /// Attaches `args` to the most recent recorded event, if any (used to
    /// annotate a just-closed span with result counts).
    pub fn annotate_last(&self, args: &[(&str, ArgValue)]) {
        if !self.is_enabled() {
            return;
        }
        if let Some(last) = self.inner.events.lock().expect("events lock").last_mut() {
            for (k, v) in args {
                last.args.push((k.to_string(), v.clone()));
            }
        }
    }
}

/// RAII guard for one span. Dropping (or calling [`Span::finish`])
/// closes the span; recording happens iff the profiler was enabled when
/// the span opened.
#[derive(Debug)]
pub struct Span {
    profiler: Profiler,
    name: Option<String>,
    cat: &'static str,
    ts_us: f64,
    start: Instant,
    done: bool,
}

impl Span {
    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span and returns its measured wall-clock duration
    /// (valid whether or not profiling is enabled).
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        self.close(dur);
        dur
    }

    fn close(&mut self, dur: Duration) {
        if self.done {
            return;
        }
        self.done = true;
        if let Some(name) = self.name.take() {
            self.profiler.record_span(name, self.cat, self.ts_us, dur);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        self.close(dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_records_nothing_but_still_times() {
        let p = Profiler::new();
        let sp = p.span("t", "work");
        std::thread::sleep(Duration::from_millis(2));
        let dur = sp.finish();
        p.count("c", 3);
        p.instant("t", "marker");
        assert!(dur >= Duration::from_millis(2));
        assert!(
            p.events().is_empty(),
            "disabled profiler must record zero events"
        );
        // Metrics still aggregate while disabled.
        assert_eq!(p.metrics().counter("c").get(), 3);
    }

    #[test]
    fn enabled_mode_records_complete_events() {
        let p = Profiler::new();
        p.set_enabled(true);
        {
            let _outer = p.span("t", "outer");
            let _inner = p.span("t", "inner");
        }
        let events = p.events();
        assert_eq!(events.len(), 2);
        // Inner drops first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert!(events[1].encloses(&events[0]), "{events:?}");
    }

    #[test]
    fn spans_from_threads_get_distinct_tids() {
        let p = Profiler::new();
        p.set_enabled(true);
        let _main = p.span("t", "main").finish();
        let p2 = p.clone();
        std::thread::spawn(move || {
            p2.span("t", "worker").finish();
        })
        .join()
        .unwrap();
        let events = p.events();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn counter_events_sample_running_total() {
        let p = Profiler::new();
        p.set_enabled(true);
        p.count("n", 2);
        p.count("n", 5);
        let events = p.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].args,
            vec![("value".to_string(), ArgValue::Int(2))]
        );
        assert_eq!(
            events[1].args,
            vec![("value".to_string(), ArgValue::Int(7))]
        );
    }

    #[test]
    fn annotate_last_attaches_args() {
        let p = Profiler::new();
        p.set_enabled(true);
        p.span("t", "s").finish();
        p.annotate_last(&[("k", ArgValue::Int(9))]);
        assert_eq!(
            p.events()[0].args,
            vec![("k".to_string(), ArgValue::Int(9))]
        );
    }

    #[test]
    fn reset_clears_everything() {
        let p = Profiler::new();
        p.set_enabled(true);
        p.span("t", "s").finish();
        p.count("c", 1);
        p.reset();
        assert!(p.events().is_empty());
        assert_eq!(p.metrics().counter("c").get(), 0);
    }
}
