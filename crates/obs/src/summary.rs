//! Human-readable sinks: an aggregated span table and a metrics table.
//!
//! The span table is the terminal-friendly equivalent of loading the
//! Chrome trace — per `(category, name)` it shows call count, total and
//! mean wall time, and the share of the total profiled time, sorted by
//! total descending (the "where does time go" view the paper's Figure 10
//! asks of the tool itself).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, Phase};
use crate::metrics::{MetricKind, MetricsRegistry};

#[derive(Debug, Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_us: f64,
    max_us: f64,
}

/// Renders the aggregated span table for `events`.
pub fn span_table(events: &[Event]) -> String {
    let mut agg: BTreeMap<(String, String), SpanAgg> = BTreeMap::new();
    for e in events {
        if e.ph != Phase::Complete {
            continue;
        }
        let slot = agg.entry((e.cat.clone(), e.name.clone())).or_default();
        slot.count += 1;
        slot.total_us += e.dur_us;
        slot.max_us = slot.max_us.max(e.dur_us);
    }
    let mut out = String::from("spans (aggregated by category/name):\n");
    if agg.is_empty() {
        out.push_str("  (none recorded)\n");
        return out;
    }
    // Share is computed against the top-level envelope: the largest
    // total, which for the engine is the all-enclosing run span.
    let denom = agg
        .values()
        .map(|a| a.total_us)
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let mut rows: Vec<(&(String, String), &SpanAgg)> = agg.iter().collect();
    rows.sort_by(|a, b| b.1.total_us.total_cmp(&a.1.total_us));
    let _ = writeln!(
        out,
        "  {:<34} {:>7} {:>12} {:>12} {:>12} {:>7}",
        "category/name", "count", "total [us]", "mean [us]", "max [us]", "share"
    );
    for ((cat, name), a) in rows {
        let _ = writeln!(
            out,
            "  {:<34} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>6.1}%",
            format!("{cat}/{name}"),
            a.count,
            a.total_us,
            a.total_us / a.count as f64,
            a.max_us,
            100.0 * a.total_us / denom,
        );
    }
    out
}

/// Renders the metrics table for `metrics`.
pub fn metrics_table(metrics: &MetricsRegistry) -> String {
    let snap = metrics.snapshot();
    let mut out = String::from("metrics:\n");
    if snap.is_empty() {
        out.push_str("  (none recorded)\n");
        return out;
    }
    for (name, kind, value) in snap {
        let tag = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        let _ = writeln!(out, "  {name:<34} {tag:<8} {value:>12}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_and_sorts_by_total() {
        let events = vec![
            Event::complete("parse", "engine", 0.0, 10.0, 1, 1),
            Event::complete("parse", "engine", 10.0, 30.0, 1, 1),
            Event::complete("verify", "engine", 40.0, 5.0, 1, 1),
            Event::counter("files", 1.0, 3, 1, 1), // ignored: not Complete
        ];
        let table = span_table(&events);
        let parse_pos = table.find("engine/parse").unwrap();
        let verify_pos = table.find("engine/verify").unwrap();
        assert!(parse_pos < verify_pos, "{table}");
        assert!(table.contains("40.0"), "{table}"); // parse total
        assert!(table.contains("20.0"), "{table}"); // parse mean
    }

    #[test]
    fn empty_tables_say_so() {
        assert!(span_table(&[]).contains("(none recorded)"));
        assert!(metrics_table(&MetricsRegistry::new()).contains("(none recorded)"));
    }

    #[test]
    fn metrics_table_lists_kind_and_value() {
        let reg = MetricsRegistry::new();
        reg.counter("pp.files").add(12);
        reg.gauge("depth").set(3);
        let table = metrics_table(&reg);
        assert!(table.contains("pp.files"), "{table}");
        assert!(table.contains("counter"), "{table}");
        assert!(table.contains("gauge"), "{table}");
        assert!(table.contains("12"), "{table}");
    }
}
