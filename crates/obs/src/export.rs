//! Prometheus text-exposition rendering of the live telemetry state.
//!
//! The serve daemon's `metrics` op (and `yalla stat <socket>`) return
//! this format: one `# TYPE` header per metric family followed by its
//! samples, in the [Prometheus text format] every scraper understands.
//!
//! * Counters and gauges come straight from the [`crate::MetricsRegistry`]
//!   snapshot.
//! * Latency histograms render as *summaries*: `{quantile="0.5|0.9|0.95|
//!   0.99"}` series plus `_count` and `_sum`, read from a
//!   [`crate::hist::HistogramSnapshot`] taken with plain atomic loads —
//!   workers are never paused for a scrape.
//!
//! Dotted yalla metric names (`cache.parse.hits`) mangle to Prometheus
//! identifiers (`yalla_cache_parse_hits`).
//!
//! [Prometheus text format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use crate::hist::HistogramSnapshot;
use crate::metrics::MetricKind;
use crate::Profiler;

/// The quantiles every histogram summary exports.
pub const QUANTILES: [f64; 4] = [0.5, 0.9, 0.95, 0.99];

/// Mangles a dotted yalla metric name into a Prometheus identifier:
/// `yalla_` prefix, every non-alphanumeric character folded to `_`.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("yalla_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders counters, gauges, and histogram summaries in Prometheus text
/// exposition format.
#[must_use]
pub fn render(
    metrics: &[(String, MetricKind, i64)],
    hists: &[(String, HistogramSnapshot)],
) -> String {
    let mut out = String::new();
    for (name, kind, value) in metrics {
        let id = prometheus_name(name);
        let kind = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        let _ = writeln!(out, "# TYPE {id} {kind}");
        let _ = writeln!(out, "{id} {value}");
    }
    for (name, snap) in hists {
        let id = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {id} summary");
        for q in QUANTILES {
            let _ = writeln!(out, "{id}{{quantile=\"{q}\"}} {}", snap.quantile(q));
        }
        let _ = writeln!(out, "{id}_count {}", snap.count);
        let _ = writeln!(out, "{id}_sum {}", snap.sum);
    }
    out
}

/// Snapshots `profiler`'s metrics and histograms and renders them — the
/// one-call scrape surface used by the serve daemon.
#[must_use]
pub fn prometheus(profiler: &Profiler) -> String {
    render(
        &profiler.metrics().snapshot(),
        &profiler.histograms().snapshot(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn name_mangling_prefixes_and_folds() {
        assert_eq!(
            prometheus_name("cache.parse.hits"),
            "yalla_cache_parse_hits"
        );
        assert_eq!(
            prometheus_name("latency.serve.rerun"),
            "yalla_latency_serve_rerun"
        );
        assert_eq!(prometheus_name("weird name-1"), "yalla_weird_name_1");
    }

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let text = render(
            &[
                ("serve.requests".into(), MetricKind::Counter, 7),
                ("store.bytes".into(), MetricKind::Gauge, 4096),
            ],
            &[("latency.serve.rerun".into(), h.snapshot())],
        );
        assert!(
            text.contains("# TYPE yalla_serve_requests counter\nyalla_serve_requests 7\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE yalla_store_bytes gauge\nyalla_store_bytes 4096\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE yalla_latency_serve_rerun summary"),
            "{text}"
        );
        assert!(
            text.contains("yalla_latency_serve_rerun{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("yalla_latency_serve_rerun_count 100\n"),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "yalla_latency_serve_rerun_sum {}\n",
                (1..=100u64).sum::<u64>()
            )),
            "{text}"
        );
        // Every non-comment line is `<identifier or labeled id> <integer>`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("two fields");
            assert!(name.starts_with("yalla_"), "{line}");
            value.parse::<i64>().expect("integer sample value");
        }
    }

    #[test]
    fn scrape_from_profiler_is_one_call() {
        let p = Profiler::new();
        p.count("demo.items", 2);
        p.observe_us("latency.demo", 250);
        let text = prometheus(&p);
        assert!(text.contains("yalla_demo_items 2"), "{text}");
        assert!(text.contains("yalla_latency_demo_count 1"), "{text}");
    }
}
