//! The metrics registry: named counters and gauges, shared across
//! threads.
//!
//! Counters are monotone sums (`files preprocessed`, `wrappers
//! generated`); gauges hold the latest value (`lines in current TU`).
//! Cells are `Arc<AtomicI64>`, so a handle obtained once can be bumped
//! from any thread without re-locking the registry, and concurrent adds
//! aggregate correctly.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

/// Well-known metric names, so producers and readers agree on spelling.
pub mod names {
    /// Files that entered preprocessing.
    pub const FILES_PREPROCESSED: &str = "pp.files_preprocessed";
    /// Active source lines delivered to the parser.
    pub const LINES_PREPROCESSED: &str = "pp.lines_preprocessed";
    /// `#include` directives resolved.
    pub const INCLUDES_RESOLVED: &str = "pp.includes_resolved";
    /// Macro expansions performed.
    pub const MACRO_EXPANSIONS: &str = "pp.macro_expansions";
    /// Top-level declarations parsed into ASTs.
    pub const AST_DECLS: &str = "parse.ast_decls";
    /// Symbols entered into symbol tables.
    pub const SYMBOLS_RESOLVED: &str = "analysis.symbols_resolved";
    /// Classes/functions found used in the sources.
    pub const USED_SYMBOLS: &str = "analysis.used_symbols";
    /// Incomplete-type rule checks executed.
    pub const INCOMPLETE_CHECKS: &str = "analysis.incomplete_checks";
    /// Function + method wrappers generated.
    pub const WRAPPERS_GENERATED: &str = "engine.wrappers_generated";
    /// Source files rewritten.
    pub const REWRITES_APPLIED: &str = "engine.rewrites_applied";
    /// Engine runs completed.
    pub const ENGINE_RUNS: &str = "engine.runs";
    /// Cache hits, summed across every stage cache.
    pub const CACHE_HITS: &str = "cache.hits";
    /// Cache misses, summed across every stage cache.
    pub const CACHE_MISSES: &str = "cache.misses";
    /// Cached artifacts recomputed because their input keys changed.
    pub const CACHE_INVALIDATIONS: &str = "cache.invalidations";
    /// In-memory parse-cache entries evicted by the byte budget
    /// (`--mem-budget` / `YALLA_MEM_BUDGET`); each eviction spills to the
    /// on-disk store tier when one is attached.
    pub const CACHE_EVICTIONS: &str = "cache.evictions";
    /// Estimated bytes of parsed TUs currently resident in in-memory
    /// parse caches, process-wide (gauge).
    pub const CACHE_BYTES_RESIDENT: &str = "cache.bytes_resident";
    /// Session reruns executed (`Session::rerun`).
    pub const SESSION_RERUNS: &str = "session.reruns";
    /// Translation units actually re-parsed by session reruns (parse-stage
    /// cache misses; 0 on a fully warm rerun).
    pub const SESSION_TUS_REPARSED: &str = "session.tus_reparsed";
    /// Simulated dev-cycle iterations assembled.
    pub const SIM_ITERATIONS: &str = "sim.iterations";
    /// Tasks executed by yalla-exec worker threads.
    pub const EXEC_TASKS_EXECUTED: &str = "exec.tasks_executed";
    /// Tasks a worker stole from a sibling's deque.
    pub const EXEC_TASKS_STOLEN: &str = "exec.tasks_stolen";
    /// Times a worker parked with no work available.
    pub const EXEC_PARKS: &str = "exec.parks";
    /// Tasks spawned at background priority (prefetch / warm-up work that
    /// only runs from idle capacity).
    pub const EXEC_TASKS_BACKGROUND: &str = "exec.tasks_background";
    /// Worker threads in the global executor (gauge).
    pub const EXEC_WORKERS: &str = "exec.workers";
    /// Requests handled by the `yalla serve` daemon.
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// Requests the daemon rejected (bad JSON, unknown project, busy).
    pub const SERVE_REJECTED: &str = "serve.rejected";
    /// Edits the daemon batched (queued without an immediate rerun).
    pub const SERVE_EDITS_BATCHED: &str = "serve.edits_batched";
    /// Reruns the daemon cancelled mid-flight because a newer edit
    /// superseded them (the cancelled attempt's edits coalesce into the
    /// retry).
    pub const SERVE_CANCELLED: &str = "serve.cancelled";
    /// Edits absorbed into an already-running rerun via supersede-and-retry
    /// coalescing (beyond plain pre-rerun batching).
    pub const SERVE_EDITS_COALESCED: &str = "serve.edits_coalesced";
    /// Background warm-up reruns completed by the daemon after a restart.
    pub const SERVE_PREFETCHES: &str = "serve.prefetches";
    /// Reruns the daemon executed on behalf of clients.
    pub const SERVE_RERUNS: &str = "serve.reruns";
    /// Project shards the daemon currently holds warm (gauge).
    pub const SERVE_SHARDS: &str = "serve.shards";
    /// On-disk store entries found valid on lookup.
    pub const STORE_HITS: &str = "store.hits";
    /// On-disk store hits served as zero-copy payload views (no copy out
    /// of the record buffer; subset of `store.hits`).
    pub const STORE_ZERO_COPY_HITS: &str = "store.zero_copy_hits";
    /// On-disk store lookups that found nothing.
    pub const STORE_MISSES: &str = "store.misses";
    /// On-disk store entries evicted by the LRU size bound.
    pub const STORE_EVICTIONS: &str = "store.evictions";
    /// On-disk store entries dropped as torn/corrupt (counted as misses too).
    pub const STORE_CORRUPT: &str = "store.corruptions";
    /// Bytes of entry payloads currently held by the on-disk store (gauge).
    pub const STORE_BYTES: &str = "store.bytes";
    /// Differential-fuzzer cases executed (`yalla fuzz`).
    pub const FUZZ_CASES: &str = "fuzz.cases";
    /// Differential-fuzzer divergences detected.
    pub const FUZZ_DIVERGENCES: &str = "fuzz.divergences";
    /// Successful shrinker deletions while minimizing a divergence.
    pub const FUZZ_SHRINK_STEPS: &str = "fuzz.shrink_steps";

    /// Name of the per-stage cache counter `cache.<stage>.<outcome>`
    /// (outcome is `hits`, `misses` or `invalidations`) — the names behind
    /// the session layer's per-stage hit/miss/invalidation accounting.
    pub fn stage_cache(stage: &str, outcome: &str) -> String {
        format!("cache.{stage}.{outcome}")
    }

    /// The session pipeline stages, in execution order — the `<stage>`
    /// axis of [`stage_cache`] and [`latency_stage`].
    pub const STAGES: [&str; 6] = ["parse", "analyze", "plan", "emit", "rewrite", "verify"];

    /// The per-stage cache outcomes — the `<outcome>` axis of
    /// [`stage_cache`].
    pub const CACHE_OUTCOMES: [&str; 3] = ["hits", "misses", "invalidations"];

    /// The serve-daemon request classes (protocol ops) — the `<op>` axis
    /// of [`serve_requests`] and [`latency_serve`].
    pub const REQUEST_CLASSES: [&str; 7] = [
        "open", "edit", "rerun", "get", "status", "metrics", "shutdown",
    ];

    /// Name of the per-class request counter `serve.requests.<op>`.
    pub fn serve_requests(op: &str) -> String {
        format!("serve.requests.{op}")
    }

    /// Name of the per-class serve latency histogram `latency.serve.<op>`
    /// (request wall time in µs, measured around the daemon handler).
    pub fn latency_serve(op: &str) -> String {
        format!("latency.serve.{op}")
    }

    /// Name of the per-stage latency histogram `latency.stage.<stage>`
    /// (stage wall time in µs for non-cached executions).
    pub fn latency_stage(stage: &str) -> String {
        format!("latency.stage.{stage}")
    }

    /// Store-lookup latency histogram for lookups that hit (µs).
    pub const LATENCY_STORE_HIT: &str = "latency.store.hit";
    /// Store-lookup latency histogram for lookups that missed (µs).
    pub const LATENCY_STORE_MISS: &str = "latency.store.miss";
    /// Latency histogram for rerun attempts that were cancelled mid-flight
    /// (µs from attempt start to the cooperative stop — the wasted work a
    /// supersede saves the client from waiting out).
    pub const LATENCY_SERVE_RERUN_CANCELLED: &str = "latency.serve.rerun_cancelled";

    /// Every well-known telemetry name — the static counter/gauge
    /// constants plus the expanded dynamic families (per-stage cache
    /// counters, per-class request counters, latency histograms) —
    /// sorted. A unit test pins this set against the checked-in
    /// `crates/obs/metrics.manifest`, so adding or renaming a metric is
    /// a deliberate, reviewed act.
    pub fn all() -> Vec<String> {
        let mut names: Vec<String> = [
            FILES_PREPROCESSED,
            LINES_PREPROCESSED,
            INCLUDES_RESOLVED,
            MACRO_EXPANSIONS,
            AST_DECLS,
            SYMBOLS_RESOLVED,
            USED_SYMBOLS,
            INCOMPLETE_CHECKS,
            WRAPPERS_GENERATED,
            REWRITES_APPLIED,
            ENGINE_RUNS,
            CACHE_HITS,
            CACHE_MISSES,
            CACHE_INVALIDATIONS,
            CACHE_EVICTIONS,
            CACHE_BYTES_RESIDENT,
            SESSION_RERUNS,
            SESSION_TUS_REPARSED,
            SIM_ITERATIONS,
            EXEC_TASKS_EXECUTED,
            EXEC_TASKS_STOLEN,
            EXEC_PARKS,
            EXEC_TASKS_BACKGROUND,
            EXEC_WORKERS,
            SERVE_REQUESTS,
            SERVE_REJECTED,
            SERVE_EDITS_BATCHED,
            SERVE_CANCELLED,
            SERVE_EDITS_COALESCED,
            SERVE_PREFETCHES,
            SERVE_RERUNS,
            SERVE_SHARDS,
            STORE_HITS,
            STORE_ZERO_COPY_HITS,
            STORE_MISSES,
            STORE_EVICTIONS,
            STORE_CORRUPT,
            STORE_BYTES,
            FUZZ_CASES,
            FUZZ_DIVERGENCES,
            FUZZ_SHRINK_STEPS,
            LATENCY_STORE_HIT,
            LATENCY_STORE_MISS,
            LATENCY_SERVE_RERUN_CANCELLED,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        for stage in STAGES {
            for outcome in CACHE_OUTCOMES {
                names.push(stage_cache(stage, outcome));
            }
            names.push(latency_stage(stage));
        }
        for op in REQUEST_CLASSES {
            names.push(serve_requests(op));
            names.push(latency_serve(op));
        }
        names.sort();
        names
    }
}

/// What a metric slot is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone sum.
    Counter,
    /// Latest value.
    Gauge,
}

/// A cheap, thread-safe handle to one counter cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicI64>,
}

impl Counter {
    /// Adds `delta` and returns the new value.
    pub fn add(&self, delta: i64) -> i64 {
        self.cell.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A cheap, thread-safe handle to one gauge cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value, returning it.
    pub fn set(&self, value: i64) -> i64 {
        self.cell.store(value, Ordering::Relaxed);
        value
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct Slot {
    cell: Arc<AtomicI64>,
    kind: MetricKind,
}

/// A registry of named metric cells.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn cell(&self, name: &str, kind: MetricKind) -> Arc<AtomicI64> {
        let mut slots = self.slots.lock().expect("metrics lock");
        Arc::clone(
            &slots
                .entry(name.to_string())
                .or_insert_with(|| Slot {
                    cell: Arc::new(AtomicI64::new(0)),
                    kind,
                })
                .cell,
        )
    }

    /// The counter named `name` (created at zero on first use).
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.cell(name, MetricKind::Counter),
        }
    }

    /// The gauge named `name` (created at zero on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.cell(name, MetricKind::Gauge),
        }
    }

    /// A snapshot of every metric: `(name, kind, value)`, name-sorted.
    pub fn snapshot(&self) -> Vec<(String, MetricKind, i64)> {
        let slots = self.slots.lock().expect("metrics lock");
        slots
            .iter()
            .map(|(name, slot)| (name.clone(), slot.kind, slot.cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// Resets every cell to zero (slots stay registered).
    pub fn reset(&self) {
        let slots = self.slots.lock().expect("metrics lock");
        for slot in slots.values() {
            slot.cell.store(0, Ordering::Relaxed);
        }
    }
}

/// A per-thread counter buffer for hot loops.
///
/// [`Counter`] handles are already thread-safe, but obtaining one takes
/// the registry lock, and a tight task loop bumping many names would
/// either hold handles for every name or re-lock per bump. A
/// `LocalCounters` accumulates deltas in a plain (unsynchronized, owned)
/// map and merges them into a shared [`MetricsRegistry`] in one pass at
/// quiescent points — the yalla-exec workers flush when they park and
/// when they exit. Dropping an unflushed buffer is a bug in the owner,
/// so `Drop` asserts emptiness in debug builds; prefer an explicit
/// [`flush_into`](LocalCounters::flush_into).
///
/// The aggregate across threads is exact: every delta is added to the
/// buffer exactly once and every buffer is flushed into atomic cells, so
/// no update can be lost or double-counted regardless of interleaving.
#[derive(Debug, Default)]
pub struct LocalCounters {
    pending: HashMap<&'static str, i64>,
}

impl LocalCounters {
    /// An empty buffer.
    pub fn new() -> Self {
        LocalCounters::default()
    }

    /// Buffers `delta` against `name` (no lock taken).
    pub fn add(&mut self, name: &'static str, delta: i64) {
        *self.pending.entry(name).or_insert(0) += delta;
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Merges every buffered delta into `registry` and empties the
    /// buffer. Zero-sum entries are dropped without touching the
    /// registry.
    pub fn flush_into(&mut self, registry: &MetricsRegistry) {
        for (name, delta) in self.pending.drain() {
            if delta != 0 {
                registry.counter(name).add(delta);
            }
        }
    }
}

impl Drop for LocalCounters {
    fn drop(&mut self) {
        debug_assert!(
            self.pending.is_empty(),
            "LocalCounters dropped with unflushed deltas: {:?}",
            self.pending
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.counter("a").add(2), 2);
        assert_eq!(reg.counter("a").add(3), 5);
        assert_eq!(reg.counter("a").get(), 5);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.gauge("g").set(10);
        reg.gauge("g").set(7);
        assert_eq!(reg.gauge("g").get(), 7);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.gauge("z").set(1);
        reg.counter("a").add(4);
        let snap = reg.snapshot();
        assert_eq!(
            snap,
            vec![
                ("a".to_string(), MetricKind::Counter, 4),
                ("z".to_string(), MetricKind::Gauge, 1),
            ]
        );
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = reg.counter("shared");
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(reg.counter("shared").get(), 8000);
    }

    #[test]
    fn local_buffers_merge_exactly_from_eight_threads() {
        // Satellite requirement: hammer one counter from 8 threads
        // through per-thread buffers and check the exact total. Each
        // thread buffers 10_000 increments, flushing every 64 to
        // interleave flushes with other threads' flushes.
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let mut local = LocalCounters::new();
                    for i in 0..10_000 {
                        local.add("hammered", 1);
                        if i % 64 == 63 {
                            local.flush_into(&reg);
                        }
                    }
                    local.flush_into(&reg);
                });
            }
        });
        assert_eq!(reg.counter("hammered").get(), 80_000);
    }

    #[test]
    fn local_buffer_coalesces_and_skips_zero_sums() {
        let reg = MetricsRegistry::new();
        let mut local = LocalCounters::new();
        local.add("up", 5);
        local.add("up", 2);
        local.add("wash", 3);
        local.add("wash", -3);
        local.flush_into(&reg);
        assert!(local.is_empty());
        assert_eq!(reg.counter("up").get(), 7);
        // The zero-sum name never created a registry slot.
        assert_eq!(reg.snapshot().len(), 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_slots() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(9);
        reg.reset();
        assert_eq!(
            reg.snapshot(),
            vec![("a".to_string(), MetricKind::Counter, 0)]
        );
    }

    #[test]
    fn registered_names_match_manifest() {
        // Satellite requirement: the well-known name set is pinned by a
        // checked-in manifest, so renames/additions are deliberate and
        // every producer, DESIGN.md, and dashboards move together.
        use std::collections::BTreeSet;
        let manifest: BTreeSet<&str> = include_str!("../metrics.manifest")
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        let registered_vec = names::all();
        let registered: BTreeSet<&str> = registered_vec.iter().map(String::as_str).collect();
        let missing: Vec<&&str> = registered.difference(&manifest).collect();
        let stale: Vec<&&str> = manifest.difference(&registered).collect();
        assert!(
            missing.is_empty() && stale.is_empty(),
            "metrics.manifest drifted from names::all() —\n  not in manifest: {missing:?}\n  stale in manifest: {stale:?}"
        );
        assert_eq!(registered.len(), registered_vec.len(), "duplicate names");
    }

    #[test]
    fn dotted_name_families_share_one_scheme() {
        // The drift this guards against: `store.hit` vs `cache.hits`.
        // Every countable family uses plural leaf names.
        for name in [
            names::STORE_HITS,
            names::STORE_MISSES,
            names::STORE_EVICTIONS,
            names::STORE_CORRUPT,
            names::CACHE_HITS,
            names::CACHE_MISSES,
        ] {
            assert!(name.ends_with('s'), "{name} breaks the plural scheme");
        }
        assert_eq!(names::stage_cache("parse", "hits"), "cache.parse.hits");
        assert_eq!(names::serve_requests("rerun"), "serve.requests.rerun");
        assert_eq!(names::latency_serve("open"), "latency.serve.open");
        assert_eq!(names::latency_stage("verify"), "latency.stage.verify");
    }
}
