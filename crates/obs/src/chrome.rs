//! Chrome-trace JSON serialization (the `chrome://tracing` / Perfetto
//! array-of-events format, same shape as Clang's `-ftime-trace`).
//!
//! Hand-rolled writer — the environment has no serde — with *complete*
//! string escaping: quotes, backslashes, and every control character
//! (`\n`, `\t`, and the rest of U+0000..U+001F) per RFC 8259, so
//! arbitrary span names (file paths, generated symbols) always serialize
//! to valid JSON.

use std::fmt::Write as _;

use crate::event::{ArgValue, Event};

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite float without JSON-invalid forms (`NaN`, `inf`).
fn number(v: f64) -> String {
    if v.is_finite() {
        // One decimal of sub-µs precision, like the traces the paper's
        // artifact ships.
        format!("{v:.1}")
    } else {
        "0.0".to_string()
    }
}

fn args_object(args: &[(String, ArgValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = match v {
            ArgValue::Int(n) => write!(out, "\"{}\": {n}", escape_json(k)),
            ArgValue::Float(f) => write!(out, "\"{}\": {}", escape_json(k), number(*f)),
            ArgValue::Str(s) => write!(out, "\"{}\": \"{}\"", escape_json(k), escape_json(s)),
        };
    }
    out.push('}');
    out
}

/// Serializes one event as a JSON object.
pub fn event_json(e: &Event) -> String {
    let mut out = format!(
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, \"pid\": {}, \"tid\": {}",
        escape_json(&e.name),
        escape_json(&e.cat),
        e.ph.code(),
        number(e.ts_us),
        e.pid,
        e.tid,
    );
    if e.ph == crate::event::Phase::Complete {
        let _ = write!(out, ", \"dur\": {}", number(e.dur_us));
    }
    if e.ph == crate::event::Phase::Instant {
        out.push_str(", \"s\": \"t\"");
    }
    if !e.args.is_empty() {
        let _ = write!(out, ", \"args\": {}", args_object(&e.args));
    }
    out.push('}');
    out
}

/// Serializes events as a Chrome-trace JSON array.
pub fn to_json(events: &[Event]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&event_json(e));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::json;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape_json("\u{01}"), "\\u0001");
        assert_eq!(escape_json("\u{08}\u{0C}"), "\\b\\f");
    }

    #[test]
    fn complete_event_shape() {
        let e = Event::complete("parse", "engine", 1.25, 300.0, 2, 7);
        let j = event_json(&e);
        assert!(j.contains("\"ph\": \"X\""), "{j}");
        assert!(j.contains("\"dur\": 300.0"), "{j}");
        assert!(j.contains("\"pid\": 2"), "{j}");
        assert!(j.contains("\"tid\": 7"), "{j}");
    }

    #[test]
    fn counter_event_has_args_not_dur() {
        let e = Event::counter("files", 10.0, 42, 1, 1);
        let j = event_json(&e);
        assert!(j.contains("\"ph\": \"C\""), "{j}");
        assert!(j.contains("\"args\": {\"value\": 42}"), "{j}");
        assert!(!j.contains("dur"), "{j}");
    }

    #[test]
    fn metadata_event_labels_process() {
        let e = Event::process_name(3, "yalla config=pch");
        let j = event_json(&e);
        assert!(j.contains("\"ph\": \"M\""), "{j}");
        assert!(j.contains("\"name\": \"yalla config=pch\""), "{j}");
    }

    #[test]
    fn array_round_trips_through_the_json_parser() {
        let events = vec![
            Event::process_name(1, "tool"),
            Event::complete("a\"\\\n\u{02}", "c", 0.0, 5.0, 1, 1),
            Event::counter("n", 1.0, 3, 1, 1),
        ];
        let text = to_json(&events);
        let parsed = json::parse(&text).expect("valid JSON");
        let arr = parsed.as_array().expect("array");
        assert_eq!(arr.len(), 3);
        let name = arr[1]
            .get("name")
            .and_then(json::JsonValue::as_str)
            .unwrap();
        assert_eq!(name, "a\"\\\n\u{02}");
    }

    #[test]
    fn non_finite_numbers_stay_valid_json() {
        let mut e = Event::complete("x", "c", f64::NAN, f64::INFINITY, 1, 1);
        e.ph = Phase::Complete;
        let j = event_json(&e);
        json::parse(&format!("[{j}]")).expect("valid JSON despite non-finite input");
    }
}
