//! **yalla-obs** — self-profiling and metrics for the YALLA workspace.
//!
//! The paper's evaluation is built on knowing *where time goes*: Figure 7
//! phase breakdowns, Figure 10's tool-time / wrapper-compile / main-compile
//! decomposition, and the §5.5 startup-cost discussion all come from
//! `-ftime-trace`-style traces. This crate gives the reproduction the same
//! power over itself:
//!
//! * [`Profiler`] — hierarchical RAII [`Span`]s with wall-clock timing,
//!   thread-aware, with negligible overhead while disabled;
//! * [`MetricsRegistry`] — named counters and gauges (files preprocessed,
//!   symbols resolved, wrappers generated, …) that aggregate across
//!   threads; see [`metrics::names`] for the well-known keys;
//! * [`Histogram`] — log-bucketed latency histograms with exact
//!   cross-thread merge and pause-free snapshots, per request class;
//! * [`reqid`] — the ambient request id the serve daemon threads through
//!   sessions, DAG nodes, and store lookups for end-to-end causality;
//! * sinks — a Chrome-trace JSON writer ([`chrome`]) sharing one
//!   [`Event`] model with the simulator's virtual-time traces, a
//!   human-readable summary table ([`summary`]), a structured JSONL
//!   event log ([`log`], `--event-log`), and a Prometheus text-format
//!   exporter ([`export`], the daemon's `metrics` op);
//! * [`json`] — a tiny validating JSON parser used to test the writers.
//!
//! Most call sites use the process-global profiler through the free
//! functions:
//!
//! ```
//! yalla_obs::enable();
//! {
//!     let _outer = yalla_obs::span("demo", "outer");
//!     let _inner = yalla_obs::span("demo", "inner");
//!     yalla_obs::count("demo.items", 2);
//! }
//! let trace = yalla_obs::global().chrome_trace();
//! assert!(trace.contains("\"outer\""));
//! yalla_obs::disable();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod log;
pub mod metrics;
pub mod profiler;
pub mod reqid;
pub mod summary;

pub use event::{ArgValue, Event, Phase};
pub use hist::{Histogram, HistogramRegistry, HistogramSnapshot};
pub use metrics::{Counter, Gauge, MetricKind, MetricsRegistry};
pub use profiler::{Profiler, Span};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Profiler> = OnceLock::new();

/// The process-global profiler (created disabled on first use).
pub fn global() -> &'static Profiler {
    GLOBAL.get_or_init(Profiler::new)
}

/// Enables recording on the global profiler.
pub fn enable() {
    global().set_enabled(true);
}

/// Disables recording on the global profiler.
pub fn disable() {
    global().set_enabled(false);
}

/// Whether the global profiler is recording.
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// Opens a span on the global profiler.
pub fn span(cat: &'static str, name: &str) -> Span {
    global().span(cat, name)
}

/// Bumps a counter on the global profiler (records a counter event when
/// enabled).
pub fn count(name: &str, delta: i64) {
    global().count(name, delta)
}

/// Sets a gauge on the global profiler.
pub fn gauge(name: &str, value: i64) {
    global().gauge(name, value)
}

/// Records `value` (µs by convention) into the global latency histogram
/// `name`. Histograms, like metrics, aggregate whether or not trace
/// recording is enabled.
pub fn observe_us(name: &str, value: u64) {
    global().observe_us(name, value)
}

/// Records a [`std::time::Duration`] into the global latency histogram
/// `name` (in microseconds).
pub fn observe(name: &str, dur: std::time::Duration) {
    global().histogram(name).record_duration(dur)
}

#[cfg(test)]
mod tests {
    // NOTE: these tests share the one global profiler, so they must not
    // run concurrently with each other — serialize through a lock.
    use std::sync::Mutex;

    static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn global_disabled_by_default_and_toggles() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        crate::disable();
        crate::global().reset();
        crate::span("t", "ignored").finish();
        assert!(crate::global().events().is_empty());
        crate::enable();
        crate::span("t", "seen").finish();
        assert_eq!(crate::global().events().len(), 1);
        crate::disable();
        crate::global().reset();
    }

    #[test]
    fn global_counters_visible_in_summary() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        crate::global().reset();
        crate::count("t.things", 4);
        let summary = crate::global().summary();
        assert!(summary.contains("t.things"), "{summary}");
        crate::global().reset();
    }
}
