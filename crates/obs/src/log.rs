//! Structured JSONL event log (`--event-log <path>`).
//!
//! One JSON object per line, written append-only through a process-global
//! sink. Every line carries:
//!
//! * `ts_us` — microseconds since the sink was installed,
//! * `req`   — the ambient [`crate::reqid`] request id (0 when none),
//! * `tid`   — the writer thread's profiler tid,
//! * `kind`  — what happened (`request`, `stage`, `store`, …),
//!
//! plus free-form fields ([`crate::ArgValue`] ints/floats/strings). The
//! `req` field is the join key: a daemon `request` line and the `stage`
//! and `store` lines its handler (and the DAG workers it spawned)
//! produced all share one id, so the log reconstructs per-request
//! causality end-to-end.
//!
//! The sink is deliberately simple — a mutex around a buffered writer.
//! Event logging is opt-in and per-line cost is one small formatted
//! write; when no sink is installed, [`emit`] is a single relaxed atomic
//! load and an early return.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::chrome::escape_json;
use crate::event::ArgValue;

struct Sink {
    epoch: Instant,
    out: Mutex<Box<dyn std::io::Write + Send>>,
}

static SINK: OnceLock<Sink> = OnceLock::new();
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Installs the process-global event-log sink writing to `path`
/// (created/truncated). Returns an error if the file cannot be opened;
/// returns `Ok` and keeps the *first* sink if one is already installed
/// (the sink is process-global and lives for the process lifetime).
pub fn init_file(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    init_writer(Box::new(std::io::BufWriter::new(file)));
    Ok(())
}

/// Installs the process-global event-log sink writing to an arbitrary
/// writer (used by tests; first installation wins).
pub fn init_writer(out: Box<dyn std::io::Write + Send>) {
    let _ = SINK.set(Sink {
        epoch: Instant::now(),
        out: Mutex::new(out),
    });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Whether an event-log sink is installed.
#[must_use]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Appends one event line. No-op (one atomic load) when no sink is
/// installed. `fields` follow the standard `ts_us`/`req`/`tid`/`kind`
/// prefix in the emitted object.
pub fn emit(kind: &str, fields: &[(&str, ArgValue)]) {
    if !is_active() {
        return;
    }
    let Some(sink) = SINK.get() else { return };
    let ts_us = sink.epoch.elapsed().as_micros() as u64;
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"ts_us\": {ts_us}, \"req\": {}, \"tid\": {}, \"kind\": \"{}\"",
        crate::reqid::current(),
        crate::profiler::current_tid(),
        escape_json(kind),
    );
    for (k, v) in fields {
        let _ = match v {
            ArgValue::Int(n) => write!(line, ", \"{}\": {n}", escape_json(k)),
            ArgValue::Float(f) => {
                if f.is_finite() {
                    write!(line, ", \"{}\": {f:.1}", escape_json(k))
                } else {
                    write!(line, ", \"{}\": 0.0", escape_json(k))
                }
            }
            ArgValue::Str(s) => {
                write!(line, ", \"{}\": \"{}\"", escape_json(k), escape_json(s))
            }
        };
    }
    line.push_str("}\n");
    let mut out = sink.out.lock().expect("event log lock");
    let _ = out.write_all(line.as_bytes());
}

/// Flushes the sink (call before exiting so the tail of the log reaches
/// disk). No-op when no sink is installed.
pub fn flush() {
    if let Some(sink) = SINK.get() {
        let _ = sink.out.lock().expect("event log lock").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer handing every byte to a shared buffer the test can read.
    #[derive(Clone)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    // NOTE: the sink is process-global and first-install-wins, so all
    // assertions about emitted lines live in this single test.
    #[test]
    fn emits_joinable_jsonl_lines() {
        let buf = Shared(Arc::new(StdMutex::new(Vec::new())));
        init_writer(Box::new(buf.clone()));
        assert!(is_active());

        {
            let _req = crate::reqid::set(3);
            emit(
                "request",
                &[("op", "rerun".into()), ("dur_us", ArgValue::Int(120))],
            );
            emit(
                "stage",
                &[("stage", "parse".into()), ("quote\"me", "x\ny".into())],
            );
        }
        emit("idle", &[]);
        flush();

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            let v = crate::json::parse(line).expect("each line is valid JSON");
            assert!(v.get("ts_us").is_some(), "{line}");
            assert!(v.get("kind").is_some(), "{line}");
        }
        let first = crate::json::parse(lines[0]).unwrap();
        assert_eq!(first.get("req").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(first.get("op").and_then(JsonValue::as_str), Some("rerun"));
        let second = crate::json::parse(lines[1]).unwrap();
        assert_eq!(second.get("req").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(
            second.get("quote\"me").and_then(JsonValue::as_str),
            Some("x\ny"),
            "keys and values must be escaped"
        );
        let third = crate::json::parse(lines[2]).unwrap();
        assert_eq!(third.get("req").and_then(JsonValue::as_f64), Some(0.0));
    }
}
