//! Log-bucketed latency histograms with exact cross-thread merge.
//!
//! The daemon's latency telemetry needs a recorder that is cheap enough
//! to sit on every request path, readable from another thread without
//! pausing the writers, and *mergeable* so per-thread (or per-subject)
//! recordings aggregate into one distribution without losing counts.
//! This module provides an HDR-histogram-style fixed-layout histogram:
//!
//! * **Bucketing.** Values (µs) land in power-of-2 octaves split into
//!   `2^SUB_BITS = 16` sub-buckets, so every bucket's width is at most
//!   `1/16` of its lower bound — quantile estimates carry a bounded
//!   ≤ 6.25 % relative error. Values `< 16` are exact (width-1 buckets).
//! * **Lock-free-ish recording.** Buckets are `AtomicU64`s bumped with
//!   relaxed `fetch_add`; `count`/`sum`/`min`/`max` are atomics too. A
//!   [`HistogramSnapshot`] is a plain copy taken without stopping any
//!   recorder — it is *consistent enough*: every completed record is
//!   either fully visible or not yet visible in the totals the moment
//!   they are read (individual cells may trail by one in-flight record,
//!   which quantile readers tolerate by construction).
//! * **Exact merge.** [`Histogram::merge_from`] adds bucket counts
//!   integer-for-integer, so merging N per-thread histograms yields the
//!   same buckets as recording everything into one shared histogram —
//!   the property the cross-thread hammer test pins down.
//!
//! Histograms live in a [`HistogramRegistry`] keyed by dotted metric
//! names (`latency.serve.rerun`, `latency.stage.parse`, …); the
//! process-global registry hangs off the [`crate::Profiler`] and is fed
//! through [`crate::observe_us`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: each power-of-2 octave splits into
/// `2^SUB_BITS` buckets, bounding relative quantile error at
/// `2^-SUB_BITS` (6.25 %).
pub const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range at `SUB_BITS` resolution.
const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB as usize;

/// The bucket index recording `value`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as u64; // >= SUB_BITS
    let shift = msb - u64::from(SUB_BITS);
    let offset = (value >> shift) - SUB; // in [0, SUB)
    ((msb - u64::from(SUB_BITS) + 1) * SUB + offset) as usize
}

/// The smallest value landing in bucket `index`.
#[must_use]
pub fn bucket_low(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB {
        return i;
    }
    let octave = i / SUB; // >= 1
    let offset = i % SUB;
    (SUB + offset) << (octave - 1)
}

/// The largest value landing in bucket `index` (saturating at
/// `u64::MAX` for the top bucket).
#[must_use]
pub fn bucket_high(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(index + 1) - 1
}

#[derive(Debug)]
struct Inner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Inner {
    fn new() -> Self {
        Inner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A cheap, thread-safe handle to one histogram; clones share the same
/// cells (like [`crate::metrics::Counter`]).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(Inner::new()),
        }
    }

    /// Records one value (µs by convention).
    pub fn record(&self, value: u64) {
        let inner = &self.inner;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds (saturating).
    pub fn record_duration(&self, dur: std::time::Duration) {
        self.record(dur.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Total values recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Adds every bucket of `other` into `self`. The merge is exact:
    /// bucket counts are integers, so `merge(a, b)` holds precisely the
    /// union's per-bucket populations.
    pub fn merge_from(&self, other: &Histogram) {
        let (a, b) = (&self.inner, &other.inner);
        for (mine, theirs) in a.buckets.iter().zip(&b.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        a.count
            .fetch_add(b.count.load(Ordering::Relaxed), Ordering::Relaxed);
        a.sum
            .fetch_add(b.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        a.min
            .fetch_min(b.min.load(Ordering::Relaxed), Ordering::Relaxed);
        a.max
            .fetch_max(b.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for reporting. Taken with plain atomic loads
    /// — no recorder pauses.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        HistogramSnapshot {
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            min: inner.min.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience: quantile straight off a fresh snapshot.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Zeroes every cell (buckets stay allocated).
    pub fn reset(&self) {
        let inner = &self.inner;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum.store(0, Ordering::Relaxed);
        inner.min.store(u64::MAX, Ordering::Relaxed);
        inner.max.store(0, Ordering::Relaxed);
    }
}

/// A plain (non-atomic) copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket populations (see [`bucket_low`]/[`bucket_high`]).
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The estimated value at quantile `q ∈ [0, 1]`.
    ///
    /// Returns the *upper bound* of the bucket holding the rank-`⌈qN⌉`
    /// value, capped at the observed maximum — so the estimate never
    /// undershoots the exact quantile and overshoots it by at most one
    /// bucket's width (≤ `2^-SUB_BITS` relative). Empty histograms
    /// report 0.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A registry of named histograms (the latency-side sibling of
/// [`crate::MetricsRegistry`]).
#[derive(Debug, Default)]
pub struct HistogramRegistry {
    slots: Mutex<BTreeMap<String, Histogram>>,
}

impl HistogramRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        HistogramRegistry::default()
    }

    /// The histogram named `name` (created empty on first use). The
    /// returned handle records without re-locking the registry.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.slots
            .lock()
            .expect("histogram registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Snapshots every histogram, name-sorted.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.slots
            .lock()
            .expect("histogram registry lock")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Resets every histogram (slots stay registered).
    pub fn reset(&self) {
        for h in self.slots.lock().expect("histogram registry lock").values() {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_brackets_every_value() {
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 7, u64::MAX / 3, u64::MAX - 1, u64::MAX])
        {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v, "low({i}) > {v}");
            assert!(v <= bucket_high(i), "high({i}) < {v}");
        }
    }

    #[test]
    fn bucket_width_is_bounded_relative() {
        for i in (SUB as usize)..BUCKETS - 1 {
            let (lo, hi) = (bucket_low(i), bucket_high(i));
            assert!(hi - lo <= lo / SUB, "bucket {i}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..SUB as usize {
            assert_eq!(snap.buckets[v], 1);
        }
        assert_eq!(snap.quantile(1.0), SUB - 1);
    }

    #[test]
    fn quantiles_never_undershoot_and_bound_overshoot() {
        let h = Histogram::new();
        let values: Vec<u64> = (1..=1000u64).map(|i| i * 37 % 90_000 + 1).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = snap.quantile(q);
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            assert!(
                est <= exact + exact / SUB + 1,
                "q={q}: est {est} too far above exact {exact}"
            );
        }
        assert_eq!(snap.quantile(1.0), *sorted.last().unwrap());
    }

    #[test]
    fn merge_is_exact_bucket_for_bucket() {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 5, 16, 17, 300, 40_000, 40_001, 1 << 30] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 16, 299, 40_000, u64::MAX / 5] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn eight_thread_hammer_totals_are_exact() {
        // Mirrors the obs cross-thread counter test: 8 threads × 10_000
        // records into one shared histogram, *and* into 8 private
        // histograms merged afterwards — totals and buckets must agree
        // exactly with each other and with the arithmetic truth.
        let shared = Histogram::new();
        let locals: Vec<Histogram> = (0..8).map(|_| Histogram::new()).collect();
        std::thread::scope(|scope| {
            for local in &locals {
                let shared = shared.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        let v = i % 997 + 1;
                        shared.record(v);
                        local.record(v);
                    }
                });
            }
        });
        let merged = Histogram::new();
        for local in &locals {
            merged.merge_from(local);
        }
        let (s, m) = (shared.snapshot(), merged.snapshot());
        assert_eq!(s.count, 80_000);
        assert_eq!(s, m, "shared recording and post-hoc merge must agree");
        let expect_sum: u64 = (0..10_000u64).map(|i| i % 997 + 1).sum::<u64>() * 8;
        assert_eq!(s.sum, expect_sum);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 997);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = HistogramRegistry::new();
        reg.histogram("lat").record(10);
        reg.histogram("lat").record(20);
        assert_eq!(reg.histogram("lat").count(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "lat");
        assert_eq!(snap[0].1.count, 2);
        reg.reset();
        assert_eq!(reg.histogram("lat").count(), 0);
    }
}
