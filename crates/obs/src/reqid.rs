//! Request-id causality: a thread-local ambient request id that threads
//! a daemon request through `Session::rerun_on`, the `yalla-exec` DAG
//! nodes, and store lookups.
//!
//! The serve daemon stamps every incoming request with a monotonically
//! increasing id and installs it here for the duration of the handler
//! ([`Guard`] is RAII, so nested requests — or panics — restore the
//! previous value). Work handed to the executor captures the spawner's
//! id at `spawn` time and re-installs it inside the task, so an
//! event-log line written deep inside a parse node on a worker thread
//! still joins back to the daemon request that caused it.
//!
//! Id 0 means "no active request" (direct CLI runs, tests): consumers
//! treat it as absent.

use std::cell::Cell;

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The calling thread's active request id (0 when none is set).
#[must_use]
pub fn current() -> u64 {
    CURRENT.with(Cell::get)
}

/// Installs `id` as the calling thread's active request id until the
/// returned [`Guard`] drops.
#[must_use = "the request id is cleared when the guard drops"]
pub fn set(id: u64) -> Guard {
    let prev = CURRENT.with(|c| c.replace(id));
    Guard { prev }
}

/// RAII guard restoring the previously active request id on drop.
#[derive(Debug)]
pub struct Guard {
    prev: u64,
}

impl Drop for Guard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_guard_restores() {
        assert_eq!(current(), 0);
        {
            let _g = set(7);
            assert_eq!(current(), 7);
            {
                let _inner = set(8);
                assert_eq!(current(), 8);
            }
            assert_eq!(current(), 7);
        }
        assert_eq!(current(), 0);
    }

    #[test]
    fn ids_are_per_thread() {
        let _g = set(42);
        std::thread::spawn(|| {
            assert_eq!(current(), 0, "request ids must not leak across threads");
            let _g = set(99);
            assert_eq!(current(), 99);
        })
        .join()
        .unwrap();
        assert_eq!(current(), 42);
    }

    #[test]
    fn guard_restores_on_panic() {
        let _g = set(5);
        let result = std::panic::catch_unwind(|| {
            let _inner = set(6);
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(current(), 5);
    }
}
