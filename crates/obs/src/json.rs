//! A minimal recursive-descent JSON parser.
//!
//! Exists so tests and tooling can *validate* the hand-rolled writers in
//! this workspace (Chrome traces, bench result files) without external
//! dependencies. It accepts exactly RFC 8259 JSON; it is not a
//! general-purpose deserializer.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key-sorted).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The object's members (key-sorted), if this is an object.
    pub fn entries(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser {
        chars: bytes,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing content at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!(
                "expected `{c}` at offset {}, got {got:?}",
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(JsonValue::String(self.string()?)),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('n') => self.literal("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(JsonValue::Object(map)),
                got => return Err(format!("expected `,` or `}}`, got {got:?} at {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(JsonValue::Array(items)),
                got => return Err(format!("expected `,` or `]`, got {got:?} at {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{08}'),
                    Some('f') => out.push('\u{0C}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs: only if a low surrogate follows.
                        let c = if (0xD800..0xDC00).contains(&code)
                            && self.peek() == Some('\\')
                            && self.chars.get(self.pos + 1) == Some(&'u')
                        {
                            self.pos += 2;
                            let mut low = 0u32;
                            for _ in 0..4 {
                                let d = self
                                    .bump()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                                low = low * 16 + d;
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| format!("invalid codepoint at {}", self.pos))?);
                    }
                    got => return Err(format!("bad escape {got:?} at {}", self.pos)),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(format!(
                        "raw control character {c:?} in string at {}",
                        self.pos
                    ))
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some('.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number `{text}` at {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Number(-150.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("[] x").is_err());
    }

    #[test]
    fn rejects_raw_control_chars_in_strings() {
        assert!(parse("\"a\u{01}b\"").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("😀".to_string())
        );
    }
}
