//! A std-only, dependency-free shim of the [criterion] crate.
//!
//! The offline build environment cannot fetch crates.io, so this crate
//! provides the subset of the criterion API the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is honest but simple: each benchmark warms up briefly,
//! then runs timed batches until ~250 ms of samples accumulate, and the
//! mean/min per-iteration times are printed (with MiB/s when a byte
//! throughput is set). There are no statistics, plots, or baselines.
//!
//! [criterion]: https://docs.rs/criterion

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(250);
/// Warm-up time per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// How expensive the per-iteration setup of
/// [`Bencher::iter_batched`] is relative to the routine (ignored by the
/// shim: every iteration gets a fresh setup).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup value.
    SmallInput,
    /// Large setup value.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// Per-iteration timing collector handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let warm = Instant::now();
        while warm.elapsed() < WARMUP_TARGET {
            std_black_box(routine());
        }
        let measure = Instant::now();
        while measure.elapsed() < MEASURE_TARGET {
            let t = Instant::now();
            std_black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm = Instant::now();
        while warm.elapsed() < WARMUP_TARGET {
            let input = setup();
            std_black_box(routine(input));
        }
        let measure = Instant::now();
        while measure.elapsed() < MEASURE_TARGET {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<48} no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        let mut line = format!(
            "{id:<48} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
        if let Some(Throughput::Bytes(bytes)) = throughput {
            let mibs = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            line.push_str(&format!("  {mibs:>9.1} MiB/s"));
        }
        if let Some(Throughput::Elements(n)) = throughput {
            let eps = n as f64 / mean.as_secs_f64();
            line.push_str(&format!("  {eps:>12.0} elem/s"));
        }
        println!("{line}");
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id.as_ref(), None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.as_ref()), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn iter_batched_collects_samples() {
        let mut b = Bencher::default();
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("noop", |b| b.iter(|| black_box(0)));
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(0)));
    }
}
