//! A self-contained C++ *subset* frontend used by the YALLA Header
//! Substitution reproduction.
//!
//! The crate provides everything the Header Substitution algorithm (CGO'25)
//! needs from a compiler frontend, implemented from scratch in Rust:
//!
//! * a virtual file system ([`vfs::Vfs`]) so whole header trees live in
//!   memory and experiments are hermetic,
//! * a byte-accurate source map ([`loc`]),
//! * a lexer ([`lex`]) producing tokens that remember the file they came
//!   from (even through `#include` splicing and macro expansion),
//! * a preprocessor ([`pp`]) with include resolution, include guards,
//!   `#pragma once`, object- and function-like macros and conditionals,
//!   which also records the statistics the paper reports in Table 3
//!   (lines of code entering a translation unit, headers pulled in),
//! * an AST ([`ast`]) and recursive-descent parser ([`parse`]) for the C++
//!   subset exercised by the paper: namespaces, classes with templates and
//!   nested types, enums, aliases, (member) functions, lambdas, and a full
//!   expression grammar,
//! * a pretty printer ([`pretty`]) used when emitting generated headers.
//!
//! # Example
//!
//! ```
//! use yalla_cpp::vfs::Vfs;
//! use yalla_cpp::frontend::Frontend;
//!
//! let mut vfs = Vfs::new();
//! vfs.add_file("add.hpp", "template<typename T> T g_add(T x, T y) { return x + y; }");
//! vfs.add_file("main.cpp", "#include \"add.hpp\"\nint main() { g_add<int>(1, 2); return 0; }");
//!
//! let fe = Frontend::new(vfs);
//! let tu = fe.parse_translation_unit("main.cpp").unwrap();
//! assert!(tu.ast.decls.len() >= 2); // g_add + main
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod cache;
pub mod error;
pub mod frontend;
pub mod hash;
pub mod intern;
pub mod lex;
pub mod loc;
pub mod parse;
pub mod pp;
pub mod pretty;
pub mod vfs;

pub use cache::{CacheLookup, ParseCache};
pub use error::{CppError, Result};
pub use frontend::{Frontend, ParsedTu};
pub use intern::Sym;

pub use loc::{FileId, Span};
