//! In-memory virtual file system.
//!
//! All experiments in this repository are hermetic: header trees (the
//! synthetic mini-Kokkos, mini-OpenCV, ... libraries) live in a [`Vfs`]
//! rather than on disk. The `Vfs` doubles as the source map — it owns the
//! text of every file and hands out [`FileId`]s.

use std::collections::HashMap;

use crate::error::{CppError, Result};
use crate::hash;
use crate::loc::{FileId, LineMap};

/// A single registered file.
#[derive(Debug, Clone)]
pub struct VfsFile {
    /// Normalized path under which the file was registered.
    pub path: String,
    /// Complete file contents.
    pub text: String,
    /// Number of physical lines (used for the paper's LOC statistics).
    pub lines: usize,
    /// FNV-1a hash of `text` — the file's content address. Every cache in
    /// the incremental pipeline keys on this, so two files (or two
    /// generations of one file) with identical text share artifacts.
    pub hash: u64,
}

/// An in-memory file system with `#include` search-path resolution.
///
/// Paths use `/` separators. Lookups are exact after normalization; the
/// preprocessor combines relative header names with the including file's
/// directory (for `"quoted"` includes) and the configured search paths
/// (for `<angled>` includes), mirroring a real compiler's `-I` handling.
///
/// # Example
///
/// ```
/// use yalla_cpp::vfs::Vfs;
/// let mut vfs = Vfs::new();
/// let id = vfs.add_file("include/lib/a.hpp", "int x;");
/// assert_eq!(vfs.file(id).lines, 1);
/// assert!(vfs.lookup("include/lib/a.hpp").is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    files: Vec<VfsFile>,
    by_path: HashMap<String, FileId>,
    search_paths: Vec<String>,
}

fn normalize(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    out.join("/")
}

impl Vfs {
    /// Creates an empty file system with no search paths.
    pub fn new() -> Self {
        Vfs::default()
    }

    /// Registers `text` under `path`, replacing any existing file at the
    /// same (normalized) path. Returns the file's id.
    pub fn add_file(&mut self, path: &str, text: impl Into<String>) -> FileId {
        let norm = normalize(path);
        let text = text.into();
        let lines = LineMap::new(&text).line_count();
        let hash = hash::hash_str(&text);
        if let Some(&id) = self.by_path.get(&norm) {
            self.files[id.0 as usize] = VfsFile {
                path: norm,
                text,
                lines,
                hash,
            };
            return id;
        }
        let id = FileId(self.files.len() as u32);
        self.files.push(VfsFile {
            path: norm.clone(),
            text,
            lines,
            hash,
        });
        self.by_path.insert(norm, id);
        id
    }

    /// Replaces the contents of an *existing* file — the edit step of the
    /// paper's Figure 6 loop. Unlike [`Vfs::add_file`] this refuses to
    /// create new files, so a session replaying an edit script cannot
    /// silently fork its file tree on a typo'd path. The file keeps its
    /// [`FileId`]; only its text, line count and content hash change.
    ///
    /// # Errors
    ///
    /// Returns [`CppError::FileNotFound`] when `path` is not registered.
    pub fn apply_edit(&mut self, path: &str, new_text: impl Into<String>) -> Result<FileId> {
        let norm = normalize(path);
        if self.by_path.contains_key(&norm) {
            Ok(self.add_file(&norm, new_text))
        } else {
            Err(CppError::FileNotFound { path: norm })
        }
    }

    /// Adds a directory to the `<angled>` include search path.
    pub fn add_search_path(&mut self, dir: &str) {
        self.search_paths.push(normalize(dir));
    }

    /// The configured search paths, in resolution order.
    pub fn search_paths(&self) -> &[String] {
        &self.search_paths
    }

    /// Looks up a file by exact (normalized) path.
    pub fn lookup(&self, path: &str) -> Option<FileId> {
        self.by_path.get(&normalize(path)).copied()
    }

    /// Returns the file registered under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this `Vfs`.
    pub fn file(&self, id: FileId) -> &VfsFile {
        &self.files[id.0 as usize]
    }

    /// Text of the file registered under `id`.
    pub fn text(&self, id: FileId) -> &str {
        &self.file(id).text
    }

    /// Path of the file registered under `id`.
    pub fn path(&self, id: FileId) -> &str {
        &self.file(id).path
    }

    /// Content hash of the file registered under `id`.
    pub fn file_hash(&self, id: FileId) -> u64 {
        self.file(id).hash
    }

    /// Content hash of the file at `path`, if registered.
    pub fn hash_of(&self, path: &str) -> Option<u64> {
        self.lookup(path).map(|id| self.file_hash(id))
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over all registered files in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &VfsFile)> {
        self.files
            .iter()
            .enumerate()
            .map(|(i, f)| (FileId(i as u32), f))
    }

    /// Resolves an include name to a file id.
    ///
    /// For `quoted` includes the directory of `includer` is tried first,
    /// then the search paths; for `<angled>` includes only the search
    /// paths are consulted — the same order a conventional compiler uses.
    ///
    /// # Errors
    ///
    /// Returns [`CppError::FileNotFound`] when no candidate exists.
    pub fn resolve_include(
        &self,
        name: &str,
        includer: Option<FileId>,
        quoted: bool,
    ) -> Result<FileId> {
        if quoted {
            if let Some(inc) = includer {
                let dir = match self.path(inc).rfind('/') {
                    Some(pos) => &self.path(inc)[..pos],
                    None => "",
                };
                let candidate = if dir.is_empty() {
                    name.to_string()
                } else {
                    format!("{dir}/{name}")
                };
                if let Some(id) = self.lookup(&candidate) {
                    return Ok(id);
                }
            }
            if let Some(id) = self.lookup(name) {
                return Ok(id);
            }
        }
        for sp in &self.search_paths {
            let candidate = if sp.is_empty() {
                name.to_string()
            } else {
                format!("{sp}/{name}")
            };
            if let Some(id) = self.lookup(&candidate) {
                return Ok(id);
            }
        }
        // Fall back to an exact match for angled includes too; several of
        // the corpus subjects register headers by their full name.
        if let Some(id) = self.lookup(name) {
            return Ok(id);
        }
        Err(CppError::FileNotFound { path: name.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_normalizes() {
        let mut vfs = Vfs::new();
        let id = vfs.add_file("./a/b/../c.hpp", "x");
        assert_eq!(vfs.lookup("a/c.hpp"), Some(id));
        assert_eq!(vfs.path(id), "a/c.hpp");
    }

    #[test]
    fn replacing_a_file_keeps_its_id() {
        let mut vfs = Vfs::new();
        let id1 = vfs.add_file("a.hpp", "old");
        let id2 = vfs.add_file("a.hpp", "new\ntext");
        assert_eq!(id1, id2);
        assert_eq!(vfs.text(id1), "new\ntext");
        assert_eq!(vfs.file(id1).lines, 2);
        assert_eq!(vfs.len(), 1);
    }

    #[test]
    fn quoted_include_prefers_includer_directory() {
        let mut vfs = Vfs::new();
        let near = vfs.add_file("proj/inc.hpp", "near");
        let far = vfs.add_file("sys/inc.hpp", "far");
        let main = vfs.add_file("proj/main.cpp", "");
        vfs.add_search_path("sys");
        assert_eq!(
            vfs.resolve_include("inc.hpp", Some(main), true).unwrap(),
            near
        );
        assert_eq!(
            vfs.resolve_include("inc.hpp", Some(main), false).unwrap(),
            far
        );
    }

    #[test]
    fn angled_include_uses_search_paths_in_order() {
        let mut vfs = Vfs::new();
        let first = vfs.add_file("p1/h.hpp", "1");
        let _second = vfs.add_file("p2/h.hpp", "2");
        vfs.add_search_path("p1");
        vfs.add_search_path("p2");
        assert_eq!(vfs.resolve_include("h.hpp", None, false).unwrap(), first);
    }

    #[test]
    fn missing_include_is_an_error() {
        let vfs = Vfs::new();
        let err = vfs.resolve_include("nope.hpp", None, false).unwrap_err();
        assert!(matches!(err, CppError::FileNotFound { .. }));
    }

    #[test]
    fn content_hash_tracks_text() {
        let mut vfs = Vfs::new();
        let a = vfs.add_file("a.hpp", "int x;");
        let b = vfs.add_file("b.hpp", "int x;");
        let c = vfs.add_file("c.hpp", "int y;");
        assert_eq!(vfs.file_hash(a), vfs.file_hash(b));
        assert_ne!(vfs.file_hash(a), vfs.file_hash(c));
        assert_eq!(vfs.hash_of("a.hpp"), Some(vfs.file_hash(a)));
        assert_eq!(vfs.hash_of("missing.hpp"), None);
    }

    #[test]
    fn apply_edit_replaces_in_place() {
        let mut vfs = Vfs::new();
        let id = vfs.add_file("a.hpp", "old");
        let before = vfs.file_hash(id);
        let edited = vfs.apply_edit("a.hpp", "new text").unwrap();
        assert_eq!(edited, id);
        assert_eq!(vfs.text(id), "new text");
        assert_ne!(vfs.file_hash(id), before);
        // Reverting the edit restores the original content address.
        vfs.apply_edit("a.hpp", "old").unwrap();
        assert_eq!(vfs.file_hash(id), before);
    }

    #[test]
    fn apply_edit_refuses_unknown_paths() {
        let mut vfs = Vfs::new();
        let err = vfs.apply_edit("nope.cpp", "x").unwrap_err();
        assert!(matches!(err, CppError::FileNotFound { .. }));
        assert!(vfs.is_empty(), "failed edit must not create files");
    }

    #[test]
    fn angled_include_falls_back_to_exact_path() {
        let mut vfs = Vfs::new();
        let id = vfs.add_file("Kokkos_Core.hpp", "");
        assert_eq!(
            vfs.resolve_include("Kokkos_Core.hpp", None, false).unwrap(),
            id
        );
    }
}
