//! The global string interner: names as `Sym(u32)` instead of `String`.
//!
//! AST render paths used to build a fresh `String` per call
//! (`Decl::declared_name()`, `FunctionName::spelling()`), so every
//! matcher comparison and usage walk paid an allocation. Interning maps
//! each distinct spelling to a small id once; after that, equality is an
//! integer compare and `as_str()` is a table lookup returning a
//! `&'static str` — no allocation on any warm path.
//!
//! Scope and caveats:
//!
//! - Ids are **process-local**: they depend on interning order, so they
//!   must never reach a disk format or a fingerprint. The on-disk module
//!   format has its own per-module table (`yalla_store::module::StrRef`);
//!   encoders translate by content at the boundary.
//! - Ordering by `Sym` is interning-order, not lexicographic — anything
//!   whose iteration order feeds deterministic output (plan notes, the
//!   usage report's `BTreeMap`s) keeps `String` keys.
//! - Entries are leaked (`Box::leak`) and live for the process; the
//!   table only ever grows. That is the right trade for a compiler-shaped
//!   tool whose name population is bounded by its inputs.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, RwLock};

/// An interned string. `Eq`/`Hash` are integer-cheap; two `Sym`s are
/// equal iff their spellings are equal (within one process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    /// Spelling → id. Keys borrow the leaked entries in `table`.
    lookup: Mutex<HashMap<&'static str, u32>>,
    /// Id → spelling, append-only.
    table: RwLock<Vec<&'static str>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        lookup: Mutex::new(HashMap::new()),
        table: RwLock::new(Vec::new()),
    })
}

impl Sym {
    /// Interns `s`, allocating only on first sight of a spelling.
    pub fn intern(s: &str) -> Sym {
        let i = interner();
        let mut lookup = i.lookup.lock().expect("interner lookup");
        if let Some(&id) = lookup.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let mut table = i.table.write().expect("interner table");
        let id = u32::try_from(table.len()).expect("interner < 2^32 entries");
        table.push(leaked);
        lookup.insert(leaked, id);
        Sym(id)
    }

    /// The interned spelling. A read-locked table lookup; the returned
    /// reference is `'static` because entries are never freed.
    pub fn as_str(self) -> &'static str {
        interner().table.read().expect("interner table")[self.0 as usize]
    }

    /// The raw id — for diagnostics only; never persist it.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_compares_by_content() {
        let a = Sym::intern("operator==");
        let b = Sym::intern("operator==");
        let c = Sym::intern("operator!=");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "operator==");
        assert_eq!(a, "operator==");
        assert_eq!("operator==", a);
        assert_ne!(a, "operator!=");
        assert_eq!(a.to_string(), "operator==");
    }

    #[test]
    fn as_str_is_stable_across_later_interning() {
        let early = Sym::intern("stable-spelling");
        let s1 = early.as_str();
        for i in 0..100 {
            Sym::intern(&format!("filler-{i}"));
        }
        assert_eq!(early.as_str(), s1);
        assert!(std::ptr::eq(early.as_str(), s1), "same leaked entry");
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let ids: Vec<Sym> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| Sym::intern("contended-name")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
