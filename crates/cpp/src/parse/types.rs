//! Type and qualified-name parsing.

use crate::ast::{Builtin, NameSeg, QualName, TemplateArg, Type};
use crate::error::Result;
use crate::lex::{Punct, TokenKind};
use crate::parse::Parser;

impl Parser {
    /// True if the upcoming tokens can plausibly start a type.
    pub(crate) fn at_type_start(&self) -> bool {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                is_builtin_start(s)
                    || matches!(s.as_str(), "const" | "volatile" | "typename" | "auto")
                    || is_plain_ident(s)
            }
            TokenKind::Punct(Punct::ColonColon) => true,
            _ => false,
        }
    }

    /// Parses a type: cv-qualifiers, a core (builtin or qualified name),
    /// then `*`/`&`/`&&` suffixes with interleaved `const`.
    pub(crate) fn parse_type(&mut self) -> Result<Type> {
        let mut is_const = false;
        let mut is_volatile = false;
        loop {
            if self.eat_kw("const") {
                is_const = true;
            } else if self.eat_kw("volatile") {
                is_volatile = true;
            } else if self.eat_kw("typename") || self.eat_kw("struct") || self.eat_kw("class") {
                // Elaborated type specifier / dependent-name keyword: the
                // type that follows is what matters.
            } else {
                break;
            }
        }
        let mut ty = self.parse_core_type()?;
        ty.is_const |= is_const;
        ty.is_volatile |= is_volatile;
        loop {
            if self.eat_punct(Punct::Star) {
                ty = Type::pointer(ty);
                while self.eat_kw("const") {
                    ty.is_const = true;
                }
                while self.eat_kw("volatile") {
                    ty.is_volatile = true;
                }
            } else if self.eat_punct(Punct::Amp) {
                ty = Type::lvalue_ref(ty);
            } else if self.eat_punct(Punct::AmpAmp) {
                ty = Type::rvalue_ref(ty);
            } else if self.eat_kw("const") {
                // Trailing const (east const): `int const`.
                ty.is_const = true;
            } else {
                break;
            }
        }
        Ok(ty)
    }

    fn parse_core_type(&mut self) -> Result<Type> {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if is_builtin_start(s) {
                return self.parse_builtin();
            }
            if s == "auto" {
                self.bump();
                return Ok(Type::builtin(Builtin::Auto));
            }
        }
        let name = self.parse_qual_name(true)?;
        Ok(Type::named(name))
    }

    fn parse_builtin(&mut self) -> Result<Type> {
        let mut unsigned = false;
        let mut signed = false;
        let mut longs = 0u8;
        let mut short = false;
        let mut base: Option<&'static str> = None;
        while let TokenKind::Ident(word) = &self.peek().kind {
            let word = word.clone();
            match word.as_str() {
                "unsigned" => unsigned = true,
                "signed" => signed = true,
                "long" => longs += 1,
                "short" => short = true,
                "int" => base = Some("int"),
                "char" => base = Some("char"),
                "bool" => base = Some("bool"),
                "float" => base = Some("float"),
                "double" => base = Some("double"),
                "void" => base = Some("void"),
                "size_t" => base = Some("size_t"),
                _ => break,
            }
            self.bump();
        }
        let _ = signed;
        let b = match (base, unsigned, longs, short) {
            (Some("void"), ..) => Builtin::Void,
            (Some("bool"), ..) => Builtin::Bool,
            (Some("float"), ..) => Builtin::Float,
            (Some("double"), _, 0, _) => Builtin::Double,
            (Some("double"), _, _, _) => Builtin::Double,
            (Some("size_t"), ..) => Builtin::SizeT,
            (Some("char"), true, ..) => Builtin::UChar,
            (Some("char"), false, ..) => Builtin::Char,
            (_, u, _, true) => {
                if u {
                    Builtin::UShort
                } else {
                    Builtin::Short
                }
            }
            (_, u, 2, _) => {
                if u {
                    Builtin::ULongLong
                } else {
                    Builtin::LongLong
                }
            }
            (_, u, 1, _) => {
                if u {
                    Builtin::ULong
                } else {
                    Builtin::Long
                }
            }
            (Some("int") | None, true, 0, false) => Builtin::UInt,
            _ => Builtin::Int,
        };
        Ok(Type::builtin(b))
    }

    /// Parses a (possibly `::`-qualified) name. When `allow_args` is true,
    /// `<...>` after a segment is parsed as template arguments — used in
    /// type context. In expression context use
    /// [`Parser::parse_qual_name_speculative_args`] instead.
    pub(crate) fn parse_qual_name(&mut self, allow_args: bool) -> Result<QualName> {
        let global = self.eat_punct(Punct::ColonColon);
        let mut segs = Vec::new();
        loop {
            let (ident, _) = self.ident()?;
            let args = if allow_args && self.check_punct(Punct::Lt) {
                Some(self.parse_template_args()?)
            } else {
                None
            };
            segs.push(NameSeg { ident, args });
            if self.check_punct(Punct::ColonColon)
                && matches!(self.peek_at(1).kind, TokenKind::Ident(_))
            {
                self.bump();
            } else {
                break;
            }
        }
        Ok(QualName { global, segs })
    }

    /// Parses `<arg, arg, ...>` including the closing `>`.
    pub(crate) fn parse_template_args(&mut self) -> Result<Vec<TemplateArg>> {
        self.enter_depth()?;
        let result = self.parse_template_args_inner();
        self.leave_depth();
        result
    }

    fn parse_template_args_inner(&mut self) -> Result<Vec<TemplateArg>> {
        self.expect_punct(Punct::Lt)?;
        let mut args = Vec::new();
        if self.eat_punct(Punct::Gt) {
            return Ok(args);
        }
        loop {
            args.push(self.parse_template_arg()?);
            if self.eat_punct(Punct::Comma) {
                continue;
            }
            self.expect_punct(Punct::Gt)?;
            break;
        }
        Ok(args)
    }

    fn parse_template_arg(&mut self) -> Result<TemplateArg> {
        // Try a type first; if the type parse succeeds but is not followed
        // by `,`, `>`, or `...`, it was actually an expression.
        let save = self.save();
        if self.at_type_start() {
            if let Ok(ty) = self.parse_type() {
                if self.check_punct(Punct::Comma) || self.check_punct(Punct::Gt) {
                    return Ok(TemplateArg::Type(ty));
                }
                if self.eat_punct(Punct::Ellipsis) {
                    return Ok(TemplateArg::Pack(ty.to_string()));
                }
            }
            self.restore(save);
        }
        // Value argument: consume tokens until `,` or `>` at depth 0
        // (tracking `<` nesting as well).
        let from = self.save();
        let mut angle = 0i32;
        let mut depth = 0i32;
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Punct(Punct::Lt) => {
                    angle += 1;
                    self.bump();
                }
                TokenKind::Punct(Punct::Gt) => {
                    if angle == 0 && depth == 0 {
                        break;
                    }
                    angle -= 1;
                    self.bump();
                }
                TokenKind::Punct(Punct::Comma) if angle == 0 && depth == 0 => break,
                TokenKind::Punct(Punct::LParen | Punct::LBrace | Punct::LBracket) => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct(Punct::RParen | Punct::RBrace | Punct::RBracket) => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
        let text = self.render_range(from, self.save());
        if text.is_empty() {
            return Err(self.err("expected template argument"));
        }
        Ok(TemplateArg::Value(text))
    }
}

fn is_builtin_start(s: &str) -> bool {
    matches!(
        s,
        "void"
            | "bool"
            | "char"
            | "short"
            | "int"
            | "long"
            | "float"
            | "double"
            | "unsigned"
            | "signed"
            | "size_t"
    )
}

fn is_plain_ident(s: &str) -> bool {
    // Keywords that can never start a type.
    !matches!(
        s,
        "return"
            | "if"
            | "else"
            | "for"
            | "while"
            | "do"
            | "break"
            | "continue"
            | "new"
            | "delete"
            | "this"
            | "true"
            | "false"
            | "nullptr"
            | "sizeof"
            | "operator"
            | "template"
            | "namespace"
            | "using"
            | "typedef"
            | "public"
            | "private"
            | "protected"
            | "static_assert"
            | "case"
            | "switch"
            | "default"
            | "enum"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Parser;

    fn parse_type_str(src: &str) -> Type {
        let toks = crate::lex::lex_str(src).unwrap();
        let mut p = Parser::new(toks);
        p.parse_type().unwrap()
    }

    #[test]
    fn builtins() {
        assert_eq!(parse_type_str("int").to_string(), "int");
        assert_eq!(parse_type_str("unsigned int").to_string(), "unsigned int");
        assert_eq!(parse_type_str("unsigned").to_string(), "unsigned int");
        assert_eq!(parse_type_str("long long").to_string(), "long long");
        assert_eq!(parse_type_str("unsigned long").to_string(), "unsigned long");
        assert_eq!(parse_type_str("void").to_string(), "void");
        assert_eq!(parse_type_str("size_t").to_string(), "size_t");
    }

    #[test]
    fn cv_and_indirection() {
        assert_eq!(parse_type_str("const int&").to_string(), "const int&");
        assert_eq!(parse_type_str("int const").to_string(), "const int");
        assert_eq!(parse_type_str("int**").to_string(), "int**");
        assert_eq!(parse_type_str("int&&").to_string(), "int&&");
        assert_eq!(
            parse_type_str("const char* const").to_string(),
            "const const char*"
        );
    }

    #[test]
    fn named_with_namespace() {
        let t = parse_type_str("Kokkos::OpenMP");
        assert_eq!(t.core_name().unwrap().key(), "Kokkos::OpenMP");
    }

    #[test]
    fn templated_name() {
        let t = parse_type_str("Kokkos::View<int**, Kokkos::LayoutRight>");
        assert_eq!(t.to_string(), "Kokkos::View<int**, Kokkos::LayoutRight>");
    }

    #[test]
    fn nested_template_closers() {
        let t = parse_type_str("std::vector<std::vector<int>>");
        assert_eq!(t.to_string(), "std::vector<std::vector<int>>");
    }

    #[test]
    fn template_member_type() {
        let t = parse_type_str("Kokkos::TeamPolicy<sp_t>::member_type");
        let name = t.core_name().unwrap();
        assert_eq!(name.key(), "Kokkos::TeamPolicy::member_type");
        assert_eq!(name.segs[1].args.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn value_template_args() {
        let t = parse_type_str("Array<double, 3>");
        assert_eq!(t.to_string(), "Array<double, 3>");
        match &t.core_name().unwrap().segs[0].args.as_ref().unwrap()[1] {
            TemplateArg::Value(v) => assert_eq!(v, "3"),
            other => panic!("expected value arg, got {other:?}"),
        }
    }

    #[test]
    fn typename_keyword_is_transparent() {
        let t = parse_type_str("typename T::value_type");
        assert_eq!(t.core_name().unwrap().key(), "T::value_type");
    }

    #[test]
    fn empty_template_args() {
        let t = parse_type_str("Foo<>");
        assert_eq!(t.to_string(), "Foo<>");
    }

    #[test]
    fn global_qualification() {
        let t = parse_type_str("::Kokkos::View<int>");
        assert!(t.core_name().unwrap().global);
    }
}
