//! Statement parsing.

use crate::ast::{Block, Expr, ExprKind, ForInit, Stmt, StmtKind, Type, TypeKind, VarDecl};
use crate::error::Result;
use crate::lex::{Punct, TokenKind};
use crate::parse::Parser;

impl Parser {
    /// Parses a `{ ... }` block.
    pub(crate) fn parse_block(&mut self) -> Result<Block> {
        self.enter_depth()?;
        let result = self.parse_block_inner();
        self.leave_depth();
        result
    }

    fn parse_block_inner(&mut self) -> Result<Block> {
        let start = self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        let end = self.expect_punct(Punct::RBrace)?;
        Ok(Block {
            stmts,
            span: start.to(end),
        })
    }

    /// Parses one statement.
    pub(crate) fn parse_stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        if self.check_punct(Punct::LBrace) {
            let block = self.parse_block()?;
            let span = block.span;
            return Ok(Stmt::new(StmtKind::Block(block), span));
        }
        if self.eat_punct(Punct::Semi) {
            return Ok(Stmt::new(StmtKind::Empty, start));
        }
        if self.check_kw("if") {
            return self.parse_if();
        }
        if self.check_kw("for") {
            return self.parse_for();
        }
        if self.check_kw("while") {
            self.bump();
            self.expect_punct(Punct::LParen)?;
            let cond = self.parse_expr()?;
            self.expect_punct(Punct::RParen)?;
            let body = self.parse_stmt()?;
            let span = start.to(body.span);
            return Ok(Stmt::new(
                StmtKind::While {
                    cond,
                    body: Box::new(body),
                },
                span,
            ));
        }
        if self.check_kw("do") {
            self.bump();
            let body = self.parse_stmt()?;
            self.expect_kw("while")?;
            self.expect_punct(Punct::LParen)?;
            let cond = self.parse_expr()?;
            self.expect_punct(Punct::RParen)?;
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::new(
                StmtKind::DoWhile {
                    body: Box::new(body),
                    cond,
                },
                start.to(end),
            ));
        }
        if self.check_kw("return") {
            self.bump();
            let value = if self.check_punct(Punct::Semi) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::new(StmtKind::Return(value), start.to(end)));
        }
        if self.check_kw("break") {
            self.bump();
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::new(StmtKind::Break, start.to(end)));
        }
        if self.check_kw("continue") {
            self.bump();
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::new(StmtKind::Continue, start.to(end)));
        }
        // Declaration vs expression: try a declaration first, backtrack on
        // failure.
        if self.at_type_start() {
            let save = self.save();
            if let Some(var) = self.try_parse_var_decl()? {
                let end = self.expect_punct(Punct::Semi)?;
                return Ok(Stmt::new(StmtKind::Decl(var), start.to(end)));
            }
            self.restore(save);
        }
        let expr = self.parse_expr()?;
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Stmt::new(StmtKind::Expr(expr), start.to(end)))
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        let start = self.expect_kw("if")?;
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_branch = self.parse_stmt()?;
        let mut span = start.to(then_branch.span);
        let else_branch = if self.eat_kw("else") {
            let e = self.parse_stmt()?;
            span = span.to(e.span);
            Some(Box::new(e))
        } else {
            None
        };
        Ok(Stmt::new(
            StmtKind::If {
                cond,
                then_branch: Box::new(then_branch),
                else_branch,
            },
            span,
        ))
    }

    fn parse_for(&mut self) -> Result<Stmt> {
        let start = self.expect_kw("for")?;
        self.expect_punct(Punct::LParen)?;
        // Range-for detection: `type name : range`.
        let save = self.save();
        if self.at_type_start() {
            if let Ok(ty) = self.parse_type() {
                if let TokenKind::Ident(name) = self.peek().kind.clone() {
                    self.bump();
                    if self.eat_punct(Punct::Colon) {
                        let range = self.parse_expr()?;
                        self.expect_punct(Punct::RParen)?;
                        let body = self.parse_stmt()?;
                        let span = start.to(body.span);
                        return Ok(Stmt::new(
                            StmtKind::RangeFor {
                                var: VarDecl {
                                    ty,
                                    name,
                                    is_static: false,
                                    is_constexpr: false,
                                    init: None,
                                    brace_init: false,
                                },
                                range,
                                body: Box::new(body),
                            },
                            span,
                        ));
                    }
                }
            }
            self.restore(save);
        }
        // Classic for.
        let init = if self.eat_punct(Punct::Semi) {
            ForInit::Empty
        } else if self.at_type_start() {
            let save = self.save();
            match self.try_parse_var_decl()? {
                Some(var) => {
                    self.expect_punct(Punct::Semi)?;
                    ForInit::Decl(var)
                }
                None => {
                    self.restore(save);
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semi)?;
                    ForInit::Expr(e)
                }
            }
        } else {
            let e = self.parse_expr()?;
            self.expect_punct(Punct::Semi)?;
            ForInit::Expr(e)
        };
        let cond = if self.check_punct(Punct::Semi) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect_punct(Punct::Semi)?;
        let inc = if self.check_punct(Punct::RParen) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect_punct(Punct::RParen)?;
        let body = self.parse_stmt()?;
        let span = start.to(body.span);
        Ok(Stmt::new(
            StmtKind::For {
                init: Box::new(init),
                cond,
                inc,
                body: Box::new(body),
            },
            span,
        ))
    }

    /// Attempts to parse `type name ( = expr | {args} | (args) )?`.
    /// Returns `Ok(None)` (cursor moved; caller restores) when the shape
    /// does not match a declaration.
    pub(crate) fn try_parse_var_decl(&mut self) -> Result<Option<VarDecl>> {
        let mut is_static = false;
        let mut is_constexpr = false;
        loop {
            if self.eat_kw("static") {
                is_static = true;
            } else if self.eat_kw("constexpr") {
                is_constexpr = true;
            } else {
                break;
            }
        }
        let mut ty = match self.parse_type() {
            Ok(t) => t,
            Err(_) => return Ok(None),
        };
        let name = match &self.peek().kind {
            TokenKind::Ident(n) if super::types_allows_decl_name(n) => {
                let n = n.clone();
                self.bump();
                n
            }
            _ => return Ok(None),
        };
        // Array suffix.
        while self.check_punct(Punct::LBracket) {
            self.bump();
            let len = match &self.peek().kind {
                TokenKind::Int(v) => {
                    let v = *v as u64;
                    self.bump();
                    Some(v)
                }
                TokenKind::Punct(Punct::RBracket) => None,
                _ => {
                    // Non-constant length: treat as unsized.
                    self.skip_until_top_level(&[]);
                    None
                }
            };
            self.expect_punct(Punct::RBracket)?;
            ty = Type::new(TypeKind::Array(Box::new(ty), len));
        }
        // Initializer.
        if self.eat_punct(Punct::Eq) {
            let init = self.parse_expr()?;
            if !self.check_punct(Punct::Semi) && !self.check_punct(Punct::Comma) {
                return Ok(None);
            }
            return Ok(Some(VarDecl {
                ty,
                name,
                is_static,
                is_constexpr,
                init: Some(init),
                brace_init: false,
            }));
        }
        if self.check_punct(Punct::LBrace) {
            let start = self.span();
            self.bump();
            let args = self.parse_call_args()?;
            let end = self.expect_punct(Punct::RBrace)?;
            let init = Expr::new(
                ExprKind::BraceInit {
                    ty: Some(ty.clone()),
                    args,
                },
                start.to(end),
            );
            return Ok(Some(VarDecl {
                ty,
                name,
                is_static,
                is_constexpr,
                init: Some(init),
                brace_init: true,
            }));
        }
        if self.check_punct(Punct::LParen) {
            // Direct initialization `T x(args);` — only when followed by `;`.
            let save = self.save();
            self.bump();
            let args = match self.parse_call_args() {
                Ok(a) => a,
                Err(_) => {
                    self.restore(save);
                    return Ok(None);
                }
            };
            if !self.check_punct(Punct::RParen) {
                self.restore(save);
                return Ok(None);
            }
            let end = self.bump().span;
            if !self.check_punct(Punct::Semi) {
                self.restore(save);
                return Ok(None);
            }
            let init = Expr::new(
                ExprKind::BraceInit {
                    ty: Some(ty.clone()),
                    args,
                },
                end,
            );
            return Ok(Some(VarDecl {
                ty,
                name,
                is_static,
                is_constexpr,
                init: Some(init),
                brace_init: false,
            }));
        }
        if self.check_punct(Punct::Semi) || self.check_punct(Punct::Comma) {
            return Ok(Some(VarDecl {
                ty,
                name,
                is_static,
                is_constexpr,
                init: None,
                brace_init: false,
            }));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Parser;

    fn block(src: &str) -> Block {
        let toks = crate::lex::lex_str(src).unwrap();
        let mut p = Parser::new(toks);
        let b = p.parse_block().unwrap();
        assert!(p.at_eof(), "leftover input");
        b
    }

    #[test]
    fn kernel_body_from_figure_3() {
        let b = block(
            "{ int j = m.league_rank(); Kokkos::parallel_for(Kokkos::TeamThreadRange(m, 5), [&](int i) { x(j, i) += y; }); }",
        );
        assert_eq!(b.stmts.len(), 2);
        assert!(matches!(b.stmts[0].kind, StmtKind::Decl(_)));
        assert!(matches!(b.stmts[1].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn classic_for_loop() {
        let b = block("{ for (int i = 0; i < m; i++) { acc += v[i]; } }");
        match &b.stmts[0].kind {
            StmtKind::For {
                init, cond, inc, ..
            } => {
                assert!(matches!(init.as_ref(), ForInit::Decl(_)));
                assert!(cond.is_some());
                assert!(inc.is_some());
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn for_with_this_member_bound() {
        // From the paper's Figure 9a: for (i = 0; i < this->M; i++)
        let b = block("{ int i = 0; for (i = 0; i < this->M; i++) { t += A(j, i) * x(i); } }");
        assert_eq!(b.stmts.len(), 2);
        match &b.stmts[1].kind {
            StmtKind::For { init, .. } => assert!(matches!(init.as_ref(), ForInit::Expr(_))),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn range_for() {
        let b = block("{ for (int v : values) { total += v; } }");
        assert!(matches!(b.stmts[0].kind, StmtKind::RangeFor { .. }));
    }

    #[test]
    fn if_else_chain() {
        let b = block("{ if (a) { x = 1; } else if (b) y = 2; else { z = 3; } }");
        match &b.stmts[0].kind {
            StmtKind::If { else_branch, .. } => {
                assert!(else_branch.is_some());
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn while_and_do_while() {
        let b = block("{ while (x < 10) x++; do { x--; } while (x > 0); }");
        assert!(matches!(b.stmts[0].kind, StmtKind::While { .. }));
        assert!(matches!(b.stmts[1].kind, StmtKind::DoWhile { .. }));
    }

    #[test]
    fn declarations_with_initializers() {
        let b = block("{ int a; int b = 2; double c{3.5}; auto d = b; }");
        assert_eq!(b.stmts.len(), 4);
        for s in &b.stmts {
            assert!(matches!(s.kind, StmtKind::Decl(_)), "{s:?}");
        }
        match &b.stmts[2].kind {
            StmtKind::Decl(v) => assert!(v.brace_init),
            _ => unreachable!(),
        }
    }

    #[test]
    fn pointer_declaration_vs_multiplication() {
        // `View* v;` is a decl. Bare `a * b;` is *also* a declaration by
        // C++'s disambiguation rule (a statement that can be a declaration
        // is one) — our grammar-only parser agrees. An actual
        // multiplication must appear in expression position.
        let b = block("{ View* v; a * b; c = a * b; }");
        assert!(matches!(b.stmts[0].kind, StmtKind::Decl(_)));
        assert!(matches!(b.stmts[1].kind, StmtKind::Decl(_)));
        assert!(matches!(b.stmts[2].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn templated_local_declaration() {
        let b = block("{ Kokkos::View<int**, Kokkos::LayoutRight> x; }");
        match &b.stmts[0].kind {
            StmtKind::Decl(v) => {
                assert_eq!(v.ty.to_string(), "Kokkos::View<int**, Kokkos::LayoutRight>");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn array_declaration() {
        let b = block("{ int buf[16]; double grid[4][4]; }");
        match &b.stmts[0].kind {
            StmtKind::Decl(v) => assert_eq!(v.ty.to_string(), "int[16]"),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn return_forms() {
        let b = block("{ return; }");
        assert!(matches!(b.stmts[0].kind, StmtKind::Return(None)));
        let b = block("{ return x + 1; }");
        assert!(matches!(b.stmts[0].kind, StmtKind::Return(Some(_))));
    }

    #[test]
    fn direct_initialization() {
        let b = block("{ Timer t(5); }");
        match &b.stmts[0].kind {
            StmtKind::Decl(v) => {
                assert_eq!(v.name, "t");
                assert!(v.init.is_some());
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn method_call_statement_not_decl() {
        let b = block("{ obj.run(); helper(x); }");
        assert!(matches!(b.stmts[0].kind, StmtKind::Expr(_)));
        assert!(matches!(b.stmts[1].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn nested_blocks_and_empty_stmt() {
        let b = block("{ ; { int x; } }");
        assert!(matches!(b.stmts[0].kind, StmtKind::Empty));
        assert!(matches!(b.stmts[1].kind, StmtKind::Block(_)));
    }

    #[test]
    fn unterminated_block_is_error() {
        let toks = crate::lex::lex_str("{ int x;").unwrap();
        let mut p = Parser::new(toks);
        assert!(p.parse_block().is_err());
    }
}
