//! Recursive-descent parser for the C++ subset.
//!
//! The parser consumes the preprocessor's token stream and produces a
//! [`TranslationUnit`]. It is deliberately scoped to the slice of C++ the
//! Header Substitution paper exercises (see crate docs) but is defensive:
//! unexpected input yields a [`crate::CppError::Parse`], never a panic.
//!
//! Ambiguities are resolved the way industrial parsers do:
//! * `>` tokens are never merged by the lexer; the parser re-merges two
//!   adjacent `>`s into `>>` only in expression context;
//! * `name < ...` is tried speculatively as a template-id (with full
//!   backtracking) and falls back to a relational comparison;
//! * statement-level `T x = ...;` vs expression is tried declaration-first
//!   with backtracking.

mod decls;
mod exprs;
mod stmts;
mod types;

use crate::ast::TranslationUnit;
use crate::error::{CppError, Result};
use crate::lex::{Punct, Token, TokenKind};
use crate::loc::Span;

/// Parses a preprocessed token stream into a translation unit.
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse_tokens(tokens: Vec<Token>) -> Result<TranslationUnit> {
    let mut p = Parser::new(tokens);
    p.parse_translation_unit()
}

/// Parses a bare string (lex + parse, no preprocessing). Convenient for
/// tests and for re-parsing generated code.
///
/// # Errors
///
/// Returns lexing or parsing errors.
pub fn parse_str(src: &str) -> Result<TranslationUnit> {
    let tokens = crate::lex::lex_str(src)?;
    parse_tokens(tokens)
}

/// The parser state.
#[derive(Debug)]
pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Monotone counter used to give each lambda a stable id.
    lambda_counter: u32,
    /// Current nesting depth (expressions, blocks, namespaces, template
    /// argument lists share one budget) — guards the recursive-descent
    /// stack against pathological inputs.
    depth: u32,
}

/// Maximum combined nesting depth before the parser reports an error
/// instead of risking a stack overflow. 64 is far beyond real C++ nesting
/// but keeps the recursive descent comfortably inside even a 2 MB test
/// thread stack in debug builds.
pub(crate) const MAX_NESTING_DEPTH: u32 = 64;

impl Parser {
    /// Creates a parser over `toks` (which must end with an EOF token).
    pub fn new(mut toks: Vec<Token>) -> Self {
        if !matches!(toks.last().map(|t| &t.kind), Some(TokenKind::Eof)) {
            toks.push(Token::eof());
        }
        Parser {
            toks,
            pos: 0,
            lambda_counter: 0,
            depth: 0,
        }
    }

    /// Parses until EOF.
    pub fn parse_translation_unit(&mut self) -> Result<TranslationUnit> {
        let mut decls = Vec::new();
        while !self.at_eof() {
            decls.push(self.parse_decl()?);
        }
        Ok(TranslationUnit { decls })
    }

    // ----- cursor helpers -------------------------------------------------

    pub(crate) fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    pub(crate) fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    pub(crate) fn peek_at(&self, n: usize) -> &Token {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)]
    }

    pub(crate) fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn save(&self) -> usize {
        self.pos
    }

    pub(crate) fn restore(&mut self, save: usize) {
        self.pos = save;
    }

    pub(crate) fn span(&self) -> Span {
        self.peek().span
    }

    pub(crate) fn err(&self, message: impl Into<String>) -> CppError {
        CppError::Parse {
            message: format!("{} (found `{}`)", message.into(), self.peek().kind),
            span: self.peek().span,
        }
    }

    // ----- token predicates ----------------------------------------------

    pub(crate) fn check_punct(&self, p: Punct) -> bool {
        self.peek().kind.is_punct(p)
    }

    pub(crate) fn eat_punct(&mut self, p: Punct) -> bool {
        if self.check_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_punct(&mut self, p: Punct) -> Result<Span> {
        if self.check_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{p}`")))
        }
    }

    pub(crate) fn check_kw(&self, kw: &str) -> bool {
        self.peek().kind.is_ident(kw)
    }

    pub(crate) fn eat_kw(&mut self, kw: &str) -> bool {
        if self.check_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: &str) -> Result<Span> {
        if self.check_kw(kw) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    /// Consumes an identifier token and returns its text and span.
    pub(crate) fn ident(&mut self) -> Result<(String, Span)> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                let span = self.bump().span;
                Ok((s, span))
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    /// Renders the tokens in `[from, to)` positions as text with minimal
    /// spacing — used for default arguments, enum values, and other
    /// payloads YALLA only needs verbatim.
    pub(crate) fn render_range(&self, from: usize, to: usize) -> String {
        let mut out = String::new();
        for (k, t) in self.toks[from..to.min(self.toks.len())].iter().enumerate() {
            if k > 0 && needs_space(&self.toks[from + k - 1].kind, &t.kind) {
                out.push(' ');
            }
            match &t.kind {
                TokenKind::Str(s) => {
                    out.push('"');
                    out.push_str(&s.replace('\\', "\\\\").replace('"', "\\\""));
                    out.push('"');
                }
                other => out.push_str(&other.to_string()),
            }
        }
        out
    }

    /// Skips tokens until (but not including) one of `stops` at bracket
    /// depth 0. A closing bracket at depth 0 also stops (without being
    /// consumed) even when not listed.
    pub(crate) fn skip_until_top_level(&mut self, stops: &[Punct]) {
        let mut depth = 0usize;
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return,
                TokenKind::Punct(p) => {
                    match p {
                        Punct::LParen | Punct::LBrace | Punct::LBracket => depth += 1,
                        Punct::RParen | Punct::RBrace | Punct::RBracket => {
                            if depth == 0 {
                                return;
                            }
                            depth -= 1;
                        }
                        _ => {
                            if depth == 0 && stops.contains(p) {
                                return;
                            }
                        }
                    }
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Enters one nesting level; errors beyond [`MAX_NESTING_DEPTH`].
    pub(crate) fn enter_depth(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            self.depth -= 1;
            return Err(self.err("input is nested too deeply"));
        }
        Ok(())
    }

    /// Leaves one nesting level.
    pub(crate) fn leave_depth(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    pub(crate) fn next_lambda_id(&mut self) -> u32 {
        let id = self.lambda_counter;
        self.lambda_counter += 1;
        id
    }
}

/// True when `s` may serve as a declared variable/parameter name (i.e. it
/// is not a reserved word of the subset).
pub(crate) fn types_allows_decl_name(s: &str) -> bool {
    !matches!(
        s,
        "if" | "else"
            | "for"
            | "while"
            | "do"
            | "return"
            | "break"
            | "continue"
            | "new"
            | "delete"
            | "this"
            | "true"
            | "false"
            | "nullptr"
            | "sizeof"
            | "operator"
            | "template"
            | "namespace"
            | "using"
            | "typedef"
            | "public"
            | "private"
            | "protected"
            | "const"
            | "class"
            | "struct"
            | "enum"
            | "static"
            | "inline"
            | "virtual"
            | "constexpr"
            | "noexcept"
            | "override"
    )
}

fn needs_space(prev: &TokenKind, next: &TokenKind) -> bool {
    // Words next to words need a space; everything else can abut except a
    // few readability cases.
    let word = |k: &TokenKind| {
        matches!(
            k,
            TokenKind::Ident(_) | TokenKind::Int(_) | TokenKind::Float(_)
        )
    };
    if word(prev) && word(next) {
        return true;
    }
    if prev.is_punct(Punct::Comma) {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_never_walks_past_eof() {
        let mut p = Parser::new(vec![Token::eof()]);
        assert!(p.at_eof());
        p.bump();
        p.bump();
        assert!(p.at_eof());
    }

    #[test]
    fn render_range_spacing() {
        let toks = crate::lex::lex_str("a + b, f(x)").unwrap();
        let p = Parser::new(toks);
        assert_eq!(p.render_range(0, 8), "a+b, f(x)");
    }

    #[test]
    fn skip_until_top_level_respects_nesting() {
        let toks = crate::lex::lex_str("f(a, b), c;").unwrap();
        let mut p = Parser::new(toks);
        p.skip_until_top_level(&[Punct::Comma]);
        // Should stop at the comma *after* the call, not inside it.
        assert!(p.check_punct(Punct::Comma));
        assert_eq!(p.save(), 6);
    }
}
