//! Expression parsing (precedence climbing).

use crate::ast::{
    BinaryOp, Builtin, Expr, ExprKind, LambdaCapture, LambdaExpr, NameSeg, QualName, Type, UnaryOp,
};
use crate::error::Result;
use crate::lex::{Punct, TokenKind};
use crate::parse::Parser;

impl Parser {
    /// Parses a full expression (assignment level; the comma operator is
    /// not part of the subset — commas separate arguments only).
    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.enter_depth()?;
        let result = self.parse_assignment();
        self.leave_depth();
        result
    }

    fn parse_assignment(&mut self) -> Result<Expr> {
        let lhs = self.parse_conditional()?;
        let op = if self.check_punct(Punct::Eq) {
            Some(BinaryOp::Assign)
        } else if self.check_punct(Punct::PlusEq) {
            Some(BinaryOp::AddAssign)
        } else if self.check_punct(Punct::MinusEq) {
            Some(BinaryOp::SubAssign)
        } else if self.check_punct(Punct::StarEq) {
            Some(BinaryOp::MulAssign)
        } else if self.check_punct(Punct::SlashEq) {
            Some(BinaryOp::DivAssign)
        } else if self.check_punct(Punct::PercentEq) {
            Some(BinaryOp::RemAssign)
        } else if self.check_punct(Punct::ShlEq) {
            Some(BinaryOp::ShlAssign)
        } else if self.check_punct(Punct::AmpEq) {
            Some(BinaryOp::AndAssign)
        } else if self.check_punct(Punct::PipeEq) {
            Some(BinaryOp::OrAssign)
        } else if self.check_punct(Punct::CaretEq) {
            Some(BinaryOp::XorAssign)
        } else if self.check_punct(Punct::Gt) && self.gt_adjacent_kind(1) == Some(Punct::GtEq) {
            // `>>=` arrives as `>` `>=`.
            self.bump();
            Some(BinaryOp::ShrAssign)
        } else {
            None
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_assignment()?;
            let span = lhs.span.to(rhs.span);
            return Ok(Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            ));
        }
        Ok(lhs)
    }

    fn parse_conditional(&mut self) -> Result<Expr> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then_expr = self.parse_assignment()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.parse_assignment()?;
            let span = cond.span.to(else_expr.span);
            return Ok(Expr::new(
                ExprKind::Conditional {
                    cond: Box::new(cond),
                    then_expr: Box::new(then_expr),
                    else_expr: Box::new(else_expr),
                },
                span,
            ));
        }
        Ok(cond)
    }

    /// Is the token `n` ahead a `>`-family punct immediately adjacent to
    /// the current `>` (no whitespace)? Used to reassemble `>>` and `>>=`.
    fn gt_adjacent_kind(&self, n: usize) -> Option<Punct> {
        let cur = self.peek_at(n - 1);
        let next = self.peek_at(n);
        if cur.span.file == next.span.file && cur.span.end == next.span.start {
            if let TokenKind::Punct(p) = next.kind {
                return Some(p);
            }
        }
        None
    }

    /// Binary-operator level `min_prec` and tighter (precedence climbing).
    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec, extra_tokens) = match self.binary_op_here() {
                Some(x) => x,
                None => return Ok(lhs),
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.bump();
            for _ in 0..extra_tokens {
                self.bump();
            }
            let rhs = self.parse_binary(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
    }

    /// Identifies the binary operator at the cursor: `(op, precedence,
    /// extra tokens to consume)`. Precedence: higher binds tighter.
    fn binary_op_here(&self) -> Option<(BinaryOp, u8, u8)> {
        use BinaryOp::*;
        let p = match &self.peek().kind {
            TokenKind::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            Punct::PipePipe => (Or, 1, 0),
            Punct::AmpAmp => (And, 2, 0),
            Punct::Pipe => (BitOr, 3, 0),
            Punct::Caret => (BitXor, 4, 0),
            Punct::Amp => (BitAnd, 5, 0),
            Punct::EqEq => (Eq, 6, 0),
            Punct::BangEq => (Ne, 6, 0),
            Punct::Lt => (Lt, 7, 0),
            Punct::LtEq => (Le, 7, 0),
            Punct::GtEq => (Ge, 7, 0),
            Punct::Gt => {
                if self.gt_adjacent_kind(1) == Some(Punct::Gt) {
                    (Shr, 8, 1)
                } else {
                    (Gt, 7, 0)
                }
            }
            Punct::Shl => (Shl, 8, 0),
            Punct::Plus => (Add, 9, 0),
            Punct::Minus => (Sub, 9, 0),
            Punct::Star => (Mul, 10, 0),
            Punct::Slash => (Div, 10, 0),
            Punct::Percent => (Rem, 10, 0),
            _ => return None,
        })
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let start = self.span();
        let op = if self.check_punct(Punct::Minus) {
            Some(UnaryOp::Neg)
        } else if self.check_punct(Punct::Bang) {
            Some(UnaryOp::Not)
        } else if self.check_punct(Punct::Tilde) {
            Some(UnaryOp::BitNot)
        } else if self.check_punct(Punct::Star) {
            Some(UnaryOp::Deref)
        } else if self.check_punct(Punct::Amp) {
            Some(UnaryOp::AddrOf)
        } else if self.check_punct(Punct::PlusPlus) {
            Some(UnaryOp::PreInc)
        } else if self.check_punct(Punct::MinusMinus) {
            Some(UnaryOp::PreDec)
        } else {
            None
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.parse_unary()?;
            let span = start.to(expr.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    expr: Box::new(expr),
                },
                span,
            ));
        }
        if self.eat_punct(Punct::Plus) {
            // Unary plus is a no-op.
            return self.parse_unary();
        }
        if self.check_kw("new") {
            return self.parse_new();
        }
        if self.check_kw("delete") {
            let start = self.bump().span;
            let array = if self.check_punct(Punct::LBracket) {
                self.bump();
                self.expect_punct(Punct::RBracket)?;
                true
            } else {
                false
            };
            let expr = self.parse_unary()?;
            let span = start.to(expr.span);
            return Ok(Expr::new(
                ExprKind::Delete {
                    array,
                    expr: Box::new(expr),
                },
                span,
            ));
        }
        if self.check_kw("sizeof") {
            let start = self.bump().span;
            self.expect_punct(Punct::LParen)?;
            let from = self.save();
            self.skip_until_top_level(&[]);
            let text = self.render_range(from, self.save());
            let end = self.expect_punct(Punct::RParen)?;
            return Ok(Expr::new(ExprKind::Sizeof(text), start.to(end)));
        }
        self.parse_postfix()
    }

    fn parse_new(&mut self) -> Result<Expr> {
        let start = self.expect_kw("new")?;
        let ty = self.parse_type()?;
        let mut args = Vec::new();
        let mut end = start;
        if self.check_punct(Punct::LParen) {
            self.bump();
            args = self.parse_call_args()?;
            end = self.expect_punct(Punct::RParen)?;
        } else if self.check_punct(Punct::LBrace) {
            self.bump();
            args = self.parse_call_args()?;
            end = self.expect_punct(Punct::RBrace)?;
        } else if self.check_punct(Punct::LBracket) {
            self.bump();
            let len = self.parse_expr()?;
            args.push(len);
            end = self.expect_punct(Punct::RBracket)?;
        }
        Ok(Expr::new(ExprKind::New { ty, args }, start.to(end)))
    }

    pub(crate) fn parse_call_args(&mut self) -> Result<Vec<Expr>> {
        let mut args = Vec::new();
        if self.check_punct(Punct::RParen) || self.check_punct(Punct::RBrace) {
            return Ok(args);
        }
        loop {
            args.push(self.parse_expr()?);
            if !self.eat_punct(Punct::Comma) {
                return Ok(args);
            }
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut expr = self.parse_primary()?;
        loop {
            if self.check_punct(Punct::LParen) {
                self.bump();
                let args = self.parse_call_args()?;
                let end = self.expect_punct(Punct::RParen)?;
                let span = expr.span.to(end);
                expr = Expr::new(
                    ExprKind::Call {
                        callee: Box::new(expr),
                        args,
                    },
                    span,
                );
            } else if self.check_punct(Punct::LBracket) {
                self.bump();
                let index = self.parse_expr()?;
                let end = self.expect_punct(Punct::RBracket)?;
                let span = expr.span.to(end);
                expr = Expr::new(
                    ExprKind::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                    },
                    span,
                );
            } else if self.check_punct(Punct::Dot) || self.check_punct(Punct::Arrow) {
                let arrow = self.check_punct(Punct::Arrow);
                self.bump();
                let (ident, iend) = self.ident()?;
                // Optional explicit template args on the member name when
                // unambiguous (followed by `(`), e.g. `obj.get<int>()`.
                let args = if self.check_punct(Punct::Lt) {
                    let save = self.save();
                    match self.parse_template_args() {
                        Ok(a) if self.check_punct(Punct::LParen) => Some(a),
                        _ => {
                            self.restore(save);
                            None
                        }
                    }
                } else {
                    None
                };
                let span = expr.span.to(iend);
                expr = Expr::new(
                    ExprKind::Member {
                        base: Box::new(expr),
                        arrow,
                        member: NameSeg { ident, args },
                    },
                    span,
                );
            } else if self.check_punct(Punct::PlusPlus) {
                let end = self.bump().span;
                let span = expr.span.to(end);
                expr = Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::PostInc,
                        expr: Box::new(expr),
                    },
                    span,
                );
            } else if self.check_punct(Punct::MinusMinus) {
                let end = self.bump().span;
                let span = expr.span.to(end);
                expr = Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::PostDec,
                        expr: Box::new(expr),
                    },
                    span,
                );
            } else {
                return Ok(expr);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                Ok(Expr::new(ExprKind::Int(v), tok.span))
            }
            TokenKind::Float(v) => {
                let v = *v;
                self.bump();
                Ok(Expr::new(ExprKind::Float(v), tok.span))
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), tok.span))
            }
            TokenKind::Char(c) => {
                let c = *c;
                self.bump();
                Ok(Expr::new(ExprKind::Char(c), tok.span))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let inner = self.parse_expr()?;
                let end = self.expect_punct(Punct::RParen)?;
                Ok(Expr::new(
                    ExprKind::Paren(Box::new(inner)),
                    tok.span.to(end),
                ))
            }
            TokenKind::Punct(Punct::LBracket) => self.parse_lambda(),
            TokenKind::Punct(Punct::LBrace) => {
                // Bare braced init list (argument position).
                self.bump();
                let args = self.parse_call_args()?;
                let end = self.expect_punct(Punct::RBrace)?;
                Ok(Expr::new(
                    ExprKind::BraceInit { ty: None, args },
                    tok.span.to(end),
                ))
            }
            TokenKind::Ident(word) => match word.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::new(ExprKind::Bool(true), tok.span))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::new(ExprKind::Bool(false), tok.span))
                }
                "nullptr" => {
                    self.bump();
                    Ok(Expr::new(ExprKind::Null, tok.span))
                }
                "this" => {
                    self.bump();
                    Ok(Expr::new(ExprKind::This, tok.span))
                }
                "static_cast" | "dynamic_cast" | "const_cast" | "reinterpret_cast" => {
                    let kind = word.clone();
                    self.bump();
                    self.expect_punct(Punct::Lt)?;
                    let ty = self.parse_type()?;
                    self.expect_punct(Punct::Gt)?;
                    self.expect_punct(Punct::LParen)?;
                    let inner = self.parse_expr()?;
                    let end = self.expect_punct(Punct::RParen)?;
                    Ok(Expr::new(
                        ExprKind::Cast {
                            kind,
                            ty,
                            expr: Box::new(inner),
                        },
                        tok.span.to(end),
                    ))
                }
                // Functional cast on builtins: `int(x)`, `double(y)`.
                "int" | "double" | "float" | "bool" | "char" | "unsigned" | "long" | "short"
                | "size_t" => {
                    let ty = self.parse_type()?;
                    self.expect_punct(Punct::LParen)?;
                    let inner = self.parse_expr()?;
                    let end = self.expect_punct(Punct::RParen)?;
                    Ok(Expr::new(
                        ExprKind::Cast {
                            kind: "functional".into(),
                            ty,
                            expr: Box::new(inner),
                        },
                        tok.span.to(end),
                    ))
                }
                _ => self.parse_id_expression(),
            },
            TokenKind::Punct(Punct::ColonColon) => self.parse_id_expression(),
            _ => Err(self.err("expected expression")),
        }
    }

    /// Parses an id-expression: a qualified name whose segments may carry
    /// template arguments, disambiguated speculatively: `g_add<int>(...)`
    /// is a template-id; `a < b` is a comparison.
    fn parse_id_expression(&mut self) -> Result<Expr> {
        let start = self.span();
        let global = self.eat_punct(Punct::ColonColon);
        let mut segs = Vec::new();
        let mut end;
        loop {
            let (ident, ispan) = self.ident()?;
            end = ispan;
            let args = if self.check_punct(Punct::Lt) {
                let save = self.save();
                match self.parse_template_args() {
                    Ok(a) if self.template_id_accepts_here() => Some(a),
                    _ => {
                        self.restore(save);
                        None
                    }
                }
            } else {
                None
            };
            segs.push(NameSeg { ident, args });
            if self.check_punct(Punct::ColonColon)
                && matches!(self.peek_at(1).kind, TokenKind::Ident(_))
            {
                self.bump();
            } else {
                break;
            }
        }
        let name = QualName { global, segs };
        // `T{...}` after a name is a braced init of that type.
        if self.check_punct(Punct::LBrace) {
            self.bump();
            let args = self.parse_call_args()?;
            let rend = self.expect_punct(Punct::RBrace)?;
            let ty = Type::named(name);
            return Ok(Expr::new(
                ExprKind::BraceInit { ty: Some(ty), args },
                start.to(rend),
            ));
        }
        let _ = Builtin::Void; // (keep import used in all cfgs)
        Ok(Expr::new(ExprKind::Name(name), start.to(end)))
    }

    /// After speculatively parsing `<...>` in expression context, decide
    /// whether to accept it as template arguments: accept only when the
    /// next token could follow a template-id but not a comparison chain.
    fn template_id_accepts_here(&self) -> bool {
        match &self.peek().kind {
            TokenKind::Punct(p) => matches!(
                p,
                Punct::LParen
                    | Punct::RParen
                    | Punct::Comma
                    | Punct::Semi
                    | Punct::LBrace
                    | Punct::RBrace
                    | Punct::ColonColon
                    | Punct::Gt
                    | Punct::RBracket
                    | Punct::Dot
                    | Punct::Arrow
            ),
            TokenKind::Eof => true,
            _ => false,
        }
    }

    /// Parses a lambda expression `[caps](params) specs? -> ret? { body }`.
    fn parse_lambda(&mut self) -> Result<Expr> {
        let start = self.expect_punct(Punct::LBracket)?;
        let mut captures = Vec::new();
        if !self.check_punct(Punct::RBracket) {
            loop {
                if self.eat_punct(Punct::Amp) {
                    if let TokenKind::Ident(name) = &self.peek().kind {
                        let name = name.clone();
                        self.bump();
                        captures.push(LambdaCapture::ByRef(name));
                    } else {
                        captures.push(LambdaCapture::AllByRef);
                    }
                } else if self.eat_punct(Punct::Eq) {
                    captures.push(LambdaCapture::AllByValue);
                } else if self.eat_kw("this") {
                    captures.push(LambdaCapture::This);
                } else {
                    let (name, _) = self.ident()?;
                    captures.push(LambdaCapture::ByValue(name));
                }
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RBracket)?;
        let mut params = Vec::new();
        if self.eat_punct(Punct::LParen) {
            if !self.check_punct(Punct::RParen) {
                loop {
                    let ty = self.parse_type()?;
                    let name = match &self.peek().kind {
                        TokenKind::Ident(n) => {
                            let n = n.clone();
                            self.bump();
                            n
                        }
                        _ => String::new(),
                    };
                    params.push((ty, name));
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        // Optional specifiers and trailing return type.
        loop {
            if self.eat_kw("mutable") || self.eat_kw("constexpr") || self.eat_kw("noexcept") {
                continue;
            }
            break;
        }
        if self.eat_punct(Punct::Arrow) {
            let _ret = self.parse_type()?;
        }
        let body = self.parse_block()?;
        let end = body.span;
        let id = self.next_lambda_id();
        Ok(Expr::new(
            ExprKind::Lambda(LambdaExpr {
                id,
                captures,
                params,
                body,
            }),
            start.to(end),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Parser;

    fn expr(src: &str) -> Expr {
        let toks = crate::lex::lex_str(src).unwrap();
        let mut p = Parser::new(toks);
        let e = p.parse_expr().unwrap();
        assert!(p.at_eof() || p.check_punct(Punct::Semi), "leftover input");
        e
    }

    #[test]
    fn precedence() {
        let e = expr("1 + 2 * 3");
        match e.kind {
            ExprKind::Binary { op, rhs, .. } => {
                assert_eq!(op, BinaryOp::Add);
                assert!(matches!(
                    rhs.kind,
                    ExprKind::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = expr("a = b = c");
        match e.kind {
            ExprKind::Binary { op, rhs, .. } => {
                assert_eq!(op, BinaryOp::Assign);
                assert!(matches!(
                    rhs.kind,
                    ExprKind::Binary {
                        op: BinaryOp::Assign,
                        ..
                    }
                ));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn compound_assignment() {
        assert!(matches!(
            expr("x += y").kind,
            ExprKind::Binary {
                op: BinaryOp::AddAssign,
                ..
            }
        ));
    }

    #[test]
    fn template_id_call() {
        let e = expr("g_add<int>(1, 2)");
        match e.kind {
            ExprKind::Call { callee, args } => {
                let name = callee.as_name().unwrap();
                assert_eq!(name.key(), "g_add");
                assert!(name.segs[0].args.is_some());
                assert_eq!(args.len(), 2);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn less_than_is_not_template() {
        let e = expr("i < m");
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::Lt,
                ..
            }
        ));
    }

    #[test]
    fn less_than_with_member_rhs() {
        let e = expr("i < obj.size");
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::Lt,
                ..
            }
        ));
    }

    #[test]
    fn shift_right_from_adjacent_gts() {
        let e = expr("a >> 2");
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::Shr,
                ..
            }
        ));
    }

    #[test]
    fn comparison_chain_not_shift() {
        // `a > b` with a space stays a comparison even if followed by `> c`
        // ... which would be (a > b) > c.
        let e = expr("a > b");
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::Gt,
                ..
            }
        ));
    }

    #[test]
    fn member_call_chain() {
        let e = expr("m.league_rank()");
        match e.kind {
            ExprKind::Call { callee, args } => {
                assert!(args.is_empty());
                match &callee.kind {
                    ExprKind::Member { member, arrow, .. } => {
                        assert_eq!(member.ident, "league_rank");
                        assert!(!arrow);
                    }
                    other => panic!("bad callee: {other:?}"),
                }
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn arrow_and_deref() {
        let e = expr("(*x)(j, i)");
        assert!(matches!(e.kind, ExprKind::Call { .. }));
        let e = expr("p->field");
        assert!(matches!(e.kind, ExprKind::Member { arrow: true, .. }));
    }

    #[test]
    fn call_operator_on_object() {
        // x(j, i) — overloaded operator() use; parses as Call with Name callee.
        let e = expr("x(j, i)");
        match e.kind {
            ExprKind::Call { callee, args } => {
                assert_eq!(callee.as_name().unwrap().key(), "x");
                assert_eq!(args.len(), 2);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn lambda_with_ref_capture() {
        let e = expr("[&](int i) { x(j, i) += y; }");
        match e.kind {
            ExprKind::Lambda(l) => {
                assert_eq!(l.captures, vec![LambdaCapture::AllByRef]);
                assert_eq!(l.params.len(), 1);
                assert_eq!(l.params[0].1, "i");
                assert_eq!(l.body.stmts.len(), 1);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn lambda_capture_variants() {
        let e = expr("[=, &a, b, this](double d) mutable -> int { return 0; }");
        match e.kind {
            ExprKind::Lambda(l) => {
                assert_eq!(
                    l.captures,
                    vec![
                        LambdaCapture::AllByValue,
                        LambdaCapture::ByRef("a".into()),
                        LambdaCapture::ByValue("b".into()),
                        LambdaCapture::This,
                    ]
                );
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn new_and_delete() {
        let e = expr("new Kokkos::View<int>(5)");
        match e.kind {
            ExprKind::New { ty, args } => {
                assert_eq!(ty.to_string(), "Kokkos::View<int>");
                assert_eq!(args.len(), 1);
            }
            other => panic!("bad parse: {other:?}"),
        }
        assert!(matches!(
            expr("delete p").kind,
            ExprKind::Delete { array: false, .. }
        ));
        assert!(matches!(
            expr("delete[] p").kind,
            ExprKind::Delete { array: true, .. }
        ));
    }

    #[test]
    fn casts() {
        let e = expr("static_cast<double>(x)");
        assert!(matches!(e.kind, ExprKind::Cast { .. }));
        let e = expr("int(x)");
        assert!(
            matches!(&e.kind, ExprKind::Cast { kind, .. } if kind == "functional"),
            "functional cast"
        );
    }

    #[test]
    fn brace_init_with_type() {
        let e = expr("lambda_functor{x, j, y}");
        match e.kind {
            ExprKind::BraceInit { ty, args } => {
                assert_eq!(ty.unwrap().to_string(), "lambda_functor");
                assert_eq!(args.len(), 3);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn conditional_expression() {
        let e = expr("a ? b : c");
        assert!(matches!(e.kind, ExprKind::Conditional { .. }));
    }

    #[test]
    fn qualified_call() {
        let e = expr("Kokkos::parallel_for(range, body)");
        match e.kind {
            ExprKind::Call { callee, .. } => {
                assert_eq!(callee.as_name().unwrap().key(), "Kokkos::parallel_for");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn subscript_and_postincrement() {
        let e = expr("v[i]++");
        assert!(matches!(
            e.kind,
            ExprKind::Unary {
                op: UnaryOp::PostInc,
                ..
            }
        ));
    }

    #[test]
    fn sizeof_expr() {
        let e = expr("sizeof(int)");
        assert!(matches!(e.kind, ExprKind::Sizeof(s) if s == "int"));
    }

    #[test]
    fn address_of_and_logical() {
        let e = expr("&x != nullptr && !done");
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn stream_output_chain() {
        let e = expr("std::cout << x << 2");
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::Shl,
                ..
            }
        ));
    }
}
