//! Declaration parsing: namespaces, classes, templates, functions,
//! aliases, enums, variables.

use crate::ast::{
    AccessSpecifier, AliasDecl, ClassDecl, ClassKey, Decl, DeclKind, EnumDecl, Enumerator,
    FunctionDecl, FunctionName, FunctionSpecs, Member, NamespaceDecl, Param, QualName,
    TemplateHeader, TemplateParam,
};
use crate::error::Result;
use crate::lex::{Punct, TokenKind};
use crate::parse::Parser;

impl Parser {
    /// Parses one declaration at namespace scope.
    pub(crate) fn parse_decl(&mut self) -> Result<Decl> {
        let start = self.span();
        // namespace
        if self.check_kw("namespace")
            || (self.check_kw("inline") && self.peek_at(1).kind.is_ident("namespace"))
        {
            let is_inline = self.eat_kw("inline");
            self.expect_kw("namespace")?;
            let mut names = Vec::new();
            if let TokenKind::Ident(_) = self.peek().kind {
                loop {
                    let (n, _) = self.ident()?;
                    names.push(n);
                    if !self.eat_punct(Punct::ColonColon) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::LBrace)?;
            let mut decls = Vec::new();
            while !self.check_punct(Punct::RBrace) {
                if self.at_eof() {
                    return Err(self.err("unterminated namespace"));
                }
                decls.push(self.parse_decl()?);
            }
            let end = self.expect_punct(Punct::RBrace)?;
            // `namespace A::B { ... }` nests right-to-left.
            let mut name_iter = names.into_iter().rev();
            let innermost = name_iter.next().unwrap_or_default();
            let mut decl = Decl::new(
                DeclKind::Namespace(NamespaceDecl {
                    name: innermost,
                    is_inline,
                    decls,
                }),
                start.to(end),
            );
            for outer in name_iter {
                decl = Decl::new(
                    DeclKind::Namespace(NamespaceDecl {
                        name: outer,
                        is_inline: false,
                        decls: vec![decl],
                    }),
                    start.to(end),
                );
            }
            return Ok(decl);
        }
        // template
        if self.check_kw("template") {
            return self.parse_templated_decl();
        }
        // using / typedef
        if self.check_kw("using") {
            return self.parse_using();
        }
        if self.check_kw("typedef") {
            self.bump();
            let target = self.parse_type()?;
            let (name, _) = self.ident()?;
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Decl::new(
                DeclKind::Alias(AliasDecl {
                    name,
                    template: None,
                    target,
                }),
                start.to(end),
            ));
        }
        // class / struct (not elaborated-type variable decls)
        if self.check_kw("class") || self.check_kw("struct") {
            return self.parse_class(None, false);
        }
        if self.check_kw("enum") {
            return self.parse_enum();
        }
        if self.check_kw("static_assert") {
            self.bump();
            self.expect_punct(Punct::LParen)?;
            self.skip_until_top_level(&[]);
            self.expect_punct(Punct::RParen)?;
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Decl::new(DeclKind::StaticAssert, start.to(end)));
        }
        // extern "C" { ... } — contents parsed transparently.
        if self.check_kw("extern") && matches!(self.peek_at(1).kind, TokenKind::Str(_)) {
            self.bump();
            self.bump();
            if self.check_punct(Punct::LBrace) {
                self.bump();
                let mut decls = Vec::new();
                while !self.check_punct(Punct::RBrace) {
                    if self.at_eof() {
                        return Err(self.err("unterminated extern block"));
                    }
                    decls.push(self.parse_decl()?);
                }
                let end = self.expect_punct(Punct::RBrace)?;
                return Ok(Decl::new(
                    DeclKind::Namespace(NamespaceDecl {
                        name: String::new(),
                        is_inline: true,
                        decls,
                    }),
                    start.to(end),
                ));
            }
            // `extern "C" decl;`
            return self.parse_decl();
        }
        // Function or variable.
        self.parse_function_or_variable(None)
    }

    fn parse_using(&mut self) -> Result<Decl> {
        let start = self.expect_kw("using")?;
        if self.eat_kw("namespace") {
            let name = self.parse_qual_name(false)?;
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Decl::new(DeclKind::UsingNamespace(name), start.to(end)));
        }
        // `using X = T;` vs `using A::b;`
        if matches!(self.peek().kind, TokenKind::Ident(_))
            && self.peek_at(1).kind.is_punct(Punct::Eq)
        {
            let (name, _) = self.ident()?;
            self.bump(); // =
            let target = self.parse_type()?;
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Decl::new(
                DeclKind::Alias(AliasDecl {
                    name,
                    template: None,
                    target,
                }),
                start.to(end),
            ));
        }
        let name = self.parse_qual_name(true)?;
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Decl::new(DeclKind::UsingDecl(name), start.to(end)))
    }

    /// Parses `template <...> decl`, `template <> decl` (explicit
    /// specialization) and `template decl` (explicit instantiation).
    fn parse_templated_decl(&mut self) -> Result<Decl> {
        let start = self.expect_kw("template")?;
        if !self.check_punct(Punct::Lt) {
            // Explicit instantiation: `template class V<int>;` or
            // `template void f<int>(int, int);`
            if self.check_kw("class") || self.check_kw("struct") {
                let key = if self.eat_kw("class") {
                    ClassKey::Class
                } else {
                    self.expect_kw("struct")?;
                    ClassKey::Struct
                };
                let name = self.parse_qual_name(false)?;
                let spec_from = self.save();
                if self.check_punct(Punct::Lt) {
                    self.parse_template_args()?;
                }
                let spec_args = Some(self.render_range(spec_from, self.save()));
                let end = self.expect_punct(Punct::Semi)?;
                return Ok(Decl::new(
                    DeclKind::Class(ClassDecl {
                        key,
                        name: name.key(),
                        template: None,
                        spec_args,
                        bases: vec![],
                        members: vec![],
                        is_definition: false,
                        is_explicit_instantiation: true,
                    }),
                    start.to(end),
                ));
            }
            let mut decl = self.parse_function_or_variable(None)?;
            if let DeclKind::Function(f) = &mut decl.kind {
                f.specs.is_explicit_instantiation = true;
            }
            decl.span = start.to(decl.span);
            return Ok(decl);
        }
        let header = self.parse_template_header()?;
        if self.check_kw("class") || self.check_kw("struct") {
            let mut d = self.parse_class(Some(header), false)?;
            d.span = start.to(d.span);
            return Ok(d);
        }
        if self.check_kw("using") {
            // Alias template.
            self.bump();
            let (name, _) = self.ident()?;
            self.expect_punct(Punct::Eq)?;
            let target = self.parse_type()?;
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Decl::new(
                DeclKind::Alias(AliasDecl {
                    name,
                    template: Some(header),
                    target,
                }),
                start.to(end),
            ));
        }
        if self.check_kw("template") {
            // Nested template-template cases are outside the subset; parse
            // the inner declaration and attach the outer header.
            let mut d = self.parse_templated_decl()?;
            d.span = start.to(d.span);
            return Ok(d);
        }
        let mut d = self.parse_function_or_variable(Some(header))?;
        d.span = start.to(d.span);
        Ok(d)
    }

    /// Parses `<typename T, int N = 4, typename... Ts>`.
    pub(crate) fn parse_template_header(&mut self) -> Result<TemplateHeader> {
        self.expect_punct(Punct::Lt)?;
        let mut params = Vec::new();
        if self.eat_punct(Punct::Gt) {
            return Ok(TemplateHeader { params });
        }
        loop {
            if self.check_kw("typename") || self.check_kw("class") {
                self.bump();
                let pack = self.eat_punct(Punct::Ellipsis);
                let name = match &self.peek().kind {
                    TokenKind::Ident(n) => {
                        let n = n.clone();
                        self.bump();
                        n
                    }
                    _ => String::new(),
                };
                let default = if self.eat_punct(Punct::Eq) {
                    let from = self.save();
                    self.skip_template_default();
                    Some(self.render_range(from, self.save()))
                } else {
                    None
                };
                params.push(TemplateParam::Type {
                    name,
                    pack,
                    default,
                });
            } else {
                let ty = self.parse_type()?;
                let name = match &self.peek().kind {
                    TokenKind::Ident(n) => {
                        let n = n.clone();
                        self.bump();
                        n
                    }
                    _ => String::new(),
                };
                let default = if self.eat_punct(Punct::Eq) {
                    let from = self.save();
                    self.skip_template_default();
                    Some(self.render_range(from, self.save()))
                } else {
                    None
                };
                params.push(TemplateParam::NonType { ty, name, default });
            }
            if self.eat_punct(Punct::Comma) {
                continue;
            }
            self.expect_punct(Punct::Gt)?;
            break;
        }
        Ok(TemplateHeader { params })
    }

    /// Skips a template default argument (stops at `,` or `>` at angle
    /// depth 0).
    fn skip_template_default(&mut self) {
        let mut angle = 0i32;
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return,
                TokenKind::Punct(Punct::Lt) => {
                    angle += 1;
                    self.bump();
                }
                TokenKind::Punct(Punct::Gt) => {
                    if angle == 0 {
                        return;
                    }
                    angle -= 1;
                    self.bump();
                }
                TokenKind::Punct(Punct::Comma) if angle == 0 => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Parses a class/struct declaration or definition. `in_class` tells
    /// whether we are parsing a nested class (affects default access only
    /// through the caller).
    pub(crate) fn parse_class(
        &mut self,
        template: Option<TemplateHeader>,
        _in_class: bool,
    ) -> Result<Decl> {
        let start = self.span();
        let key = if self.eat_kw("class") {
            ClassKey::Class
        } else {
            self.expect_kw("struct")?;
            ClassKey::Struct
        };
        let (name, _) = self.ident()?;
        // Explicit specialization arguments: `struct V<int> { ... }`.
        let spec_args = if self.check_punct(Punct::Lt) {
            let from = self.save();
            self.parse_template_args()?;
            Some(self.render_range(from, self.save()))
        } else {
            None
        };
        // Forward declaration.
        if self.check_punct(Punct::Semi) {
            let end = self.bump().span;
            return Ok(Decl::new(
                DeclKind::Class(ClassDecl {
                    key,
                    name,
                    template,
                    spec_args,
                    bases: vec![],
                    members: vec![],
                    is_definition: false,
                    is_explicit_instantiation: false,
                }),
                start.to(end),
            ));
        }
        // `final`
        self.eat_kw("final");
        // Bases.
        let mut bases = Vec::new();
        if self.eat_punct(Punct::Colon) {
            loop {
                let access = if self.eat_kw("public") {
                    AccessSpecifier::Public
                } else if self.eat_kw("protected") {
                    AccessSpecifier::Protected
                } else if self.eat_kw("private") {
                    AccessSpecifier::Private
                } else if key == ClassKey::Struct {
                    AccessSpecifier::Public
                } else {
                    AccessSpecifier::Private
                };
                self.eat_kw("virtual");
                let base = self.parse_type()?;
                bases.push((access, base));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let mut access = match key {
            ClassKey::Class => AccessSpecifier::Private,
            ClassKey::Struct => AccessSpecifier::Public,
        };
        let mut members = Vec::new();
        while !self.check_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated class body"));
            }
            // Access labels.
            if self.check_kw("public") && self.peek_at(1).kind.is_punct(Punct::Colon) {
                self.bump();
                self.bump();
                access = AccessSpecifier::Public;
                continue;
            }
            if self.check_kw("protected") && self.peek_at(1).kind.is_punct(Punct::Colon) {
                self.bump();
                self.bump();
                access = AccessSpecifier::Protected;
                continue;
            }
            if self.check_kw("private") && self.peek_at(1).kind.is_punct(Punct::Colon) {
                self.bump();
                self.bump();
                access = AccessSpecifier::Private;
                continue;
            }
            // friend declarations: skip to `;`.
            if self.check_kw("friend") {
                self.skip_until_top_level(&[Punct::Semi]);
                self.eat_punct(Punct::Semi);
                continue;
            }
            let decl = self.parse_member(&name)?;
            members.push(Member { access, decl });
        }
        self.expect_punct(Punct::RBrace)?;
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Decl::new(
            DeclKind::Class(ClassDecl {
                key,
                name,
                template,
                spec_args,
                bases,
                members,
                is_definition: true,
                is_explicit_instantiation: false,
            }),
            start.to(end),
        ))
    }

    /// Parses one class member.
    fn parse_member(&mut self, class_name: &str) -> Result<Decl> {
        let start = self.span();
        if self.check_kw("template") {
            return self.parse_templated_decl();
        }
        if self.check_kw("using") {
            return self.parse_using();
        }
        if self.check_kw("typedef") {
            self.bump();
            let target = self.parse_type()?;
            let (name, _) = self.ident()?;
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Decl::new(
                DeclKind::Alias(AliasDecl {
                    name,
                    template: None,
                    target,
                }),
                start.to(end),
            ));
        }
        if self.check_kw("class") || self.check_kw("struct") {
            return self.parse_class(None, true);
        }
        if self.check_kw("enum") {
            return self.parse_enum();
        }
        if self.check_kw("static_assert") {
            self.bump();
            self.expect_punct(Punct::LParen)?;
            self.skip_until_top_level(&[]);
            self.expect_punct(Punct::RParen)?;
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Decl::new(DeclKind::StaticAssert, start.to(end)));
        }
        // Constructor: `ClassName(...)`.
        if self.peek().kind.is_ident(class_name) && self.peek_at(1).kind.is_punct(Punct::LParen) {
            self.bump();
            return self.parse_function_tail(
                FunctionName::Constructor(class_name.to_string()),
                None,
                None,
                FunctionSpecs::default(),
                start,
            );
        }
        // explicit Constructor.
        if self.check_kw("explicit") {
            self.bump();
            let specs = FunctionSpecs {
                is_explicit: true,
                ..FunctionSpecs::default()
            };
            if self.peek().kind.is_ident(class_name) {
                self.bump();
                return self.parse_function_tail(
                    FunctionName::Constructor(class_name.to_string()),
                    None,
                    None,
                    specs,
                    start,
                );
            }
            return Err(self.err("expected constructor after `explicit`"));
        }
        // Destructor: `~ClassName()`.
        if self.check_punct(Punct::Tilde) {
            self.bump();
            let (n, _) = self.ident()?;
            return self.parse_function_tail(
                FunctionName::Destructor(n),
                None,
                None,
                FunctionSpecs::default(),
                start,
            );
        }
        self.parse_function_or_variable(None)
    }

    /// Parses `enum [class] Name [: type] { enumerators };`
    fn parse_enum(&mut self) -> Result<Decl> {
        let start = self.expect_kw("enum")?;
        let scoped = self.eat_kw("class") || self.eat_kw("struct");
        let name = match &self.peek().kind {
            TokenKind::Ident(n) => {
                let n = n.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        let underlying = if self.eat_punct(Punct::Colon) {
            Some(self.parse_type()?)
        } else {
            None
        };
        let mut enumerators = Vec::new();
        if self.eat_punct(Punct::LBrace) {
            while !self.check_punct(Punct::RBrace) {
                let (ename, _) = self.ident()?;
                let value = if self.eat_punct(Punct::Eq) {
                    let from = self.save();
                    self.skip_until_top_level(&[Punct::Comma]);
                    Some(self.render_range(from, self.save()))
                } else {
                    None
                };
                enumerators.push(Enumerator { name: ename, value });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
        }
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Decl::new(
            DeclKind::Enum(EnumDecl {
                name,
                scoped,
                underlying,
                enumerators,
            }),
            start.to(end),
        ))
    }

    /// Parses a function or variable declaration starting at the specifier
    /// sequence (after any template header, which is passed in).
    pub(crate) fn parse_function_or_variable(
        &mut self,
        template: Option<TemplateHeader>,
    ) -> Result<Decl> {
        let start = self.span();
        let mut specs = FunctionSpecs::default();
        let mut is_static = false;
        let mut is_constexpr = false;
        loop {
            if self.eat_kw("inline") {
                specs.is_inline = true;
            } else if self.eat_kw("static") {
                specs.is_static = true;
                is_static = true;
            } else if self.eat_kw("virtual") {
                specs.is_virtual = true;
            } else if self.eat_kw("constexpr") {
                specs.is_constexpr = true;
                is_constexpr = true;
            } else if self.eat_kw("extern") {
                // storage-class only; ignored
            } else {
                break;
            }
        }
        // Destructor with leading specifiers: `virtual ~Base() = default;`.
        if self.check_punct(Punct::Tilde) {
            self.bump();
            let (n, _) = self.ident()?;
            return self.parse_function_tail(
                FunctionName::Destructor(n),
                None,
                template,
                specs,
                start,
            );
        }
        let ret = self.parse_type()?;
        // Declarator: optionally qualified name, `operator` forms.
        let (qualifier, fname) = self.parse_declarator_name()?;
        if self.check_punct(Punct::LParen) {
            let mut full_specs = specs;
            full_specs.is_static = specs.is_static;
            return self
                .parse_function_tail(fname, qualifier, template, full_specs, start)
                .map(|mut d| {
                    if let DeclKind::Function(f) = &mut d.kind {
                        // A trailing return type (`auto f() -> int`) wins
                        // over the leading `auto`.
                        if f.ret.is_none() {
                            f.ret = Some(ret.clone());
                        }
                    }
                    d
                });
        }
        // Variable.
        let name = match fname {
            FunctionName::Ident(n) => n,
            other => return Err(self.err(format!("unexpected declarator `{other}`"))),
        };
        let mut ty = ret;
        while self.check_punct(Punct::LBracket) {
            self.bump();
            let len = match &self.peek().kind {
                TokenKind::Int(v) => {
                    let v = *v as u64;
                    self.bump();
                    Some(v)
                }
                _ => None,
            };
            self.expect_punct(Punct::RBracket)?;
            ty = crate::ast::Type::new(crate::ast::TypeKind::Array(Box::new(ty), len));
        }
        let (init, brace_init) = if self.eat_punct(Punct::Eq) {
            (Some(self.parse_expr()?), false)
        } else if self.check_punct(Punct::LBrace) {
            let bstart = self.span();
            self.bump();
            let args = self.parse_call_args()?;
            let bend = self.expect_punct(Punct::RBrace)?;
            (
                Some(crate::ast::Expr::new(
                    crate::ast::ExprKind::BraceInit {
                        ty: Some(ty.clone()),
                        args,
                    },
                    bstart.to(bend),
                )),
                true,
            )
        } else {
            (None, false)
        };
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Decl::new(
            DeclKind::Variable(crate::ast::VarDecl {
                ty,
                name,
                is_static,
                is_constexpr,
                init,
                brace_init,
            }),
            start.to(end),
        ))
    }

    /// Parses the declarator name of a function/variable: an optionally
    /// `::`-qualified path whose last component may be `operator...`.
    /// Returns `(qualifier, name)`.
    fn parse_declarator_name(&mut self) -> Result<(Option<QualName>, FunctionName)> {
        let mut segs: Vec<crate::ast::NameSeg> = Vec::new();
        loop {
            if self.check_kw("operator") {
                self.bump();
                let op = self.parse_operator_token()?;
                let qualifier = if segs.is_empty() {
                    None
                } else {
                    Some(QualName {
                        global: false,
                        segs,
                    })
                };
                let name = if op == "()" {
                    FunctionName::CallOperator
                } else {
                    FunctionName::Operator(op)
                };
                return Ok((qualifier, name));
            }
            if self.check_punct(Punct::Tilde) {
                self.bump();
                let (n, _) = self.ident()?;
                let qualifier = if segs.is_empty() {
                    None
                } else {
                    Some(QualName {
                        global: false,
                        segs,
                    })
                };
                return Ok((qualifier, FunctionName::Destructor(n)));
            }
            let (ident, _) = self.ident()?;
            // A qualifying segment may carry template args:
            // `View<T>::method`.
            let args = if self.check_punct(Punct::Lt) && !self.peek_at(1).kind.is_punct(Punct::Lt) {
                let save = self.save();
                match self.parse_template_args() {
                    Ok(a)
                        if self.check_punct(Punct::ColonColon)
                            || self.check_punct(Punct::LParen)
                            || self.check_punct(Punct::Semi) =>
                    {
                        Some(a)
                    }
                    _ => {
                        self.restore(save);
                        None
                    }
                }
            } else {
                None
            };
            segs.push(crate::ast::NameSeg { ident, args });
            if self.check_punct(Punct::ColonColon) {
                self.bump();
                continue;
            }
            let last = segs.pop().expect("at least one segment parsed");
            let qualifier = if segs.is_empty() {
                None
            } else {
                Some(QualName {
                    global: false,
                    segs,
                })
            };
            // Explicit instantiation/specialization of a function keeps its
            // template args in the name; YALLA renders them back verbatim.
            let name = if let Some(args) = last.args {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                FunctionName::Ident(format!("{}<{}>", last.ident, rendered.join(", ")))
            } else {
                FunctionName::Ident(last.ident)
            };
            return Ok((qualifier, name));
        }
    }

    /// Parses the token(s) after `operator`: `()`, `[]`, or a punctuator.
    fn parse_operator_token(&mut self) -> Result<String> {
        if self.check_punct(Punct::LParen) && self.peek_at(1).kind.is_punct(Punct::RParen) {
            self.bump();
            self.bump();
            return Ok("()".into());
        }
        if self.check_punct(Punct::LBracket) && self.peek_at(1).kind.is_punct(Punct::RBracket) {
            self.bump();
            self.bump();
            return Ok("[]".into());
        }
        match &self.peek().kind {
            TokenKind::Punct(p) => {
                let s = p.as_str().to_string();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err("expected operator symbol after `operator`")),
        }
    }

    /// Parses a function from its parameter list onward. `start` is the
    /// span where the whole declaration began.
    fn parse_function_tail(
        &mut self,
        name: FunctionName,
        qualifier: Option<QualName>,
        template: Option<TemplateHeader>,
        mut specs: FunctionSpecs,
        start: crate::loc::Span,
    ) -> Result<Decl> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.check_punct(Punct::RParen) {
            loop {
                if self.eat_punct(Punct::Ellipsis) {
                    break;
                }
                let ty = self.parse_type()?;
                let pname = match &self.peek().kind {
                    TokenKind::Ident(n) if crate::parse::types_allows_decl_name(n) => {
                        let n = n.clone();
                        self.bump();
                        n
                    }
                    _ => String::new(),
                };
                let default = if self.eat_punct(Punct::Eq) {
                    let from = self.save();
                    self.skip_until_top_level(&[Punct::Comma]);
                    Some(self.render_range(from, self.save()))
                } else {
                    None
                };
                params.push(Param {
                    ty,
                    name: pname,
                    default,
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        // Suffix specifiers.
        loop {
            if self.eat_kw("const") {
                specs.is_const = true;
            } else if self.eat_kw("noexcept") {
                specs.is_noexcept = true;
                if self.check_punct(Punct::LParen) {
                    self.bump();
                    self.skip_until_top_level(&[]);
                    self.expect_punct(Punct::RParen)?;
                }
            } else if self.eat_kw("override") {
                specs.is_override = true;
            } else if self.eat_kw("final") {
                // ignored
            } else {
                break;
            }
        }
        // Trailing return type.
        let trailing_ret = if self.eat_punct(Punct::Arrow) {
            Some(self.parse_type()?)
        } else {
            None
        };
        // `= default`, `= delete`, `= 0`.
        if self.eat_punct(Punct::Eq) {
            if self.eat_kw("default") {
                specs.is_defaulted = true;
            } else if self.eat_kw("delete") {
                specs.is_deleted = true;
            } else if matches!(self.peek().kind, TokenKind::Int(0)) {
                self.bump(); // pure virtual
            } else {
                return Err(self.err("expected `default`, `delete`, or `0` after `=`"));
            }
            let end = self.expect_punct(Punct::Semi)?;
            return Ok(Decl::new(
                DeclKind::Function(FunctionDecl {
                    name,
                    qualifier,
                    template,
                    ret: trailing_ret,
                    params,
                    specs,
                    body: None,
                }),
                start.to(end),
            ));
        }
        // Constructor initializer list: consumed, not modelled.
        if self.check_punct(Punct::Colon) {
            self.bump();
            // Skip `name(expr), name{expr}, ...` up to the body brace.
            loop {
                let _ = self.ident()?;
                if self.check_punct(Punct::LParen) {
                    self.bump();
                    self.skip_until_top_level(&[]);
                    self.expect_punct(Punct::RParen)?;
                } else if self.check_punct(Punct::LBrace) {
                    self.bump();
                    self.skip_until_top_level(&[]);
                    self.expect_punct(Punct::RBrace)?;
                }
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        // Body or `;`.
        if self.check_punct(Punct::LBrace) {
            let body = self.parse_block()?;
            let span = start.to(body.span);
            return Ok(Decl::new(
                DeclKind::Function(FunctionDecl {
                    name,
                    qualifier,
                    template,
                    ret: trailing_ret,
                    params,
                    specs,
                    body: Some(body),
                }),
                span,
            ));
        }
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Decl::new(
            DeclKind::Function(FunctionDecl {
                name,
                qualifier,
                template,
                ret: trailing_ret,
                params,
                specs,
                body: None,
            }),
            start.to(end),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;

    fn first(src: &str) -> Decl {
        parse_str(src).unwrap().decls.remove(0)
    }

    trait Remove0 {
        fn remove(self, i: usize) -> Decl;
    }
    impl Remove0 for Vec<Decl> {
        fn remove(mut self, i: usize) -> Decl {
            Vec::remove(&mut self, i)
        }
    }

    #[test]
    fn simple_function_definition() {
        let d = first("int add(int x, int y) { return x + y; }");
        match d.kind {
            DeclKind::Function(f) => {
                assert_eq!(f.name.spelling(), "add");
                assert_eq!(f.params.len(), 2);
                assert!(f.is_definition());
                assert_eq!(f.ret.unwrap().to_string(), "int");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn function_template_from_figure_2() {
        let d = first("template<typename T>\nT g_add(T x, T y) {\n  return x + y;\n}");
        match d.kind {
            DeclKind::Function(f) => {
                assert_eq!(f.template.unwrap().params.len(), 1);
                assert_eq!(f.name.spelling(), "g_add");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn forward_declaration_of_template_function() {
        let d = first("template<typename T>\nT g_add(T x, T y);");
        match d.kind {
            DeclKind::Function(f) => assert!(!f.is_definition()),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn explicit_instantiation_of_function() {
        let d = first("template int g_add<int>(int x, int y);");
        match d.kind {
            DeclKind::Function(f) => {
                assert!(f.specs.is_explicit_instantiation);
                assert_eq!(f.name.spelling(), "g_add<int>");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn explicit_specialization_definition() {
        let d = first("template<> int g_add<int>(int x, int y) { return x + y; }");
        match d.kind {
            DeclKind::Function(f) => {
                let t = f.template.unwrap();
                assert!(t.params.is_empty());
                assert_eq!(f.name.spelling(), "g_add<int>");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn explicit_class_instantiation() {
        let d = first("template class View<int, LayoutRight>;");
        match d.kind {
            DeclKind::Class(c) => {
                assert!(c.is_explicit_instantiation);
                assert_eq!(c.name, "View");
                assert_eq!(c.spec_args.as_deref(), Some("<int, LayoutRight>"));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn namespace_with_members() {
        let d = first("namespace Kokkos { class OpenMP; class LayoutRight; }");
        match d.kind {
            DeclKind::Namespace(ns) => {
                assert_eq!(ns.name, "Kokkos");
                assert_eq!(ns.decls.len(), 2);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn nested_namespace_sugar() {
        let d = first("namespace A::B { int x; }");
        match d.kind {
            DeclKind::Namespace(ns) => {
                assert_eq!(ns.name, "A");
                match &ns.decls[0].kind {
                    DeclKind::Namespace(inner) => assert_eq!(inner.name, "B"),
                    other => panic!("bad parse: {other:?}"),
                }
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn functor_struct_from_figure_3() {
        let src = "struct add_y {\n  int y;\n  Kokkos::View<int**, LayoutRight> x;\n  void operator()(member_t &m);\n};";
        let d = first(src);
        match d.kind {
            DeclKind::Class(c) => {
                assert_eq!(c.name, "add_y");
                assert!(c.is_definition);
                assert_eq!(c.fields().count(), 2);
                let (_, f) = c.methods().next().unwrap();
                assert_eq!(f.name, FunctionName::CallOperator);
                assert!(!f.is_definition());
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn out_of_line_method_definition() {
        let d = first("void add_y::operator()(member_t &m) { int j = m.league_rank(); }");
        match d.kind {
            DeclKind::Function(f) => {
                assert_eq!(f.qualifier.as_ref().unwrap().key(), "add_y");
                assert_eq!(f.name, FunctionName::CallOperator);
                assert!(f.is_definition());
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn class_template_with_members() {
        let src = "template <class DataType, class Layout = LayoutRight>\nclass View {\npublic:\n  View();\n  ~View();\n  int extent(int dim) const;\n  DataType& operator()(int i, int j) const;\nprivate:\n  int dims_[8];\n};";
        let d = first(src);
        match d.kind {
            DeclKind::Class(c) => {
                assert_eq!(c.name, "View");
                let th = c.template.as_ref().unwrap();
                assert_eq!(th.params.len(), 2);
                assert_eq!(c.methods().count(), 4);
                let names: Vec<&str> = c
                    .methods()
                    .map(|(_, f)| f.name.spelling().as_str())
                    .collect();
                assert!(names.contains(&"View"));
                assert!(names.contains(&"~View"));
                assert!(names.contains(&"operator()"));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn access_specifiers_apply() {
        let src = "class C { int a; public: int b; protected: int c; };";
        let d = first(src);
        match d.kind {
            DeclKind::Class(c) => {
                let accesses: Vec<AccessSpecifier> = c.members.iter().map(|m| m.access).collect();
                assert_eq!(
                    accesses,
                    vec![
                        AccessSpecifier::Private,
                        AccessSpecifier::Public,
                        AccessSpecifier::Protected
                    ]
                );
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn type_aliases() {
        let tu = parse_str(
            "using sp_t = Kokkos::OpenMP;\nusing member_t = Kokkos::TeamPolicy<sp_t>::member_type;\ntypedef int myint;\nusing Kokkos::LayoutRight;\nusing namespace std;",
        )
        .unwrap();
        assert_eq!(tu.decls.len(), 5);
        assert!(matches!(tu.decls[0].kind, DeclKind::Alias(_)));
        match &tu.decls[1].kind {
            DeclKind::Alias(a) => {
                assert_eq!(a.name, "member_t");
                assert_eq!(
                    a.target.core_name().unwrap().key(),
                    "Kokkos::TeamPolicy::member_type"
                );
            }
            other => panic!("bad parse: {other:?}"),
        }
        assert!(matches!(tu.decls[2].kind, DeclKind::Alias(_)));
        assert!(matches!(tu.decls[3].kind, DeclKind::UsingDecl(_)));
        assert!(matches!(tu.decls[4].kind, DeclKind::UsingNamespace(_)));
    }

    #[test]
    fn alias_template() {
        let d = first("template <typename T> using Vec = std::vector<T>;");
        match d.kind {
            DeclKind::Alias(a) => {
                assert_eq!(a.name, "Vec");
                assert!(a.template.is_some());
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn enums() {
        let d = first("enum class Layout : int { Left, Right = 4, Stride };");
        match d.kind {
            DeclKind::Enum(e) => {
                assert!(e.scoped);
                assert_eq!(e.enumerators.len(), 3);
                assert_eq!(e.enumerators[1].value.as_deref(), Some("4"));
                assert_eq!(e.underlying.unwrap().to_string(), "int");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn global_variables() {
        let tu = parse_str("int g = 5;\nstatic const double PI = 3.14159;\nKokkos::View<int> v;")
            .unwrap();
        assert_eq!(tu.decls.len(), 3);
        match &tu.decls[1].kind {
            DeclKind::Variable(v) => {
                assert!(v.is_static);
                assert!(v.ty.is_const);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn virtual_and_pure_virtual() {
        let src = "class Base { public: virtual void run() = 0; virtual ~Base() = default; };";
        let d = first(src);
        match d.kind {
            DeclKind::Class(c) => {
                let methods: Vec<_> = c.methods().collect();
                assert!(methods[0].1.specs.is_virtual);
                assert!(methods[0].1.body.is_none());
                assert!(methods[1].1.specs.is_defaulted);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn constructor_with_init_list() {
        let src =
            "class P { public: P(int x) : x_(x), y_{0} { run(); } private: int x_; int y_; };";
        let d = first(src);
        match d.kind {
            DeclKind::Class(c) => {
                let (_, ctor) = c.methods().next().unwrap();
                assert_eq!(ctor.name, FunctionName::Constructor("P".into()));
                assert!(ctor.is_definition());
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn inheritance() {
        let d = first("class D : public B, private C { };");
        match d.kind {
            DeclKind::Class(c) => {
                assert_eq!(c.bases.len(), 2);
                assert_eq!(c.bases[0].0, AccessSpecifier::Public);
                assert_eq!(c.bases[1].0, AccessSpecifier::Private);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn operator_overloads() {
        let src = "struct V { V operator+(const V& o) const; int& operator[](int i); bool operator==(const V& o) const; };";
        let d = first(src);
        match d.kind {
            DeclKind::Class(c) => {
                let names: Vec<&str> = c
                    .methods()
                    .map(|(_, f)| f.name.spelling().as_str())
                    .collect();
                assert_eq!(names, vec!["operator+", "operator[]", "operator=="]);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn default_arguments() {
        let d = first("void f(int a, double b = 3.5, const char* c = \"hi\");");
        match d.kind {
            DeclKind::Function(f) => {
                assert_eq!(f.params[1].default.as_deref(), Some("3.5"));
                assert!(f.params[2].default.as_deref().unwrap().contains("hi"));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn variadic_function() {
        let d = first("int printf(const char* fmt, ...);");
        match d.kind {
            DeclKind::Function(f) => assert_eq!(f.params.len(), 1),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn trailing_return_type() {
        let d = first("auto get() -> int { return 3; }");
        match d.kind {
            DeclKind::Function(f) => {
                assert_eq!(f.ret.unwrap().to_string(), "int");
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn static_assert_top_level() {
        let d = first("static_assert(sizeof(int) == 4, \"size\");");
        assert!(matches!(d.kind, DeclKind::StaticAssert));
    }

    #[test]
    fn whole_figure_3_parses() {
        let src = r#"
struct add_y {
  int y;
  Kokkos::View<int**, LayoutRight> x;
  void operator()(member_t &m);
};
void add_y::operator()(member_t &m) {
  int j = m.league_rank();
  Kokkos::parallel_for(
    Kokkos::TeamThreadRange(m, 5),
    [&](int i) { x(j, i) += y; });
}
"#;
        let tu = parse_str(src).unwrap();
        assert_eq!(tu.decls.len(), 2);
    }

    #[test]
    fn nested_classes() {
        let src =
            "class TeamPolicy { public: class member_type { public: int league_rank() const; }; };";
        let d = first(src);
        match d.kind {
            DeclKind::Class(c) => {
                let nested = c
                    .members
                    .iter()
                    .find_map(|m| match &m.decl.kind {
                        DeclKind::Class(n) => Some(n),
                        _ => None,
                    })
                    .unwrap();
                assert_eq!(nested.name, "member_type");
                assert_eq!(nested.methods().count(), 1);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn main_function_with_template_call() {
        let tu = parse_str("int main() { g_add<int>(1, 2); return 0; }").unwrap();
        assert_eq!(tu.decls.len(), 1);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse_str("int f( {").is_err());
        assert!(parse_str("class {").is_err());
        assert!(parse_str("}}}}").is_err());
        assert!(parse_str("template second").is_err());
    }
}
