//! Pretty printer: renders AST nodes back to compilable C++ text.
//!
//! YALLA's generated artifacts (the lightweight header, the wrappers file,
//! functors replacing lambdas) are built as AST fragments and rendered with
//! this printer. The output is verified by re-parsing in the engine's
//! validation step, so the printer and parser form a round-trip pair.

use std::fmt::Write as _;

use crate::ast::{
    AccessSpecifier, Block, Decl, DeclKind, Expr, ExprKind, ForInit, FunctionDecl, LambdaCapture,
    Stmt, StmtKind, TranslationUnit, UnaryOp, VarDecl,
};

/// Renders a whole translation unit.
pub fn print_tu(tu: &TranslationUnit) -> String {
    let mut p = Printer::new();
    for d in &tu.decls {
        p.decl(d);
    }
    p.finish()
}

/// Renders a single declaration.
pub fn print_decl(decl: &Decl) -> String {
    let mut p = Printer::new();
    p.decl(decl);
    p.finish()
}

/// Renders a single expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr);
    p.finish()
}

/// Renders a single statement.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(stmt);
    p.finish()
}

/// The pretty-printing state: an output buffer plus indentation level.
#[derive(Debug, Default)]
pub struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    /// A fresh printer.
    pub fn new() -> Self {
        Printer::default()
    }

    /// Consumes the printer and returns the rendered text.
    pub fn finish(self) -> String {
        self.out
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    fn close(&mut self, text: &str) {
        self.indent = self.indent.saturating_sub(1);
        self.line(text);
    }

    /// Prints a declaration.
    pub fn decl(&mut self, decl: &Decl) {
        match &decl.kind {
            DeclKind::Namespace(ns) => {
                if ns.name.is_empty() {
                    self.open("namespace {");
                } else {
                    let kw = if ns.is_inline {
                        "inline namespace"
                    } else {
                        "namespace"
                    };
                    self.open(&format!("{kw} {} {{", ns.name));
                }
                for d in &ns.decls {
                    self.decl(d);
                }
                self.close(&format!("}} // namespace {}", ns.name));
            }
            DeclKind::Class(c) => {
                if let Some(t) = &c.template {
                    self.line(&t.render());
                }
                let mut head = String::new();
                if c.is_explicit_instantiation {
                    head.push_str("template ");
                }
                let _ = write!(head, "{} {}", c.key, c.name);
                if let Some(args) = &c.spec_args {
                    head.push_str(args);
                }
                if !c.is_definition {
                    head.push(';');
                    self.line(&head);
                    return;
                }
                if !c.bases.is_empty() {
                    head.push_str(" : ");
                    for (i, (acc, base)) in c.bases.iter().enumerate() {
                        if i > 0 {
                            head.push_str(", ");
                        }
                        let _ = write!(head, "{} {base}", access_str(*acc));
                    }
                }
                head.push_str(" {");
                self.open(&head);
                let mut current = match c.key {
                    crate::ast::ClassKey::Class => AccessSpecifier::Private,
                    crate::ast::ClassKey::Struct => AccessSpecifier::Public,
                };
                for m in &c.members {
                    if m.access != current {
                        self.indent -= 1;
                        self.line(&format!("{}:", access_str(m.access)));
                        self.indent += 1;
                        current = m.access;
                    }
                    self.decl(&m.decl);
                }
                self.close("};");
            }
            DeclKind::Enum(e) => {
                let mut head = String::from("enum ");
                if e.scoped {
                    head.push_str("class ");
                }
                head.push_str(&e.name);
                if let Some(u) = &e.underlying {
                    let _ = write!(head, " : {u}");
                }
                head.push_str(" {");
                self.open(&head);
                for en in &e.enumerators {
                    match &en.value {
                        Some(v) => self.line(&format!("{} = {v},", en.name)),
                        None => self.line(&format!("{},", en.name)),
                    }
                }
                self.close("};");
            }
            DeclKind::Alias(a) => {
                if let Some(t) = &a.template {
                    self.line(&t.render());
                }
                self.line(&format!("using {} = {};", a.name, a.target));
            }
            DeclKind::UsingDecl(n) => self.line(&format!("using {n};")),
            DeclKind::UsingNamespace(n) => self.line(&format!("using namespace {n};")),
            DeclKind::Function(f) => self.function(f),
            DeclKind::Variable(v) => {
                let mut s = self.var_text(v);
                s.push(';');
                self.line(&s);
            }
            DeclKind::StaticAssert => self.line("static_assert(true, \"\");"),
            DeclKind::Access(a) => {
                self.indent = self.indent.saturating_sub(1);
                self.line(&format!("{}:", access_str(*a)));
                self.indent += 1;
            }
        }
    }

    fn function(&mut self, f: &FunctionDecl) {
        if let Some(t) = &f.template {
            self.line(&t.render());
        }
        let mut head = String::new();
        if f.specs.is_explicit_instantiation {
            head.push_str("template ");
        }
        if f.specs.is_static {
            head.push_str("static ");
        }
        if f.specs.is_virtual {
            head.push_str("virtual ");
        }
        if f.specs.is_inline {
            head.push_str("inline ");
        }
        if f.specs.is_constexpr {
            head.push_str("constexpr ");
        }
        if f.specs.is_explicit {
            head.push_str("explicit ");
        }
        if let Some(ret) = &f.ret {
            let _ = write!(head, "{ret} ");
        }
        if let Some(q) = &f.qualifier {
            let _ = write!(head, "{q}::");
        }
        let _ = write!(head, "{}(", f.name.spelling());
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                head.push_str(", ");
            }
            let _ = write!(head, "{}", p.ty);
            if !p.name.is_empty() {
                let _ = write!(head, " {}", p.name);
            }
            if let Some(d) = &p.default {
                let _ = write!(head, " = {d}");
            }
        }
        head.push(')');
        if f.specs.is_const {
            head.push_str(" const");
        }
        if f.specs.is_noexcept {
            head.push_str(" noexcept");
        }
        if f.specs.is_override {
            head.push_str(" override");
        }
        if f.specs.is_defaulted {
            head.push_str(" = default;");
            self.line(&head);
            return;
        }
        if f.specs.is_deleted {
            head.push_str(" = delete;");
            self.line(&head);
            return;
        }
        match &f.body {
            Some(body) => {
                head.push_str(" {");
                self.open(&head);
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close("}");
            }
            None => {
                head.push(';');
                self.line(&head);
            }
        }
    }

    fn var_text(&mut self, v: &VarDecl) -> String {
        let mut s = String::new();
        if v.is_static {
            s.push_str("static ");
        }
        if v.is_constexpr {
            s.push_str("constexpr ");
        }
        // Arrays render as `T name[n]`.
        if let crate::ast::TypeKind::Array(inner, len) = &v.ty.kind {
            let _ = write!(s, "{inner} {}", v.name);
            match len {
                Some(n) => {
                    let _ = write!(s, "[{n}]");
                }
                None => s.push_str("[]"),
            }
        } else {
            let _ = write!(s, "{} {}", v.ty, v.name);
        }
        if let Some(init) = &v.init {
            if v.brace_init {
                if let ExprKind::BraceInit { args, .. } = &init.kind {
                    s.push('{');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&expr_text(a));
                    }
                    s.push('}');
                    return s;
                }
            }
            let _ = write!(s, " = {}", expr_text(init));
        }
        s
    }

    /// Prints a statement.
    pub fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Expr(e) => self.line(&format!("{};", expr_text(e))),
            StmtKind::Decl(v) => {
                let mut s = self.var_text(v);
                s.push(';');
                self.line(&s);
            }
            StmtKind::Block(b) => {
                self.open("{");
                for s in &b.stmts {
                    self.stmt(s);
                }
                self.close("}");
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.open(&format!("if ({}) {{", expr_text(cond)));
                self.stmt_unwrapped(then_branch);
                if let Some(e) = else_branch {
                    self.close("} else {");
                    self.indent += 1;
                    self.stmt_unwrapped(e);
                }
                self.close("}");
            }
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => {
                let init_s = match init.as_ref() {
                    ForInit::Decl(v) => self.var_text(v),
                    ForInit::Expr(e) => expr_text(e),
                    ForInit::Empty => String::new(),
                };
                let cond_s = cond.as_ref().map(expr_text).unwrap_or_default();
                let inc_s = inc.as_ref().map(expr_text).unwrap_or_default();
                self.open(&format!("for ({init_s}; {cond_s}; {inc_s}) {{"));
                self.stmt_unwrapped(body);
                self.close("}");
            }
            StmtKind::RangeFor { var, range, body } => {
                self.open(&format!(
                    "for ({} {} : {}) {{",
                    var.ty,
                    var.name,
                    expr_text(range)
                ));
                self.stmt_unwrapped(body);
                self.close("}");
            }
            StmtKind::While { cond, body } => {
                self.open(&format!("while ({}) {{", expr_text(cond)));
                self.stmt_unwrapped(body);
                self.close("}");
            }
            StmtKind::DoWhile { body, cond } => {
                self.open("do {");
                self.stmt_unwrapped(body);
                self.close(&format!("}} while ({});", expr_text(cond)));
            }
            StmtKind::Return(Some(e)) => self.line(&format!("return {};", expr_text(e))),
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Empty => self.line(";"),
        }
    }

    /// Prints a statement, flattening a block body (used inside `if`/`for`
    /// which already printed their own braces).
    fn stmt_unwrapped(&mut self, stmt: &Stmt) {
        if let StmtKind::Block(b) = &stmt.kind {
            for s in &b.stmts {
                self.stmt(s);
            }
        } else {
            self.stmt(stmt);
        }
    }

    /// Prints an expression (single line, no trailing newline handling).
    pub fn expr(&mut self, expr: &Expr) {
        let text = expr_text(expr);
        self.out.push_str(&text);
    }
}

fn access_str(a: AccessSpecifier) -> &'static str {
    match a {
        AccessSpecifier::Public => "public",
        AccessSpecifier::Protected => "protected",
        AccessSpecifier::Private => "private",
    }
}

fn block_text(b: &Block) -> String {
    let mut s = String::from("{ ");
    for st in &b.stmts {
        let mut p = Printer::new();
        p.stmt(st);
        let rendered = p.finish();
        s.push_str(rendered.trim_end_matches('\n').trim_start());
        s.push(' ');
    }
    s.push('}');
    s
}

/// Renders an expression as a single-line string.
pub fn expr_text(expr: &Expr) -> String {
    match &expr.kind {
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Float(v) => {
            let s = v.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        ExprKind::Char(c) => format!("'{c}'"),
        ExprKind::Null => "nullptr".into(),
        ExprKind::This => "this".into(),
        ExprKind::Name(n) => n.to_string(),
        ExprKind::Unary { op, expr } => match op {
            UnaryOp::PostInc => format!("{}++", expr_text(expr)),
            UnaryOp::PostDec => format!("{}--", expr_text(expr)),
            _ => format!("{}{}", op.as_str(), expr_text(expr)),
        },
        ExprKind::Binary { op, lhs, rhs } => {
            format!("{} {} {}", expr_text(lhs), op.as_str(), expr_text(rhs))
        }
        ExprKind::Conditional {
            cond,
            then_expr,
            else_expr,
        } => format!(
            "{} ? {} : {}",
            expr_text(cond),
            expr_text(then_expr),
            expr_text(else_expr)
        ),
        ExprKind::Call { callee, args } => {
            let args_s: Vec<String> = args.iter().map(expr_text).collect();
            format!("{}({})", expr_text(callee), args_s.join(", "))
        }
        ExprKind::Member {
            base,
            arrow,
            member,
        } => {
            format!(
                "{}{}{member}",
                expr_text(base),
                if *arrow { "->" } else { "." }
            )
        }
        ExprKind::Index { base, index } => {
            format!("{}[{}]", expr_text(base), expr_text(index))
        }
        ExprKind::Lambda(l) => {
            let caps: Vec<String> = l
                .captures
                .iter()
                .map(|c| match c {
                    LambdaCapture::AllByRef => "&".to_string(),
                    LambdaCapture::AllByValue => "=".to_string(),
                    LambdaCapture::ByValue(n) => n.clone(),
                    LambdaCapture::ByRef(n) => format!("&{n}"),
                    LambdaCapture::This => "this".to_string(),
                })
                .collect();
            let params: Vec<String> = l
                .params
                .iter()
                .map(|(t, n)| {
                    if n.is_empty() {
                        t.to_string()
                    } else {
                        format!("{t} {n}")
                    }
                })
                .collect();
            format!(
                "[{}]({}) {}",
                caps.join(", "),
                params.join(", "),
                block_text(&l.body)
            )
        }
        ExprKind::New { ty, args } => {
            let args_s: Vec<String> = args.iter().map(expr_text).collect();
            format!("new {ty}({})", args_s.join(", "))
        }
        ExprKind::Delete { array, expr } => {
            format!(
                "delete{} {}",
                if *array { "[]" } else { "" },
                expr_text(expr)
            )
        }
        ExprKind::Cast { kind, ty, expr } => {
            if kind == "functional" {
                format!("{ty}({})", expr_text(expr))
            } else {
                format!("{kind}<{ty}>({})", expr_text(expr))
            }
        }
        ExprKind::BraceInit { ty, args } => {
            let args_s: Vec<String> = args.iter().map(expr_text).collect();
            match ty {
                Some(t) => format!("{t}{{{}}}", args_s.join(", ")),
                None => format!("{{{}}}", args_s.join(", ")),
            }
        }
        ExprKind::Paren(e) => format!("({})", expr_text(e)),
        ExprKind::Sizeof(s) => format!("sizeof({s})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;

    fn round_trip(src: &str) -> String {
        let tu = parse_str(src).unwrap();
        print_tu(&tu)
    }

    fn round_trip_twice_is_stable(src: &str) {
        let once = round_trip(src);
        let tu2 = parse_str(&once)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- emitted:\n{once}"));
        let twice = print_tu(&tu2);
        assert_eq!(once, twice, "print→parse→print must be a fixed point");
    }

    #[test]
    fn function_round_trip() {
        round_trip_twice_is_stable("template<typename T> T g_add(T x, T y) { return x + y; }");
    }

    #[test]
    fn class_round_trip() {
        round_trip_twice_is_stable(
            "namespace Kokkos { template <class T> class View { public: T& operator()(int i, int j) const; int extent_; }; }",
        );
    }

    #[test]
    fn figure_3_round_trip() {
        round_trip_twice_is_stable(
            "struct add_y { int y; Kokkos::View<int**, LayoutRight> x; void operator()(member_t &m); };\nvoid add_y::operator()(member_t &m) { int j = m.league_rank(); Kokkos::parallel_for(Kokkos::TeamThreadRange(m, 5), [&](int i) { x(j, i) += y; }); }",
        );
    }

    #[test]
    fn statements_round_trip() {
        round_trip_twice_is_stable(
            "void f() { int i = 0; for (i = 0; i < 10; i++) { if (i > 5) break; else continue; } while (i) i--; do { i++; } while (i < 3); return; }",
        );
    }

    #[test]
    fn enum_and_alias_round_trip() {
        round_trip_twice_is_stable(
            "enum class Layout : int { Left, Right = 4, };\nusing sp_t = Kokkos::OpenMP;\ntemplate <typename T> using Vec = std::vector<T>;",
        );
    }

    #[test]
    fn forward_declarations_render() {
        let out = round_trip("namespace Kokkos { class OpenMP; template <class T> class View; }");
        assert!(out.contains("class OpenMP;"));
        assert!(out.contains("template <class T>") || out.contains("template <typename T>"));
        assert!(out.contains("class View;"));
    }

    #[test]
    fn explicit_instantiation_renders() {
        let out = round_trip("template int g_add<int>(int x, int y);");
        assert!(
            out.contains("template int g_add<int>(int x, int y);"),
            "{out}"
        );
        round_trip_twice_is_stable("template int g_add<int>(int x, int y);");
    }

    #[test]
    fn access_specifiers_render() {
        let out = round_trip("class C { int a; public: int b; };");
        assert!(out.contains("public:"));
        round_trip_twice_is_stable("class C { int a; public: int b; };");
    }

    #[test]
    fn expr_text_forms() {
        let tu = parse_str("int x = a ? b + 1 : c[2];").unwrap();
        let out = print_tu(&tu);
        assert!(out.contains("int x = a ? b + 1 : c[2];"));
    }

    #[test]
    fn lambda_renders_inline() {
        let out = round_trip("void f() { run([&](int i) { x(j, i) += y; }); }");
        assert!(out.contains("[&](int i) { x(j, i) += y; }"), "{out}");
    }

    #[test]
    fn defaulted_and_deleted() {
        round_trip_twice_is_stable("struct S { S() = default; S(const S& o) = delete; };");
    }

    #[test]
    fn pointer_field_round_trip() {
        // The paper's pointerization output must round-trip.
        round_trip_twice_is_stable(
            "struct add_y { int y; Kokkos::View<int**, Kokkos::LayoutRight>* x; };",
        );
    }
}

#[cfg(test)]
mod expr_render_tests {
    use super::*;
    use crate::parse::parse_str;

    fn rendered(src: &str) -> String {
        print_tu(&parse_str(src).unwrap())
    }

    #[test]
    fn casts_render_distinctly() {
        let out = rendered("int f() { return static_cast<int>(x) + int(y); }");
        assert!(out.contains("static_cast<int>(x)"), "{out}");
        assert!(out.contains("int(y)"), "{out}");
    }

    #[test]
    fn new_and_delete_render() {
        let out = rendered("void f() { auto p = new K::Box(1, 2); delete p; delete[] q; }");
        assert!(out.contains("new K::Box(1, 2)"), "{out}");
        assert!(out.contains("delete p;"), "{out}");
        assert!(out.contains("delete[] q;"), "{out}");
    }

    #[test]
    fn sizeof_and_conditional_render() {
        let out = rendered("int f() { return x ? sizeof(double) : 0; }");
        assert!(out.contains("x ? sizeof(double) : 0"), "{out}");
    }

    #[test]
    fn post_and_pre_increment_render() {
        let out = rendered("void f() { i++; ++j; k--; --m; }");
        assert!(out.contains("i++;"), "{out}");
        assert!(out.contains("++j;"), "{out}");
        assert!(out.contains("k--;"), "{out}");
        assert!(out.contains("--m;"), "{out}");
    }

    #[test]
    fn float_literals_keep_a_decimal_point() {
        let out = rendered("double d = 2.0;");
        // `2` alone would change the C++ type.
        assert!(out.contains("2.0") || out.contains("2."), "{out}");
    }

    #[test]
    fn string_escapes_survive() {
        let out = rendered(r#"const char* s = "a\"b\\c";"#);
        assert!(out.contains(r#""a\"b\\c""#), "{out}");
        // And the output re-parses to the same string.
        let again = rendered(&out);
        assert_eq!(out, again);
    }

    #[test]
    fn do_while_renders_and_round_trips() {
        let src = "void f() { do { step(); } while (more()); }";
        let once = rendered(src);
        assert!(once.contains("do {"), "{once}");
        assert!(once.contains("} while (more());"), "{once}");
        assert_eq!(once, rendered(&once));
    }
}
