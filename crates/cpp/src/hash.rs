//! Content hashing for the incremental pipeline.
//!
//! Everything the session layer memoizes is keyed by 64-bit FNV-1a
//! content hashes: file texts, define sets, include closures, usage
//! fingerprints. FNV is std-only, deterministic across platforms and
//! processes (no random seed), and fast enough that hashing an entire
//! virtual file tree is negligible next to one parse.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// # Example
///
/// ```
/// use yalla_cpp::hash::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_str("kernel.cpp");
/// h.write_u64(7);
/// assert_eq!(h.finish(), {
///     let mut h2 = Fnv64::new();
///     h2.write_str("kernel.cpp");
///     h2.write_u64(7);
///     h2.finish()
/// });
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string, terminated so `"ab" + "c"` and `"a" + "bc"`
    /// produce different hashes.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    /// Feeds a 64-bit value (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes one byte slice.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Hashes one string.
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// Combines two hashes order-sensitively.
pub fn combine(a: u64, b: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

/// Hashes a define set (order-sensitive, like a compiler command line).
pub fn hash_defines(defines: &[(String, String)]) -> u64 {
    let mut h = Fnv64::new();
    for (k, v) in defines {
        h.write_str(k);
        h.write_str(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(hash_str("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b""), FNV_OFFSET);
    }

    #[test]
    fn str_framing_prevents_concatenation_collisions() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn defines_are_order_and_value_sensitive() {
        let d1 = vec![("A".to_string(), "1".to_string())];
        let d2 = vec![("A".to_string(), "2".to_string())];
        let d3 = vec![
            ("A".to_string(), "1".to_string()),
            ("B".to_string(), "1".to_string()),
        ];
        assert_ne!(hash_defines(&d1), hash_defines(&d2));
        assert_ne!(hash_defines(&d1), hash_defines(&d3));
        assert_eq!(hash_defines(&d1), hash_defines(&d1.clone()));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }
}
