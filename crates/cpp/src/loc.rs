//! Source locations: files, byte spans, and line/column mapping.
//!
//! Every token produced by the lexer and every AST node produced by the
//! parser carries a [`Span`] that points back into the *original* file text
//! (not the concatenated translation unit). This is what makes source
//! rewriting possible: YALLA edits user files in place, keyed by byte
//! offsets, exactly like Clang's `Rewriter`.

use std::fmt;

/// Identifier of a file registered in a [`crate::vfs::Vfs`].
///
/// `FileId`s are dense indices; the id `FileId::UNKNOWN` marks synthesized
/// tokens (e.g. produced by macro expansion of a builtin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl FileId {
    /// Sentinel for locations that do not correspond to user-visible text.
    pub const UNKNOWN: FileId = FileId(u32::MAX);
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == FileId::UNKNOWN {
            write!(f, "<unknown>")
        } else {
            write!(f, "file#{}", self.0)
        }
    }
}

/// A half-open byte range `[start, end)` within a single file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// File the span points into.
    pub file: FileId,
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Default for Span {
    /// The default span is [`Span::dummy`].
    fn default() -> Self {
        Span::dummy()
    }
}

impl Span {
    /// Creates a new span. `start` must not exceed `end`.
    pub fn new(file: FileId, start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start after end");
        Span { file, start, end }
    }

    /// A zero-width span with no real location.
    pub fn dummy() -> Self {
        Span {
            file: FileId::UNKNOWN,
            start: 0,
            end: 0,
        }
    }

    /// True if this span has a real file behind it.
    pub fn is_real(&self) -> bool {
        self.file != FileId::UNKNOWN
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// If the two spans live in different files (possible after `#include`
    /// splicing), the left span wins — YALLA only rewrites within one file
    /// at a time, so this is the conservative choice.
    pub fn to(self, other: Span) -> Span {
        if self.file != other.file {
            return self;
        }
        Span {
            file: self.file,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}..{}", self.file, self.start, self.end)
    }
}

/// Computed line/column (both 1-based) for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

/// Maps byte offsets in a file to line/column pairs.
///
/// Built lazily per file; the line table stores the byte offset at which
/// each line starts.
#[derive(Debug, Clone)]
pub struct LineMap {
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds the line table for `text`.
    pub fn new(text: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Number of lines in the file (a trailing newline does not add a line).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Line/column of byte `offset`.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx,
            Err(idx) => idx - 1,
        };
        LineCol {
            line: line as u32 + 1,
            col: offset - self.line_starts[line] + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_same_file() {
        let a = Span::new(FileId(0), 4, 8);
        let b = Span::new(FileId(0), 6, 12);
        let joined = a.to(b);
        assert_eq!(joined.start, 4);
        assert_eq!(joined.end, 12);
        assert_eq!(joined.len(), 8);
    }

    #[test]
    fn span_join_cross_file_keeps_left() {
        let a = Span::new(FileId(0), 4, 8);
        let b = Span::new(FileId(1), 0, 2);
        assert_eq!(a.to(b), a);
    }

    #[test]
    fn dummy_span_is_not_real() {
        assert!(!Span::dummy().is_real());
        assert!(Span::dummy().is_empty());
        assert!(Span::new(FileId(0), 1, 1).is_real());
    }

    #[test]
    fn line_map_basic() {
        let map = LineMap::new("ab\ncd\n\nxyz");
        assert_eq!(map.line_count(), 4);
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(map.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(map.line_col(9), LineCol { line: 4, col: 3 });
    }

    #[test]
    fn line_map_empty_file() {
        let map = LineMap::new("");
        assert_eq!(map.line_count(), 1);
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
    }
}
