//! The frontend driver: preprocess + parse in one call.

use crate::ast::TranslationUnit;
use crate::error::Result;
use crate::parse::parse_tokens;
use crate::pp::{PpStats, Preprocessor};
use crate::vfs::Vfs;

/// A parsed translation unit together with its preprocessing statistics.
#[derive(Debug)]
pub struct ParsedTu {
    /// The AST.
    pub ast: TranslationUnit,
    /// Preprocessing statistics (LOC, headers — the paper's Table 3 data).
    pub stats: PpStats,
}

/// Owns a [`Vfs`] and runs the full frontend pipeline on files in it.
///
/// # Example
///
/// ```
/// use yalla_cpp::vfs::Vfs;
/// use yalla_cpp::frontend::Frontend;
///
/// let mut vfs = Vfs::new();
/// vfs.add_file("add.hpp", "template<typename T> T g_add(T x, T y) { return x + y; }");
/// vfs.add_file("main.cpp", "#include \"add.hpp\"\nint main() { g_add<int>(1, 2); return 0; }");
/// let fe = Frontend::new(vfs);
/// let tu = fe.parse_translation_unit("main.cpp").unwrap();
/// assert_eq!(tu.stats.header_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Frontend {
    vfs: Vfs,
    defines: Vec<(String, String)>,
}

impl Frontend {
    /// Creates a frontend over a virtual file system.
    pub fn new(vfs: Vfs) -> Self {
        Frontend {
            vfs,
            defines: Vec::new(),
        }
    }

    /// Access to the underlying file system.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Mutable access to the underlying file system (e.g. to add the files
    /// YALLA generates and re-compile).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    /// Adds a predefined macro (like `-DNAME=VALUE`) applied to every
    /// translation unit this frontend parses.
    pub fn define(&mut self, name: &str, value: &str) {
        self.defines.push((name.into(), value.into()));
    }

    /// Preprocesses and parses `main_path`.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and parsing failures.
    pub fn parse_translation_unit(&self, main_path: &str) -> Result<ParsedTu> {
        let out = {
            let _span = yalla_obs::span("frontend", "preprocess");
            let mut pp = Preprocessor::new(&self.vfs);
            for (k, v) in &self.defines {
                pp.define(k, v);
            }
            pp.run(main_path)?
        };
        let ast = {
            let _span = yalla_obs::span("frontend", "parse");
            parse_tokens(out.tokens)?
        };
        yalla_obs::count(yalla_obs::metrics::names::AST_DECLS, ast.decls.len() as i64);
        Ok(ParsedTu {
            ast,
            stats: out.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_figure_2() {
        let mut vfs = Vfs::new();
        vfs.add_file(
            "add.hpp",
            "template<typename T>\nT g_add(T x, T y) {\n  return x + y;\n}\n",
        );
        vfs.add_file(
            "main.cpp",
            "#include \"add.hpp\"\n\nint main() {\n  g_add<int>(1, 2);\n  return 0;\n}\n",
        );
        let fe = Frontend::new(vfs);
        let tu = fe.parse_translation_unit("main.cpp").unwrap();
        assert_eq!(tu.ast.decls.len(), 2);
        assert_eq!(tu.stats.header_count(), 1);
        assert!(tu.stats.lines_compiled >= 8);
    }

    #[test]
    fn defines_apply() {
        let mut vfs = Vfs::new();
        vfs.add_file(
            "m.cpp",
            "#if MODE == 2\nint two;\n#else\nint other;\n#endif\n",
        );
        let mut fe = Frontend::new(vfs);
        fe.define("MODE", "2");
        let tu = fe.parse_translation_unit("m.cpp").unwrap();
        assert_eq!(
            tu.ast.decls[0].declared_name().map(crate::Sym::as_str),
            Some("two")
        );
    }

    #[test]
    fn missing_main_file_errors() {
        let fe = Frontend::new(Vfs::new());
        assert!(fe.parse_translation_unit("nope.cpp").is_err());
    }
}
