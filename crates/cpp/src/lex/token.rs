//! Token definitions for the C++ subset.

use std::fmt;

use crate::loc::Span;

/// Punctuators and operators.
///
/// `>>` is *never* produced by the lexer: consecutive `>`s are emitted as
/// individual [`Punct::Gt`] tokens and merged by the parser only in
/// expression context. This sidesteps the classic `Foo<Bar<int>>` ambiguity
/// the same way modern compilers do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are self-describing operator names
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    ColonColon,
    Dot,
    DotStar,
    Ellipsis,
    Arrow,
    ArrowStar,
    Plus,
    PlusPlus,
    PlusEq,
    Minus,
    MinusMinus,
    MinusEq,
    Star,
    StarEq,
    Slash,
    SlashEq,
    Percent,
    PercentEq,
    Amp,
    AmpAmp,
    AmpEq,
    Pipe,
    PipePipe,
    PipeEq,
    Caret,
    CaretEq,
    Tilde,
    Bang,
    BangEq,
    Eq,
    EqEq,
    Lt,
    LtEq,
    Shl,
    ShlEq,
    Gt,
    GtEq,
    Question,
    Hash,
    HashHash,
}

impl Punct {
    /// The exact source text of the punctuator.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            ColonColon => "::",
            Dot => ".",
            DotStar => ".*",
            Ellipsis => "...",
            Arrow => "->",
            ArrowStar => "->*",
            Plus => "+",
            PlusPlus => "++",
            PlusEq => "+=",
            Minus => "-",
            MinusMinus => "--",
            MinusEq => "-=",
            Star => "*",
            StarEq => "*=",
            Slash => "/",
            SlashEq => "/=",
            Percent => "%",
            PercentEq => "%=",
            Amp => "&",
            AmpAmp => "&&",
            AmpEq => "&=",
            Pipe => "|",
            PipePipe => "||",
            PipeEq => "|=",
            Caret => "^",
            CaretEq => "^=",
            Tilde => "~",
            Bang => "!",
            BangEq => "!=",
            Eq => "=",
            EqEq => "==",
            Lt => "<",
            LtEq => "<=",
            Shl => "<<",
            ShlEq => "<<=",
            Gt => ">",
            GtEq => ">=",
            Question => "?",
            Hash => "#",
            HashHash => "##",
        }
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind (and payload) of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword; keywords are distinguished at parse time.
    Ident(String),
    /// An integer literal (value truncated to `i64`; suffixes dropped).
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal (content without quotes, escapes resolved).
    Str(String),
    /// A character literal.
    Char(char),
    /// A punctuator or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True if this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == name)
    }

    /// True if this is the punctuator `p`.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Char(c) => write!(f, "'{c}'"),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where (in the original file) the token came from. Tokens created by
    /// macro expansion carry the span of the macro *use*.
    pub span: Span,
    /// Physical line (1-based) the token starts on — used by the
    /// preprocessor for directive/line bookkeeping.
    pub line: u32,
}

impl Token {
    /// Shorthand for an EOF token with a dummy span.
    pub fn eof() -> Self {
        Token {
            kind: TokenKind::Eof,
            span: Span::dummy(),
            line: 0,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn punct_round_trip_text() {
        assert_eq!(Punct::ColonColon.as_str(), "::");
        assert_eq!(Punct::Ellipsis.to_string(), "...");
        assert_eq!(Punct::ShlEq.as_str(), "<<=");
    }

    #[test]
    fn kind_predicates() {
        assert!(TokenKind::Ident("class".into()).is_ident("class"));
        assert!(!TokenKind::Ident("klass".into()).is_ident("class"));
        assert!(TokenKind::Punct(Punct::Semi).is_punct(Punct::Semi));
        assert!(!TokenKind::Punct(Punct::Semi).is_punct(Punct::Comma));
        assert!(!TokenKind::Eof.is_ident("class"));
    }

    #[test]
    fn display_is_never_empty() {
        for k in [
            TokenKind::Ident("x".into()),
            TokenKind::Int(0),
            TokenKind::Str(String::new()),
            TokenKind::Eof,
        ] {
            assert!(!k.to_string().is_empty());
        }
    }
}
