//! Lexical analysis: tokens and the lexer.

mod lexer;
mod token;

pub use lexer::{lex_file, lex_str, Lexer};
pub use token::{Punct, Token, TokenKind};
