//! The lexer proper.
//!
//! Lexes a complete file (or string fragment) into [`Token`]s. Comments are
//! stripped; line splices (`\` + newline) are honoured; preprocessor
//! directives are *not* interpreted here — the `#` simply becomes a
//! [`Punct::Hash`] token and the preprocessor works on the token stream
//! using the recorded line numbers.

use crate::error::{CppError, Result};
use crate::lex::token::{Punct, Token, TokenKind};
use crate::loc::{FileId, Span};

/// Streaming lexer over a single file's text.
#[derive(Debug)]
pub struct Lexer<'a> {
    text: &'a [u8],
    file: FileId,
    pos: usize,
    line: u32,
}

/// Lexes all of `text` (registered as `file`) into tokens, ending with EOF.
///
/// # Errors
///
/// Returns a [`CppError::Lex`] for unterminated strings/comments or stray
/// characters.
pub fn lex_file(file: FileId, text: &str) -> Result<Vec<Token>> {
    Lexer::new(file, text).run()
}

/// Lexes a string that has no backing file (spans carry
/// [`FileId::UNKNOWN`]). Used for macro replacement lists and tests.
///
/// # Errors
///
/// Same failure modes as [`lex_file`].
pub fn lex_str(text: &str) -> Result<Vec<Token>> {
    Lexer::new(FileId::UNKNOWN, text).run()
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `text` belonging to `file`.
    pub fn new(file: FileId, text: &'a str) -> Self {
        Lexer {
            text: text.as_bytes(),
            file,
            pos: 0,
            line: 1,
        }
    }

    fn span(&self, start: usize) -> Span {
        Span::new(self.file, start as u32, self.pos as u32)
    }

    fn err(&self, start: usize, message: impl Into<String>) -> CppError {
        CppError::Lex {
            message: message.into(),
            span: self.span(start),
        }
    }

    fn peek(&self) -> u8 {
        self.text.get(self.pos).copied().unwrap_or(0)
    }

    fn peek_at(&self, n: usize) -> u8 {
        self.text.get(self.pos + n).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    /// Skips whitespace, comments, and line splices. Returns an error for
    /// unterminated block comments.
    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'\\'
                    if self.peek_at(1) == b'\n'
                        || (self.peek_at(1) == b'\r' && self.peek_at(2) == b'\n') =>
                {
                    // A line splice joins two physical lines into one
                    // logical line: advance past the newline *without*
                    // bumping the line counter, so the preprocessor sees
                    // spliced directives as a single line.
                    self.pos += if self.peek_at(1) == b'\r' { 3 } else { 2 };
                }
                b'/' if self.peek_at(1) == b'/' => {
                    while self.pos < self.text.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek_at(1) == b'*' => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.text.len() {
                            return Err(self.err(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek_at(1) == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lexes the whole input, appending a final EOF token.
    pub fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            if self.pos >= self.text.len() {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(self.file, self.pos as u32, self.pos as u32),
                    line: self.line,
                });
                return Ok(out);
            }
            out.push(self.next_token()?);
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        let start = self.pos;
        let line = self.line;
        let b = self.peek();
        let kind = if b.is_ascii_alphabetic() || b == b'_' {
            self.lex_ident_or_prefixed_literal(start)?
        } else if b.is_ascii_digit() || (b == b'.' && self.peek_at(1).is_ascii_digit()) {
            self.lex_number(start)?
        } else if b == b'"' {
            self.lex_string(start)?
        } else if b == b'\'' {
            self.lex_char(start)?
        } else {
            self.lex_punct(start)?
        };
        Ok(Token {
            kind,
            span: self.span(start),
            line,
        })
    }

    fn lex_ident_or_prefixed_literal(&mut self, start: usize) -> Result<TokenKind> {
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.text[start..self.pos])
            .map_err(|_| self.err(start, "invalid utf-8 in identifier"))?;
        // String-literal prefixes: u8"", u"", U"", L"", R"(...)".
        if self.peek() == b'"' {
            if text == "R" {
                return self.lex_raw_string(start);
            }
            if matches!(text, "u8" | "u" | "U" | "L") {
                return self.lex_string(start);
            }
        }
        Ok(TokenKind::Ident(text.to_string()))
    }

    fn lex_number(&mut self, start: usize) -> Result<TokenKind> {
        let mut is_float = false;
        if self.peek() == b'0' && matches!(self.peek_at(1), b'x' | b'X') {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while self.peek().is_ascii_hexdigit() || self.peek() == b'\'' {
                self.bump();
            }
            let digits: String = std::str::from_utf8(&self.text[hex_start..self.pos])
                .unwrap_or("")
                .chars()
                .filter(|c| *c != '\'')
                .collect();
            self.skip_int_suffix();
            let value = i64::from_str_radix(&digits, 16)
                .map_err(|_| self.err(start, "invalid hex literal"))?;
            return Ok(TokenKind::Int(value));
        }
        while self.peek().is_ascii_digit() || self.peek() == b'\'' {
            self.bump();
        }
        if self.peek() == b'.' && self.peek_at(1) != b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() || self.peek() == b'\'' {
                self.bump();
            }
        }
        if matches!(self.peek(), b'e' | b'E')
            && (self.peek_at(1).is_ascii_digit()
                || (matches!(self.peek_at(1), b'+' | b'-') && self.peek_at(2).is_ascii_digit()))
        {
            is_float = true;
            self.bump();
            if matches!(self.peek(), b'+' | b'-') {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let end = self.pos;
        let digits: String = std::str::from_utf8(&self.text[start..end])
            .unwrap_or("")
            .chars()
            .filter(|c| *c != '\'')
            .collect();
        if is_float {
            if matches!(self.peek(), b'f' | b'F' | b'l' | b'L') {
                self.bump();
            }
            let value: f64 = digits
                .parse()
                .map_err(|_| self.err(start, "invalid float literal"))?;
            Ok(TokenKind::Float(value))
        } else {
            self.skip_int_suffix();
            let value: i64 = digits
                .parse()
                .map_err(|_| self.err(start, "integer literal out of range"))?;
            Ok(TokenKind::Int(value))
        }
    }

    fn skip_int_suffix(&mut self) {
        while matches!(self.peek(), b'u' | b'U' | b'l' | b'L' | b'z' | b'Z') {
            self.bump();
        }
    }

    fn lex_string(&mut self, start: usize) -> Result<TokenKind> {
        debug_assert_eq!(self.peek(), b'"');
        self.bump();
        let mut value = String::new();
        loop {
            if self.pos >= self.text.len() {
                return Err(self.err(start, "unterminated string literal"));
            }
            match self.bump() {
                b'"' => break,
                b'\\' => value.push(self.lex_escape(start)?),
                b'\n' => return Err(self.err(start, "newline in string literal")),
                b => value.push(b as char),
            }
        }
        Ok(TokenKind::Str(value))
    }

    fn lex_raw_string(&mut self, start: usize) -> Result<TokenKind> {
        debug_assert_eq!(self.peek(), b'"');
        self.bump();
        let mut delim = String::new();
        while self.peek() != b'(' {
            if self.pos >= self.text.len() || delim.len() > 16 {
                return Err(self.err(start, "invalid raw string delimiter"));
            }
            delim.push(self.bump() as char);
        }
        self.bump(); // (
        let close = format!("){delim}\"");
        let close = close.as_bytes();
        let mut value = String::new();
        loop {
            if self.pos + close.len() > self.text.len() {
                return Err(self.err(start, "unterminated raw string literal"));
            }
            if &self.text[self.pos..self.pos + close.len()] == close {
                for _ in 0..close.len() {
                    self.bump();
                }
                break;
            }
            value.push(self.bump() as char);
        }
        Ok(TokenKind::Str(value))
    }

    fn lex_char(&mut self, start: usize) -> Result<TokenKind> {
        debug_assert_eq!(self.peek(), b'\'');
        self.bump();
        let c = match self.bump() {
            0 => return Err(self.err(start, "unterminated character literal")),
            b'\\' => self.lex_escape(start)?,
            b'\'' => return Err(self.err(start, "empty character literal")),
            b => b as char,
        };
        if self.bump() != b'\'' {
            return Err(self.err(start, "unterminated character literal"));
        }
        Ok(TokenKind::Char(c))
    }

    fn lex_escape(&mut self, start: usize) -> Result<char> {
        Ok(match self.bump() {
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'0' => '\0',
            b'\\' => '\\',
            b'\'' => '\'',
            b'"' => '"',
            b'a' => '\x07',
            b'b' => '\x08',
            b'f' => '\x0c',
            b'v' => '\x0b',
            0 => return Err(self.err(start, "unterminated escape sequence")),
            b => b as char,
        })
    }

    fn lex_punct(&mut self, start: usize) -> Result<TokenKind> {
        use Punct::*;
        let b = self.bump();
        let two = self.peek();
        let three = self.peek_at(1);
        let p = match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b'~' => Tilde,
            b':' if two == b':' => {
                self.bump();
                ColonColon
            }
            b':' => Colon,
            b'.' if two == b'.' && three == b'.' => {
                self.bump();
                self.bump();
                Ellipsis
            }
            b'.' if two == b'*' => {
                self.bump();
                DotStar
            }
            b'.' => Dot,
            b'+' if two == b'+' => {
                self.bump();
                PlusPlus
            }
            b'+' if two == b'=' => {
                self.bump();
                PlusEq
            }
            b'+' => Plus,
            b'-' if two == b'-' => {
                self.bump();
                MinusMinus
            }
            b'-' if two == b'=' => {
                self.bump();
                MinusEq
            }
            b'-' if two == b'>' && three == b'*' => {
                self.bump();
                self.bump();
                ArrowStar
            }
            b'-' if two == b'>' => {
                self.bump();
                Arrow
            }
            b'-' => Minus,
            b'*' if two == b'=' => {
                self.bump();
                StarEq
            }
            b'*' => Star,
            b'/' if two == b'=' => {
                self.bump();
                SlashEq
            }
            b'/' => Slash,
            b'%' if two == b'=' => {
                self.bump();
                PercentEq
            }
            b'%' => Percent,
            b'&' if two == b'&' => {
                self.bump();
                AmpAmp
            }
            b'&' if two == b'=' => {
                self.bump();
                AmpEq
            }
            b'&' => Amp,
            b'|' if two == b'|' => {
                self.bump();
                PipePipe
            }
            b'|' if two == b'=' => {
                self.bump();
                PipeEq
            }
            b'|' => Pipe,
            b'^' if two == b'=' => {
                self.bump();
                CaretEq
            }
            b'^' => Caret,
            b'!' if two == b'=' => {
                self.bump();
                BangEq
            }
            b'!' => Bang,
            b'=' if two == b'=' => {
                self.bump();
                EqEq
            }
            b'=' => Eq,
            b'<' if two == b'<' && three == b'=' => {
                self.bump();
                self.bump();
                ShlEq
            }
            b'<' if two == b'<' => {
                self.bump();
                Shl
            }
            b'<' if two == b'=' => {
                self.bump();
                LtEq
            }
            b'<' => Lt,
            // Note: `>>` is intentionally lexed as two `>` tokens; see the
            // `Punct` docs. `>=` is still one token.
            b'>' if two == b'=' => {
                self.bump();
                GtEq
            }
            b'>' => Gt,
            b'#' if two == b'#' => {
                self.bump();
                HashHash
            }
            b'#' => Hash,
            other => {
                return Err(self.err(start, format!("stray character {:?}", other as char)));
            }
        };
        Ok(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut toks = lex_str(src).unwrap();
        assert_eq!(toks.pop().unwrap().kind, TokenKind::Eof);
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_keywords_are_idents() {
        assert_eq!(
            kinds("class Foo _bar x1"),
            vec![
                TokenKind::Ident("class".into()),
                TokenKind::Ident("Foo".into()),
                TokenKind::Ident("_bar".into()),
                TokenKind::Ident("x1".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0x1F 3.5 1e3 2.5e-2 100u 7L 1'000'000"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(31),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Int(100),
                TokenKind::Int(7),
                TokenKind::Int(1_000_000),
            ]
        );
    }

    #[test]
    fn float_suffix() {
        assert_eq!(kinds("1.5f"), vec![TokenKind::Float(1.5)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Float(0.5)]);
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            kinds(r#""hi\n" 'a' '\t' L"wide""#),
            vec![
                TokenKind::Str("hi\n".into()),
                TokenKind::Char('a'),
                TokenKind::Char('\t'),
                TokenKind::Str("wide".into()),
            ]
        );
    }

    #[test]
    fn raw_strings() {
        assert_eq!(
            kinds(r###"R"(a\b"c)" R"xx(y)zz)xx)xx""###),
            vec![
                TokenKind::Str(r#"a\b"c"#.into()),
                TokenKind::Str("y)zz)xx".into()),
            ]
        );
    }

    #[test]
    fn comments_are_stripped() {
        assert_eq!(
            kinds("a // line\nb /* block\nmulti */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn line_splice_inside_tokens_stream() {
        assert_eq!(
            kinds("foo \\\n bar"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Ident("bar".into()),
            ]
        );
    }

    #[test]
    fn two_gt_never_merge() {
        let ks = kinds("Vec<Vec<int>> x; a >> b");
        let gts = ks.iter().filter(|k| k.is_punct(Punct::Gt)).count();
        assert_eq!(gts, 4, "all > tokens stay separate: {ks:?}");
    }

    #[test]
    fn compound_punctuators() {
        assert_eq!(
            kinds(":: -> .* ->* ... <<= << <= !="),
            vec![
                TokenKind::Punct(Punct::ColonColon),
                TokenKind::Punct(Punct::Arrow),
                TokenKind::Punct(Punct::DotStar),
                TokenKind::Punct(Punct::ArrowStar),
                TokenKind::Punct(Punct::Ellipsis),
                TokenKind::Punct(Punct::ShlEq),
                TokenKind::Punct(Punct::Shl),
                TokenKind::Punct(Punct::LtEq),
                TokenKind::Punct(Punct::BangEq),
            ]
        );
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex_str("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn spans_point_into_source() {
        let src = "int foo;";
        let toks = lex_file(FileId(7), src).unwrap();
        let span = toks[1].span;
        assert_eq!(span.file, FileId(7));
        assert_eq!(&src[span.start as usize..span.end as usize], "foo");
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex_str("\"abc").is_err());
        assert!(lex_str("/* never closed").is_err());
        assert!(lex_str("'x").is_err());
    }

    #[test]
    fn stray_character_is_error() {
        let err = lex_str("int $x;").unwrap_err();
        assert!(err.to_string().contains("stray character"));
    }

    #[test]
    fn hash_tokens_survive() {
        assert_eq!(
            kinds("# ##"),
            vec![
                TokenKind::Punct(Punct::Hash),
                TokenKind::Punct(Punct::HashHash)
            ]
        );
    }
}
