//! Qualified names and template arguments.
//!
//! A qualified name such as `Kokkos::TeamPolicy<sp_t>::member_type` is the
//! unit the Header Substitution analysis reasons about: the paper (§3.2.1)
//! forward-declares "the class after the last scope operator" and treats
//! earlier segments as namespaces or enclosing classes. Each [`NameSeg`]
//! therefore keeps its own optional template-argument list.

use std::fmt;

use crate::ast::types::Type;

/// A template argument: a type, a constant expression (kept as rendered
/// text plus an optional evaluated integer), or a parameter pack expansion.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateArg {
    /// A type argument, e.g. the `int**` in `View<int**, LayoutRight>`.
    Type(Type),
    /// A non-type (value) argument, e.g. the `5` in `Array<int, 5>`.
    Value(String),
    /// A pack expansion `Ts...`.
    Pack(String),
}

impl fmt::Display for TemplateArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateArg::Type(t) => write!(f, "{t}"),
            TemplateArg::Value(v) => write!(f, "{v}"),
            TemplateArg::Pack(p) => write!(f, "{p}..."),
        }
    }
}

/// One `::`-separated segment of a qualified name.
#[derive(Debug, Clone, PartialEq)]
pub struct NameSeg {
    /// The identifier.
    pub ident: String,
    /// Explicit template arguments, if written (`TeamPolicy<sp_t>`).
    pub args: Option<Vec<TemplateArg>>,
}

impl NameSeg {
    /// A segment with no template arguments.
    pub fn plain(ident: impl Into<String>) -> Self {
        NameSeg {
            ident: ident.into(),
            args: None,
        }
    }

    /// A segment with explicit template arguments.
    pub fn with_args(ident: impl Into<String>, args: Vec<TemplateArg>) -> Self {
        NameSeg {
            ident: ident.into(),
            args: Some(args),
        }
    }
}

impl fmt::Display for NameSeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.ident)?;
        if let Some(args) = &self.args {
            f.write_str("<")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{a}")?;
            }
            // Avoid emitting `>>` when the last argument itself ended in `>`.
            f.write_str(">")?;
        }
        Ok(())
    }
}

/// A possibly-qualified name: `[::] seg (:: seg)*`.
#[derive(Debug, Clone, PartialEq)]
pub struct QualName {
    /// True if the name starts with a global `::`.
    pub global: bool,
    /// The `::`-separated segments; never empty.
    pub segs: Vec<NameSeg>,
}

impl QualName {
    /// An unqualified single-identifier name.
    pub fn ident(name: impl Into<String>) -> Self {
        QualName {
            global: false,
            segs: vec![NameSeg::plain(name)],
        }
    }

    /// Builds a name from plain segments, e.g. `["Kokkos", "View"]`.
    pub fn from_segs<I, S>(segs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let segs: Vec<NameSeg> = segs.into_iter().map(NameSeg::plain).collect();
        assert!(
            !segs.is_empty(),
            "qualified name needs at least one segment"
        );
        QualName {
            global: false,
            segs,
        }
    }

    /// The last segment (the entity actually named).
    pub fn last(&self) -> &NameSeg {
        self.segs.last().expect("QualName is never empty")
    }

    /// The identifier of the last segment.
    pub fn base_ident(&self) -> &str {
        &self.last().ident
    }

    /// True if the name has more than one segment (or a global `::`).
    pub fn is_qualified(&self) -> bool {
        self.global || self.segs.len() > 1
    }

    /// The qualifying prefix (everything before the last segment), if any.
    pub fn prefix(&self) -> Option<QualName> {
        if self.segs.len() <= 1 {
            return None;
        }
        Some(QualName {
            global: self.global,
            segs: self.segs[..self.segs.len() - 1].to_vec(),
        })
    }

    /// Returns a copy with `seg` appended.
    pub fn child(&self, seg: NameSeg) -> QualName {
        let mut segs = self.segs.clone();
        segs.push(seg);
        QualName {
            global: self.global,
            segs,
        }
    }

    /// The name without any template arguments, as `A::B::C` text. This is
    /// the key used by the symbol table.
    pub fn key(&self) -> String {
        let mut out = String::new();
        for (i, seg) in self.segs.iter().enumerate() {
            if i > 0 {
                out.push_str("::");
            }
            out.push_str(&seg.ident);
        }
        out
    }
}

impl fmt::Display for QualName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.global {
            f.write_str("::")?;
        }
        for (i, seg) in self.segs.iter().enumerate() {
            if i > 0 {
                f.write_str("::")?;
            }
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::types::{Builtin, Type};

    #[test]
    fn display_plain_and_qualified() {
        assert_eq!(QualName::ident("x").to_string(), "x");
        assert_eq!(
            QualName::from_segs(["Kokkos", "OpenMP"]).to_string(),
            "Kokkos::OpenMP"
        );
    }

    #[test]
    fn display_with_template_args() {
        let view = QualName {
            global: false,
            segs: vec![
                NameSeg::plain("Kokkos"),
                NameSeg::with_args(
                    "View",
                    vec![
                        TemplateArg::Type(Type::pointer(Type::pointer(Type::builtin(
                            Builtin::Int,
                        )))),
                        TemplateArg::Type(Type::named(QualName::ident("LayoutRight"))),
                    ],
                ),
            ],
        };
        assert_eq!(view.to_string(), "Kokkos::View<int**, LayoutRight>");
    }

    #[test]
    fn key_strips_template_args() {
        let name = QualName {
            global: true,
            segs: vec![
                NameSeg::plain("Kokkos"),
                NameSeg::with_args("TeamPolicy", vec![TemplateArg::Value("4".into())]),
                NameSeg::plain("member_type"),
            ],
        };
        assert_eq!(name.key(), "Kokkos::TeamPolicy::member_type");
        assert_eq!(name.base_ident(), "member_type");
        assert!(name.is_qualified());
    }

    #[test]
    fn prefix_and_child() {
        let name = QualName::from_segs(["A", "B", "C"]);
        let prefix = name.prefix().unwrap();
        assert_eq!(prefix.to_string(), "A::B");
        assert_eq!(prefix.child(NameSeg::plain("C")), name);
        assert!(QualName::ident("x").prefix().is_none());
    }

    #[test]
    fn pack_arg_display() {
        assert_eq!(TemplateArg::Pack("Ts".into()).to_string(), "Ts...");
    }
}
