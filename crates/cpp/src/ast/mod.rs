//! Abstract syntax tree for the C++ subset.
//!
//! The AST mirrors the slice of C++ that the Header Substitution paper
//! manipulates: namespaces, class/struct definitions with templates,
//! nested types and member functions, enums, type aliases, free functions,
//! variables, and a complete expression grammar including lambdas,
//! qualified names with template arguments, `new` expressions, and
//! overloaded-operator calls.
//!
//! Every node carries a [`crate::loc::Span`] pointing into the original
//! file so the YALLA rewriter can splice edits back into user sources.

mod decl;
mod expr;
mod name;
mod stmt;
mod types;
pub mod visit;

pub use decl::{
    AccessSpecifier, AliasDecl, ClassDecl, ClassKey, Decl, DeclKind, EnumDecl, Enumerator,
    FunctionDecl, FunctionName, FunctionSpecs, Member, NamespaceDecl, Param, TemplateHeader,
    TemplateParam, TranslationUnit, VarDecl,
};
pub use expr::{BinaryOp, Expr, ExprKind, LambdaCapture, LambdaExpr, UnaryOp};
pub use name::{NameSeg, QualName, TemplateArg};
pub use stmt::{Block, ForInit, Stmt, StmtKind};
pub use types::{Builtin, Type, TypeKind};
