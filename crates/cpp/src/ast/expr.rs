//! Expressions.

use std::fmt;

use crate::ast::name::QualName;
use crate::ast::stmt::Block;
use crate::ast::types::Type;
use crate::loc::Span;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Neg,
    Not,
    BitNot,
    Deref,
    AddrOf,
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

impl UnaryOp {
    /// Source spelling (prefix forms; post-inc/dec render after operand).
    pub fn as_str(self) -> &'static str {
        use UnaryOp::*;
        match self {
            Neg => "-",
            Not => "!",
            BitNot => "~",
            Deref => "*",
            AddrOf => "&",
            PreInc | PostInc => "++",
            PreDec | PostDec => "--",
        }
    }
}

/// Binary (and compound-assignment) operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
    RemAssign,
    ShlAssign,
    ShrAssign,
    AndAssign,
    OrAssign,
    XorAssign,
    Comma,
}

impl BinaryOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            And => "&&",
            Or => "||",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Assign => "=",
            AddAssign => "+=",
            SubAssign => "-=",
            MulAssign => "*=",
            DivAssign => "/=",
            RemAssign => "%=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            AndAssign => "&=",
            OrAssign => "|=",
            XorAssign => "^=",
            Comma => ",",
        }
    }

    /// True for `=` and the compound assignments.
    pub fn is_assignment(self) -> bool {
        use BinaryOp::*;
        matches!(
            self,
            Assign
                | AddAssign
                | SubAssign
                | MulAssign
                | DivAssign
                | RemAssign
                | ShlAssign
                | ShrAssign
                | AndAssign
                | OrAssign
                | XorAssign
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a lambda captures its environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LambdaCapture {
    /// `[&]` — capture everything by reference.
    AllByRef,
    /// `[=]` — capture everything by value.
    AllByValue,
    /// `[x]` — capture `x` by value.
    ByValue(String),
    /// `[&x]` — capture `x` by reference.
    ByRef(String),
    /// `[this]`.
    This,
}

/// A lambda expression.
///
/// Lambdas are central to the paper: a lambda passed as a template argument
/// cannot be explicitly instantiated (its type is unutterable), so YALLA
/// rewrites each lambda into a named functor (§3.4). The parser assigns
/// each lambda a stable `id` used to name the generated functor.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaExpr {
    /// Stable, per-translation-unit lambda number.
    pub id: u32,
    /// Capture list, in source order.
    pub captures: Vec<LambdaCapture>,
    /// Parameters.
    pub params: Vec<(Type, String)>,
    /// Body.
    pub body: Block,
}

/// The kind (and operands) of an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Character literal.
    Char(char),
    /// `nullptr`.
    Null,
    /// `this`.
    This,
    /// A (possibly qualified, possibly templated) name use.
    Name(QualName),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation or assignment.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conditional `c ? t : e`.
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Then-value.
        then_expr: Box<Expr>,
        /// Else-value.
        else_expr: Box<Expr>,
    },
    /// A call: `callee(args...)`. When `callee` is a [`ExprKind::Member`],
    /// this is a method call; when it is a plain [`ExprKind::Name`] that
    /// resolves to an object, it is an overloaded `operator()` call — the
    /// distinction is made during analysis, not parsing.
    Call {
        /// The callee expression.
        callee: Box<Expr>,
        /// Arguments, in order.
        args: Vec<Expr>,
    },
    /// Member access `base.member` or `base->member`.
    Member {
        /// Object expression.
        base: Box<Expr>,
        /// True for `->`.
        arrow: bool,
        /// Member name (may carry explicit template arguments).
        member: crate::ast::name::NameSeg,
    },
    /// Array subscript `base[index]`.
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index.
        index: Box<Expr>,
    },
    /// A lambda.
    Lambda(LambdaExpr),
    /// `new T(args...)` / `new T{args...}`.
    New {
        /// Allocated type.
        ty: Type,
        /// Constructor arguments.
        args: Vec<Expr>,
    },
    /// `delete expr` / `delete[] expr`.
    Delete {
        /// True for `delete[]`.
        array: bool,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A named cast (`static_cast<T>(e)` et al.) or functional cast `T(e)`.
    Cast {
        /// Cast spelling ("static_cast", "reinterpret_cast", ...).
        kind: String,
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Braced initialization `T{args...}` (or bare `{args...}`).
    BraceInit {
        /// Type, when written.
        ty: Option<Type>,
        /// Initializer elements.
        args: Vec<Expr>,
    },
    /// Parenthesized expression.
    Paren(Box<Expr>),
    /// `sizeof(type-or-expr)` — operand kept as rendered text.
    Sizeof(String),
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Source range of the whole expression.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// If this expression (after stripping parens) is a plain name, return it.
    pub fn as_name(&self) -> Option<&QualName> {
        match &self.kind {
            ExprKind::Name(n) => Some(n),
            ExprKind::Paren(inner) => inner.as_name(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_classification() {
        assert!(BinaryOp::Assign.is_assignment());
        assert!(BinaryOp::AddAssign.is_assignment());
        assert!(!BinaryOp::Add.is_assignment());
        assert!(!BinaryOp::Eq.is_assignment());
    }

    #[test]
    fn as_name_strips_parens() {
        let name = QualName::ident("x");
        let inner = Expr::new(ExprKind::Name(name.clone()), Span::dummy());
        let outer = Expr::new(ExprKind::Paren(Box::new(inner)), Span::dummy());
        assert_eq!(outer.as_name(), Some(&name));
        let lit = Expr::new(ExprKind::Int(3), Span::dummy());
        assert!(lit.as_name().is_none());
    }

    #[test]
    fn operator_spellings() {
        assert_eq!(BinaryOp::Shr.as_str(), ">>");
        assert_eq!(UnaryOp::AddrOf.as_str(), "&");
        assert_eq!(UnaryOp::PostInc.as_str(), "++");
    }
}
