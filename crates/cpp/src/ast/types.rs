//! Type representations.
//!
//! Types are what Header Substitution transforms: a by-value use of a class
//! that becomes forward-declared must be *pointerized* (paper §3.3.2), and
//! wrapper synthesis inspects return/parameter types for incompleteness
//! (§3.2.2). The representation is deliberately structural so those
//! rewrites are simple tree edits.

use std::fmt;

use crate::ast::name::QualName;

/// Builtin (fundamental) types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // self-describing C++ fundamental types
pub enum Builtin {
    Void,
    Bool,
    Char,
    UChar,
    Short,
    UShort,
    Int,
    UInt,
    Long,
    ULong,
    LongLong,
    ULongLong,
    Float,
    Double,
    SizeT,
    Auto,
}

impl Builtin {
    /// C++ spelling of the builtin.
    pub fn as_str(self) -> &'static str {
        use Builtin::*;
        match self {
            Void => "void",
            Bool => "bool",
            Char => "char",
            UChar => "unsigned char",
            Short => "short",
            UShort => "unsigned short",
            Int => "int",
            UInt => "unsigned int",
            Long => "long",
            ULong => "unsigned long",
            LongLong => "long long",
            ULongLong => "unsigned long long",
            Float => "float",
            Double => "double",
            SizeT => "size_t",
            Auto => "auto",
        }
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The structure of a type.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeKind {
    /// A named (possibly qualified, possibly templated) type.
    Named(QualName),
    /// A fundamental type.
    Builtin(Builtin),
    /// Pointer to a type: `T*`.
    Pointer(Box<Type>),
    /// Lvalue reference: `T&`.
    LValueRef(Box<Type>),
    /// Rvalue reference: `T&&`.
    RValueRef(Box<Type>),
    /// Array of a type: `T[n]` (`None` for unsized `T[]`).
    Array(Box<Type>, Option<u64>),
    /// Function type `ret(params...)`; used for function pointers/params.
    Function {
        /// Return type.
        ret: Box<Type>,
        /// Parameter types.
        params: Vec<Type>,
    },
}

/// A type with cv-qualification.
#[derive(Debug, Clone, PartialEq)]
pub struct Type {
    /// The type structure.
    pub kind: TypeKind,
    /// `const` qualification at this level.
    pub is_const: bool,
    /// `volatile` qualification at this level.
    pub is_volatile: bool,
}

impl Type {
    /// An unqualified type of the given kind.
    pub fn new(kind: TypeKind) -> Self {
        Type {
            kind,
            is_const: false,
            is_volatile: false,
        }
    }

    /// A named type.
    pub fn named(name: QualName) -> Self {
        Type::new(TypeKind::Named(name))
    }

    /// A builtin type.
    pub fn builtin(b: Builtin) -> Self {
        Type::new(TypeKind::Builtin(b))
    }

    /// `void`.
    pub fn void() -> Self {
        Type::builtin(Builtin::Void)
    }

    /// Pointer to `inner`.
    pub fn pointer(inner: Type) -> Self {
        Type::new(TypeKind::Pointer(Box::new(inner)))
    }

    /// Lvalue reference to `inner`.
    pub fn lvalue_ref(inner: Type) -> Self {
        Type::new(TypeKind::LValueRef(Box::new(inner)))
    }

    /// Rvalue reference to `inner`.
    pub fn rvalue_ref(inner: Type) -> Self {
        Type::new(TypeKind::RValueRef(Box::new(inner)))
    }

    /// Returns a `const`-qualified copy of this type.
    pub fn as_const(mut self) -> Self {
        self.is_const = true;
        self
    }

    /// True if this is exactly `void` (ignoring qualifiers).
    pub fn is_void(&self) -> bool {
        matches!(self.kind, TypeKind::Builtin(Builtin::Void))
    }

    /// True if this type is passed around by value: not a pointer,
    /// reference, array, or function type. Qualifiers are ignored.
    ///
    /// This is the test the paper's wrapper rule applies to return and
    /// parameter types (§3.2.2): only *by-value* uses of incomplete types
    /// are illegal.
    pub fn is_by_value(&self) -> bool {
        matches!(self.kind, TypeKind::Named(_) | TypeKind::Builtin(_))
    }

    /// The named type at the core of this type, if any, stripping
    /// qualifiers, pointers, references, and arrays.
    pub fn core_name(&self) -> Option<&QualName> {
        match &self.kind {
            TypeKind::Named(n) => Some(n),
            TypeKind::Builtin(_) => None,
            TypeKind::Pointer(t)
            | TypeKind::LValueRef(t)
            | TypeKind::RValueRef(t)
            | TypeKind::Array(t, _) => t.core_name(),
            TypeKind::Function { .. } => None,
        }
    }

    /// Visits every named type mentioned anywhere in this type, including
    /// template arguments — the set the paper adds to `usedClasses` when a
    /// function mentioning them is forward-declared (Fig. 5 lines 7–10).
    pub fn for_each_named<'a>(&'a self, f: &mut impl FnMut(&'a QualName)) {
        match &self.kind {
            TypeKind::Named(n) => {
                f(n);
                for seg in &n.segs {
                    if let Some(args) = &seg.args {
                        for arg in args {
                            if let crate::ast::name::TemplateArg::Type(t) = arg {
                                t.for_each_named(f);
                            }
                        }
                    }
                }
            }
            TypeKind::Builtin(_) => {}
            TypeKind::Pointer(t)
            | TypeKind::LValueRef(t)
            | TypeKind::RValueRef(t)
            | TypeKind::Array(t, _) => t.for_each_named(f),
            TypeKind::Function { ret, params } => {
                ret.for_each_named(f);
                for p in params {
                    p.for_each_named(f);
                }
            }
        }
    }

    /// Rewrites this type in place, replacing every by-value occurrence of
    /// the named type `target` (by symbol key) with a pointer to it.
    /// Returns true if anything changed.
    ///
    /// This implements the paper's pointerization rule (§3.3.2): `View<...> x;`
    /// becomes `View<...>* x;`, while `View<...>&` and `View<...>*` are left
    /// alone (references and pointers to incomplete types are legal).
    pub fn pointerize(&mut self, target_key: &str) -> bool {
        match &mut self.kind {
            TypeKind::Named(n) => {
                let mut changed = false;
                // Template arguments of a pointerized type are left as-is:
                // they are type-level, not object-level, uses.
                if n.key() == target_key {
                    let inner = std::mem::replace(self, Type::void());
                    *self = Type::pointer(inner);
                    changed = true;
                }
                changed
            }
            TypeKind::Builtin(_) => false,
            // Already behind a pointer/reference: legal for incomplete types.
            TypeKind::Pointer(_) | TypeKind::LValueRef(_) | TypeKind::RValueRef(_) => false,
            TypeKind::Array(t, _) => t.pointerize(target_key),
            TypeKind::Function { .. } => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_const {
            f.write_str("const ")?;
        }
        if self.is_volatile {
            f.write_str("volatile ")?;
        }
        match &self.kind {
            TypeKind::Named(n) => write!(f, "{n}"),
            TypeKind::Builtin(b) => write!(f, "{b}"),
            TypeKind::Pointer(t) => write!(f, "{t}*"),
            TypeKind::LValueRef(t) => write!(f, "{t}&"),
            TypeKind::RValueRef(t) => write!(f, "{t}&&"),
            TypeKind::Array(t, Some(n)) => write!(f, "{t}[{n}]"),
            TypeKind::Array(t, None) => write!(f, "{t}[]"),
            TypeKind::Function { ret, params } => {
                write!(f, "{ret}(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::name::{NameSeg, TemplateArg};

    fn view_type() -> Type {
        Type::named(QualName {
            global: false,
            segs: vec![
                NameSeg::plain("Kokkos"),
                NameSeg::with_args(
                    "View",
                    vec![TemplateArg::Type(Type::pointer(Type::builtin(
                        Builtin::Int,
                    )))],
                ),
            ],
        })
    }

    #[test]
    fn display_compound_types() {
        assert_eq!(
            Type::pointer(Type::builtin(Builtin::Int)).to_string(),
            "int*"
        );
        assert_eq!(
            Type::lvalue_ref(Type::builtin(Builtin::Double))
                .as_const()
                .to_string(),
            "const double&"
        );
        assert_eq!(view_type().to_string(), "Kokkos::View<int*>");
    }

    #[test]
    fn by_value_detection() {
        assert!(view_type().is_by_value());
        assert!(Type::builtin(Builtin::Int).is_by_value());
        assert!(!Type::pointer(view_type()).is_by_value());
        assert!(!Type::lvalue_ref(view_type()).is_by_value());
    }

    #[test]
    fn core_name_strips_indirections() {
        let t = Type::pointer(Type::lvalue_ref(view_type()));
        assert_eq!(t.core_name().unwrap().key(), "Kokkos::View");
        assert!(Type::builtin(Builtin::Int).core_name().is_none());
    }

    #[test]
    fn pointerize_by_value_use() {
        let mut t = view_type();
        assert!(t.pointerize("Kokkos::View"));
        assert_eq!(t.to_string(), "Kokkos::View<int*>*");
        // Idempotent: already a pointer now.
        assert!(!t.pointerize("Kokkos::View"));
    }

    #[test]
    fn pointerize_leaves_references_alone() {
        let mut t = Type::lvalue_ref(view_type());
        assert!(!t.pointerize("Kokkos::View"));
        assert_eq!(t.to_string(), "Kokkos::View<int*>&");
    }

    #[test]
    fn pointerize_ignores_other_types() {
        let mut t = view_type();
        assert!(!t.pointerize("Kokkos::OpenMP"));
    }

    #[test]
    fn for_each_named_descends_into_template_args() {
        let t = Type::named(QualName {
            global: false,
            segs: vec![NameSeg::with_args(
                "TeamPolicy",
                vec![TemplateArg::Type(Type::named(QualName::from_segs([
                    "Kokkos", "OpenMP",
                ])))],
            )],
        });
        let mut seen = Vec::new();
        t.for_each_named(&mut |n| seen.push(n.key()));
        assert_eq!(
            seen,
            vec!["TeamPolicy".to_string(), "Kokkos::OpenMP".to_string()]
        );
    }
}
