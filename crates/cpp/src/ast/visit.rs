//! AST traversal.
//!
//! [`Visitor`] is a read-only, pre-order walker over declarations,
//! statements, expressions and types. The YALLA analysis passes (usage
//! collection, lambda discovery) are implemented as visitors, playing the
//! role Clang's `RecursiveASTVisitor` / AST matchers play in the original
//! tool.

use crate::ast::decl::{Decl, DeclKind, FunctionDecl, Param, TranslationUnit, VarDecl};
use crate::ast::expr::{Expr, ExprKind, LambdaExpr};
use crate::ast::stmt::{Block, ForInit, Stmt, StmtKind};
use crate::ast::types::{Type, TypeKind};

/// A read-only AST visitor. Override the hooks you care about; each hook is
/// called before the node's children are walked.
#[allow(unused_variables)]
pub trait Visitor {
    /// Called for every declaration.
    fn visit_decl(&mut self, decl: &Decl) {}
    /// Called for every statement.
    fn visit_stmt(&mut self, stmt: &Stmt) {}
    /// Called for every expression.
    fn visit_expr(&mut self, expr: &Expr) {}
    /// Called for every type written in a declaration/expression.
    fn visit_type(&mut self, ty: &Type) {}
    /// Called for every lambda (also visited as an expression).
    fn visit_lambda(&mut self, lambda: &LambdaExpr) {}
}

/// Walks a whole translation unit.
pub fn walk_tu<V: Visitor>(v: &mut V, tu: &TranslationUnit) {
    for d in &tu.decls {
        walk_decl(v, d);
    }
}

/// Walks one declaration (pre-order).
pub fn walk_decl<V: Visitor>(v: &mut V, decl: &Decl) {
    v.visit_decl(decl);
    match &decl.kind {
        DeclKind::Namespace(ns) => {
            for d in &ns.decls {
                walk_decl(v, d);
            }
        }
        DeclKind::Class(c) => {
            for (_, base) in &c.bases {
                walk_type(v, base);
            }
            for m in &c.members {
                walk_decl(v, &m.decl);
            }
        }
        DeclKind::Enum(e) => {
            if let Some(u) = &e.underlying {
                walk_type(v, u);
            }
        }
        DeclKind::Alias(a) => walk_type(v, &a.target),
        DeclKind::UsingDecl(_) | DeclKind::UsingNamespace(_) => {}
        DeclKind::Function(f) => walk_function(v, f),
        DeclKind::Variable(var) => walk_var(v, var),
        DeclKind::StaticAssert | DeclKind::Access(_) => {}
    }
}

fn walk_function<V: Visitor>(v: &mut V, f: &FunctionDecl) {
    if let Some(ret) = &f.ret {
        walk_type(v, ret);
    }
    for Param { ty, .. } in &f.params {
        walk_type(v, ty);
    }
    if let Some(body) = &f.body {
        walk_block(v, body);
    }
}

fn walk_var<V: Visitor>(v: &mut V, var: &VarDecl) {
    walk_type(v, &var.ty);
    if let Some(init) = &var.init {
        walk_expr(v, init);
    }
}

/// Walks a block.
pub fn walk_block<V: Visitor>(v: &mut V, block: &Block) {
    for s in &block.stmts {
        walk_stmt(v, s);
    }
}

/// Walks one statement (pre-order).
pub fn walk_stmt<V: Visitor>(v: &mut V, stmt: &Stmt) {
    v.visit_stmt(stmt);
    match &stmt.kind {
        StmtKind::Expr(e) => walk_expr(v, e),
        StmtKind::Decl(var) => walk_var(v, var),
        StmtKind::Block(b) => walk_block(v, b),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            walk_expr(v, cond);
            walk_stmt(v, then_branch);
            if let Some(e) = else_branch {
                walk_stmt(v, e);
            }
        }
        StmtKind::For {
            init,
            cond,
            inc,
            body,
        } => {
            match init.as_ref() {
                ForInit::Decl(var) => walk_var(v, var),
                ForInit::Expr(e) => walk_expr(v, e),
                ForInit::Empty => {}
            }
            if let Some(c) = cond {
                walk_expr(v, c);
            }
            if let Some(i) = inc {
                walk_expr(v, i);
            }
            walk_stmt(v, body);
        }
        StmtKind::RangeFor { var, range, body } => {
            walk_var(v, var);
            walk_expr(v, range);
            walk_stmt(v, body);
        }
        StmtKind::While { cond, body } => {
            walk_expr(v, cond);
            walk_stmt(v, body);
        }
        StmtKind::DoWhile { body, cond } => {
            walk_stmt(v, body);
            walk_expr(v, cond);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                walk_expr(v, e);
            }
        }
        StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
    }
}

/// Walks one expression (pre-order).
pub fn walk_expr<V: Visitor>(v: &mut V, expr: &Expr) {
    v.visit_expr(expr);
    match &expr.kind {
        ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Bool(_)
        | ExprKind::Str(_)
        | ExprKind::Char(_)
        | ExprKind::Null
        | ExprKind::This
        | ExprKind::Name(_)
        | ExprKind::Sizeof(_) => {}
        ExprKind::Unary { expr, .. } => walk_expr(v, expr),
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(v, lhs);
            walk_expr(v, rhs);
        }
        ExprKind::Conditional {
            cond,
            then_expr,
            else_expr,
        } => {
            walk_expr(v, cond);
            walk_expr(v, then_expr);
            walk_expr(v, else_expr);
        }
        ExprKind::Call { callee, args } => {
            walk_expr(v, callee);
            for a in args {
                walk_expr(v, a);
            }
        }
        ExprKind::Member { base, .. } => walk_expr(v, base),
        ExprKind::Index { base, index } => {
            walk_expr(v, base);
            walk_expr(v, index);
        }
        ExprKind::Lambda(l) => {
            v.visit_lambda(l);
            for (ty, _) in &l.params {
                walk_type(v, ty);
            }
            walk_block(v, &l.body);
        }
        ExprKind::New { ty, args } => {
            walk_type(v, ty);
            for a in args {
                walk_expr(v, a);
            }
        }
        ExprKind::Delete { expr, .. } => walk_expr(v, expr),
        ExprKind::Cast { ty, expr, .. } => {
            walk_type(v, ty);
            walk_expr(v, expr);
        }
        ExprKind::BraceInit { ty, args } => {
            if let Some(t) = ty {
                walk_type(v, t);
            }
            for a in args {
                walk_expr(v, a);
            }
        }
        ExprKind::Paren(inner) => walk_expr(v, inner),
    }
}

/// Walks one type (pre-order), visiting nested types and template args.
pub fn walk_type<V: Visitor>(v: &mut V, ty: &Type) {
    v.visit_type(ty);
    match &ty.kind {
        TypeKind::Named(n) => {
            for seg in &n.segs {
                if let Some(args) = &seg.args {
                    for arg in args {
                        if let crate::ast::name::TemplateArg::Type(t) = arg {
                            walk_type(v, t);
                        }
                    }
                }
            }
        }
        TypeKind::Builtin(_) => {}
        TypeKind::Pointer(t)
        | TypeKind::LValueRef(t)
        | TypeKind::RValueRef(t)
        | TypeKind::Array(t, _) => walk_type(v, t),
        TypeKind::Function { ret, params } => {
            walk_type(v, ret);
            for p in params {
                walk_type(v, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::name::QualName;
    use crate::loc::Span;

    #[derive(Default)]
    struct Counter {
        decls: usize,
        exprs: usize,
        types: usize,
        lambdas: usize,
    }

    impl Visitor for Counter {
        fn visit_decl(&mut self, _: &Decl) {
            self.decls += 1;
        }
        fn visit_expr(&mut self, _: &Expr) {
            self.exprs += 1;
        }
        fn visit_type(&mut self, _: &Type) {
            self.types += 1;
        }
        fn visit_lambda(&mut self, _: &LambdaExpr) {
            self.lambdas += 1;
        }
    }

    #[test]
    fn counts_nested_nodes() {
        // int f(double x) { return g([](int i){ return i; }); }
        let lambda = Expr::new(
            ExprKind::Lambda(LambdaExpr {
                id: 0,
                captures: vec![],
                params: vec![(Type::builtin(crate::ast::types::Builtin::Int), "i".into())],
                body: Block {
                    stmts: vec![Stmt::new(
                        StmtKind::Return(Some(Expr::new(
                            ExprKind::Name(QualName::ident("i")),
                            Span::dummy(),
                        ))),
                        Span::dummy(),
                    )],
                    span: Span::dummy(),
                },
            }),
            Span::dummy(),
        );
        let call = Expr::new(
            ExprKind::Call {
                callee: Box::new(Expr::new(
                    ExprKind::Name(QualName::ident("g")),
                    Span::dummy(),
                )),
                args: vec![lambda],
            },
            Span::dummy(),
        );
        let f = Decl::new(
            DeclKind::Function(FunctionDecl {
                name: crate::ast::decl::FunctionName::Ident("f".into()),
                qualifier: None,
                template: None,
                ret: Some(Type::builtin(crate::ast::types::Builtin::Int)),
                params: vec![crate::ast::decl::Param {
                    ty: Type::builtin(crate::ast::types::Builtin::Double),
                    name: "x".into(),
                    default: None,
                }],
                specs: Default::default(),
                body: Some(Block {
                    stmts: vec![Stmt::new(StmtKind::Return(Some(call)), Span::dummy())],
                    span: Span::dummy(),
                }),
            }),
            Span::dummy(),
        );
        let tu = TranslationUnit { decls: vec![f] };
        let mut c = Counter::default();
        walk_tu(&mut c, &tu);
        assert_eq!(c.decls, 1);
        assert_eq!(c.lambdas, 1);
        // g, lambda, call, i-name = 4 expressions
        assert_eq!(c.exprs, 4);
        // ret int, param double, lambda param int = 3 types
        assert_eq!(c.types, 3);
    }
}
