//! Declarations: namespaces, classes, enums, aliases, functions, variables.

use std::fmt;

use crate::ast::expr::Expr;
use crate::ast::name::QualName;
use crate::ast::stmt::Block;
use crate::ast::types::Type;
use crate::intern::Sym;
use crate::loc::Span;

/// A whole parsed translation unit.
#[derive(Debug, Clone, Default)]
pub struct TranslationUnit {
    /// Top-level declarations in source order (after `#include` splicing,
    /// so declarations from headers appear before the user's own).
    pub decls: Vec<Decl>,
}

impl TranslationUnit {
    /// Iterates over all declarations recursively (entering namespaces and
    /// classes), depth-first in source order.
    pub fn walk(&self) -> Vec<&Decl> {
        let mut out = Vec::new();
        fn rec<'a>(decls: &'a [Decl], out: &mut Vec<&'a Decl>) {
            for d in decls {
                out.push(d);
                match &d.kind {
                    DeclKind::Namespace(ns) => rec(&ns.decls, out),
                    DeclKind::Class(c) => {
                        for m in &c.members {
                            out.push(&m.decl);
                            if let DeclKind::Namespace(ns) = &m.decl.kind {
                                rec(&ns.decls, out);
                            } else if let DeclKind::Class(inner) = &m.decl.kind {
                                let nested: Vec<&Decl> =
                                    inner.members.iter().map(|m| &m.decl).collect();
                                for n in nested {
                                    out.push(n);
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        rec(&self.decls, &mut out);
        out
    }
}

/// `class` vs `struct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKey {
    /// Declared with `class`.
    Class,
    /// Declared with `struct`.
    Struct,
}

impl fmt::Display for ClassKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClassKey::Class => "class",
            ClassKey::Struct => "struct",
        })
    }
}

/// Member access control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessSpecifier {
    /// `public:`.
    Public,
    /// `protected:`.
    Protected,
    /// `private:`.
    Private,
}

/// One template parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateParam {
    /// `typename T` / `class T` (optionally a pack, optionally defaulted).
    Type {
        /// Parameter name (may be empty for anonymous parameters).
        name: String,
        /// True for `typename... T`.
        pack: bool,
        /// Default argument, rendered.
        default: Option<String>,
    },
    /// `int N` style non-type parameter.
    NonType {
        /// Parameter type.
        ty: Type,
        /// Parameter name.
        name: String,
        /// Default argument, rendered.
        default: Option<String>,
    },
}

impl TemplateParam {
    /// The parameter's name.
    pub fn name(&self) -> &str {
        match self {
            TemplateParam::Type { name, .. } | TemplateParam::NonType { name, .. } => name,
        }
    }
}

/// A `template<...>` head attached to a class, function, alias or variable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TemplateHeader {
    /// Parameters in order. An empty list models an explicit
    /// specialization's `template<>`.
    pub params: Vec<TemplateParam>,
}

impl TemplateHeader {
    /// Renders the head as C++ (`template <typename T, int N>`).
    pub fn render(&self) -> String {
        let mut out = String::from("template <");
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match p {
                TemplateParam::Type {
                    name,
                    pack,
                    default,
                } => {
                    out.push_str("typename");
                    if *pack {
                        out.push_str("...");
                    }
                    if !name.is_empty() {
                        out.push(' ');
                        out.push_str(name);
                    }
                    if let Some(d) = default {
                        out.push_str(" = ");
                        out.push_str(d);
                    }
                }
                TemplateParam::NonType { ty, name, default } => {
                    out.push_str(&ty.to_string());
                    if !name.is_empty() {
                        out.push(' ');
                        out.push_str(name);
                    }
                    if let Some(d) = default {
                        out.push_str(" = ");
                        out.push_str(d);
                    }
                }
            }
        }
        out.push('>');
        out
    }
}

/// A namespace with its contents.
#[derive(Debug, Clone, PartialEq)]
pub struct NamespaceDecl {
    /// Namespace name; empty for anonymous namespaces.
    pub name: String,
    /// `inline namespace`.
    pub is_inline: bool,
    /// Contained declarations.
    pub decls: Vec<Decl>,
}

/// A class member: a declaration plus its access level.
#[derive(Debug, Clone, PartialEq)]
pub struct Member {
    /// Access control in effect at the member's declaration.
    pub access: AccessSpecifier,
    /// The member declaration itself (fields are [`DeclKind::Variable`],
    /// methods are [`DeclKind::Function`], nested types are
    /// [`DeclKind::Class`]/[`DeclKind::Alias`]/[`DeclKind::Enum`]).
    pub decl: Decl,
}

/// A class or struct declaration/definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// `class` or `struct`.
    pub key: ClassKey,
    /// The class name (unqualified).
    pub name: String,
    /// Template head, when this is a class template (or specialization).
    pub template: Option<TemplateHeader>,
    /// Explicit specialization arguments (`struct V<int>` ⇒ `"<int>"`).
    pub spec_args: Option<String>,
    /// Base classes with their access.
    pub bases: Vec<(AccessSpecifier, Type)>,
    /// Members, in source order. Empty for a pure declaration.
    pub members: Vec<Member>,
    /// True when a body was present (i.e. this is a *definition*).
    pub is_definition: bool,
    /// True for an explicit class-template instantiation
    /// (`template class View<int>;`).
    pub is_explicit_instantiation: bool,
}

impl ClassDecl {
    /// Iterates over members that are methods.
    pub fn methods(&self) -> impl Iterator<Item = (&Member, &FunctionDecl)> {
        self.members.iter().filter_map(|m| match &m.decl.kind {
            DeclKind::Function(f) => Some((m, f)),
            _ => None,
        })
    }

    /// Iterates over members that are data fields.
    pub fn fields(&self) -> impl Iterator<Item = (&Member, &VarDecl)> {
        self.members.iter().filter_map(|m| match &m.decl.kind {
            DeclKind::Variable(v) => Some((m, v)),
            _ => None,
        })
    }
}

/// One enumerator of an enum.
#[derive(Debug, Clone, PartialEq)]
pub struct Enumerator {
    /// Enumerator name.
    pub name: String,
    /// Explicit value expression, rendered, when present.
    pub value: Option<String>,
}

/// An `enum` / `enum class` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDecl {
    /// Enum name (may be empty for anonymous enums).
    pub name: String,
    /// True for `enum class` / `enum struct`.
    pub scoped: bool,
    /// Underlying type, when specified (`enum E : int`).
    pub underlying: Option<Type>,
    /// The enumerators.
    pub enumerators: Vec<Enumerator>,
}

/// A type alias: `using X = T;` or `typedef T X;`.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasDecl {
    /// The introduced name.
    pub name: String,
    /// Template head for alias templates.
    pub template: Option<TemplateHeader>,
    /// The aliased type.
    pub target: Type,
}

/// How a function is named.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FunctionName {
    /// An ordinary identifier.
    Ident(String),
    /// `operator()`.
    CallOperator,
    /// Any other overloaded operator, by its token spelling (`"+"`, `"[]"`,
    /// `"=="`, ...).
    Operator(String),
    /// A constructor (name matches the class).
    Constructor(String),
    /// A destructor (`~Name`).
    Destructor(String),
}

impl FunctionName {
    /// The name as written in source (e.g. `operator()`), interned.
    /// `Ident`/`Constructor`/`CallOperator` never allocate after their
    /// spelling's first intern; `Operator`/`Destructor` compose one
    /// short temporary per call before the intern dedups it — identifier
    /// names are the hot case, and callers now compare `Sym`s instead
    /// of fresh `String`s.
    pub fn spelling(&self) -> Sym {
        match self {
            FunctionName::Ident(s) => Sym::intern(s),
            FunctionName::CallOperator => Sym::intern("operator()"),
            FunctionName::Operator(op) => Sym::intern(&format!("operator{op}")),
            FunctionName::Constructor(s) => Sym::intern(s),
            FunctionName::Destructor(s) => Sym::intern(&format!("~{s}")),
        }
    }

    /// The plain identifier when this is an ordinary function.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            FunctionName::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for FunctionName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spelling().as_str())
    }
}

/// One function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Parameter name (may be empty in declarations).
    pub name: String,
    /// Default argument, rendered, when present.
    pub default: Option<String>,
}

/// Specifiers attached to a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FunctionSpecs {
    /// `inline`.
    pub is_inline: bool,
    /// `static`.
    pub is_static: bool,
    /// `virtual`.
    pub is_virtual: bool,
    /// `constexpr`.
    pub is_constexpr: bool,
    /// `explicit`.
    pub is_explicit: bool,
    /// Trailing `const` (methods only).
    pub is_const: bool,
    /// `noexcept`.
    pub is_noexcept: bool,
    /// `override`.
    pub is_override: bool,
    /// `= default`.
    pub is_defaulted: bool,
    /// `= delete`.
    pub is_deleted: bool,
    /// This declaration is an explicit template instantiation
    /// (`template void f<int>(int);`).
    pub is_explicit_instantiation: bool,
}

/// A function (or method) declaration or definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// The function's name.
    pub name: FunctionName,
    /// For out-of-line member definitions, the class path
    /// (`add_y` in `void add_y::operator()(...)`).
    pub qualifier: Option<QualName>,
    /// Template head for function templates.
    pub template: Option<TemplateHeader>,
    /// Return type; `None` for constructors/destructors.
    pub ret: Option<Type>,
    /// Parameters.
    pub params: Vec<Param>,
    /// Specifiers.
    pub specs: FunctionSpecs,
    /// The body when this is a definition.
    pub body: Option<Block>,
}

impl FunctionDecl {
    /// True if this node carries a body.
    pub fn is_definition(&self) -> bool {
        self.body.is_some()
    }
}

/// A variable (or field) declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Declared type.
    pub ty: Type,
    /// Variable name.
    pub name: String,
    /// `static`.
    pub is_static: bool,
    /// `constexpr`.
    pub is_constexpr: bool,
    /// Initializer, when present.
    pub init: Option<Expr>,
    /// True when the initializer used `{}` rather than `=` or `()`.
    pub brace_init: bool,
}

/// The kind of a declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclKind {
    /// A namespace.
    Namespace(NamespaceDecl),
    /// A class/struct (declaration or definition).
    Class(ClassDecl),
    /// An enum.
    Enum(EnumDecl),
    /// A type alias (`using`/`typedef`), possibly templated.
    Alias(AliasDecl),
    /// A using-declaration `using Kokkos::LayoutRight;`.
    UsingDecl(QualName),
    /// `using namespace N;`.
    UsingNamespace(QualName),
    /// A function or method.
    Function(FunctionDecl),
    /// A variable or field.
    Variable(VarDecl),
    /// `static_assert(...)` — retained for fidelity, contents ignored.
    StaticAssert,
    /// An access specifier label inside a class (bookkeeping node; the
    /// parser folds these into [`Member::access`], but keeps the node so
    /// spans remain contiguous).
    Access(AccessSpecifier),
}

/// A declaration with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// What the declaration is.
    pub kind: DeclKind,
    /// Source range of the whole declaration (including any template head).
    pub span: Span,
}

impl Decl {
    /// Creates a declaration node.
    pub fn new(kind: DeclKind, span: Span) -> Self {
        Decl { kind, span }
    }

    /// The declared name, for kinds that introduce exactly one name —
    /// interned, so repeated calls stop allocating a fresh `String`.
    pub fn declared_name(&self) -> Option<Sym> {
        match &self.kind {
            DeclKind::Namespace(ns) => Some(Sym::intern(&ns.name)),
            DeclKind::Class(c) => Some(Sym::intern(&c.name)),
            DeclKind::Enum(e) => Some(Sym::intern(&e.name)),
            DeclKind::Alias(a) => Some(Sym::intern(&a.name)),
            DeclKind::Function(f) => Some(f.name.spelling()),
            DeclKind::Variable(v) => Some(Sym::intern(&v.name)),
            DeclKind::UsingDecl(_)
            | DeclKind::UsingNamespace(_)
            | DeclKind::StaticAssert
            | DeclKind::Access(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::types::Builtin;

    #[test]
    fn function_name_spellings() {
        assert_eq!(FunctionName::Ident("f".into()).spelling(), "f");
        assert_eq!(FunctionName::CallOperator.spelling(), "operator()");
        assert_eq!(FunctionName::Operator("+=".into()).spelling(), "operator+=");
        assert_eq!(FunctionName::Destructor("V".into()).spelling(), "~V");
        assert_eq!(FunctionName::Ident("f".into()).as_ident(), Some("f"));
        assert_eq!(FunctionName::CallOperator.as_ident(), None);
    }

    #[test]
    fn template_header_render() {
        let th = TemplateHeader {
            params: vec![
                TemplateParam::Type {
                    name: "T".into(),
                    pack: false,
                    default: None,
                },
                TemplateParam::NonType {
                    ty: Type::builtin(Builtin::Int),
                    name: "N".into(),
                    default: Some("4".into()),
                },
                TemplateParam::Type {
                    name: "Ts".into(),
                    pack: true,
                    default: None,
                },
            ],
        };
        assert_eq!(
            th.render(),
            "template <typename T, int N = 4, typename... Ts>"
        );
    }

    #[test]
    fn empty_template_header_is_explicit_specialization() {
        assert_eq!(TemplateHeader::default().render(), "template <>");
    }

    #[test]
    fn class_member_iterators() {
        let method = Decl::new(
            DeclKind::Function(FunctionDecl {
                name: FunctionName::CallOperator,
                qualifier: None,
                template: None,
                ret: Some(Type::void()),
                params: vec![],
                specs: FunctionSpecs::default(),
                body: None,
            }),
            Span::dummy(),
        );
        let field = Decl::new(
            DeclKind::Variable(VarDecl {
                ty: Type::builtin(Builtin::Int),
                name: "y".into(),
                is_static: false,
                is_constexpr: false,
                init: None,
                brace_init: false,
            }),
            Span::dummy(),
        );
        let class = ClassDecl {
            key: ClassKey::Struct,
            name: "add_y".into(),
            template: None,
            spec_args: None,
            bases: vec![],
            members: vec![
                Member {
                    access: AccessSpecifier::Public,
                    decl: field,
                },
                Member {
                    access: AccessSpecifier::Public,
                    decl: method,
                },
            ],
            is_definition: true,
            is_explicit_instantiation: false,
        };
        assert_eq!(class.methods().count(), 1);
        assert_eq!(class.fields().count(), 1);
        assert_eq!(class.fields().next().unwrap().1.name, "y");
    }

    #[test]
    fn walk_enters_namespaces() {
        let inner = Decl::new(
            DeclKind::Class(ClassDecl {
                key: ClassKey::Class,
                name: "OpenMP".into(),
                template: None,
                spec_args: None,
                bases: vec![],
                members: vec![],
                is_definition: false,
                is_explicit_instantiation: false,
            }),
            Span::dummy(),
        );
        let ns = Decl::new(
            DeclKind::Namespace(NamespaceDecl {
                name: "Kokkos".into(),
                is_inline: false,
                decls: vec![inner],
            }),
            Span::dummy(),
        );
        let tu = TranslationUnit { decls: vec![ns] };
        let all = tu.walk();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].declared_name().map(Sym::as_str), Some("OpenMP"));
    }
}
