//! Statements.

use crate::ast::decl::VarDecl;
use crate::ast::expr::Expr;
use crate::loc::Span;

/// A brace-enclosed sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Source range including the braces.
    pub span: Span,
}

impl Block {
    /// An empty block with a dummy span.
    pub fn empty() -> Self {
        Block {
            stmts: Vec::new(),
            span: Span::dummy(),
        }
    }
}

/// The init clause of a classic `for` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// `for (int i = 0; ...)`.
    Decl(VarDecl),
    /// `for (i = 0; ...)`.
    Expr(Expr),
    /// `for (; ...)`.
    Empty,
}

/// The kind of a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression statement.
    Expr(Expr),
    /// A local variable declaration (possibly several declarators flattened
    /// into consecutive statements by the parser).
    Decl(VarDecl),
    /// A nested block.
    Block(Block),
    /// `if (cond) then else?`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_branch: Box<Stmt>,
        /// Else-branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// Classic three-clause `for`.
    For {
        /// Init clause.
        init: Box<ForInit>,
        /// Condition (optional).
        cond: Option<Expr>,
        /// Increment (optional).
        inc: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// Range-based `for (decl : range)`.
    RangeFor {
        /// The loop variable.
        var: VarDecl,
        /// The range expression.
        range: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `return expr?;`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// `;`.
    Empty,
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Source range.
    pub span: Span,
}

impl Stmt {
    /// Creates a statement node.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_block() {
        let b = Block::empty();
        assert!(b.stmts.is_empty());
        assert!(!b.span.is_real());
    }

    #[test]
    fn stmt_construction() {
        let s = Stmt::new(StmtKind::Break, Span::dummy());
        assert_eq!(s.kind, StmtKind::Break);
    }
}
