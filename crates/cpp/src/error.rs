//! Error types for the C++ frontend.

use std::fmt;

use crate::loc::Span;

/// Convenient result alias used throughout the frontend.
pub type Result<T> = std::result::Result<T, CppError>;

/// An error produced by any stage of the C++ frontend.
///
/// The frontend is deliberately strict: rather than silently producing a
/// partial AST it reports the first problem it encounters, carrying the
/// source [`Span`] where available so callers can render a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CppError {
    /// A file could not be found in the virtual file system.
    FileNotFound {
        /// Path as requested (after search-path resolution attempts).
        path: String,
    },
    /// An `#include` could not be resolved against the search paths.
    IncludeNotFound {
        /// The header name as written between quotes or angle brackets.
        name: String,
        /// Location of the `#include` directive.
        span: Span,
    },
    /// `#include` recursion exceeded the nesting limit (include cycle).
    IncludeCycle {
        /// The header that closed the cycle.
        name: String,
        /// Location of the offending `#include`.
        span: Span,
    },
    /// A malformed preprocessor directive.
    Directive {
        /// Human-readable description of the problem.
        message: String,
        /// Location of the directive.
        span: Span,
    },
    /// A lexical error (unterminated string, stray character, ...).
    Lex {
        /// Human-readable description of the problem.
        message: String,
        /// Location of the offending character(s).
        span: Span,
    },
    /// A syntax error found by the parser.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// Location of the unexpected token.
        span: Span,
    },
}

impl CppError {
    /// The source span associated with this error, if any.
    pub fn span(&self) -> Option<Span> {
        match self {
            CppError::FileNotFound { .. } => None,
            CppError::IncludeNotFound { span, .. }
            | CppError::IncludeCycle { span, .. }
            | CppError::Directive { span, .. }
            | CppError::Lex { span, .. }
            | CppError::Parse { span, .. } => Some(*span),
        }
    }
}

impl fmt::Display for CppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CppError::FileNotFound { path } => write!(f, "file not found: {path}"),
            CppError::IncludeNotFound { name, .. } => {
                write!(f, "include not found: {name}")
            }
            CppError::IncludeCycle { name, .. } => {
                write!(f, "include cycle detected while including {name}")
            }
            CppError::Directive { message, .. } => {
                write!(f, "invalid preprocessor directive: {message}")
            }
            CppError::Lex { message, .. } => write!(f, "lexical error: {message}"),
            CppError::Parse { message, .. } => write!(f, "syntax error: {message}"),
        }
    }
}

impl std::error::Error for CppError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::FileId;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = CppError::FileNotFound {
            path: "missing.hpp".into(),
        };
        assert_eq!(err.to_string(), "file not found: missing.hpp");
        assert!(err.span().is_none());
    }

    #[test]
    fn span_is_carried() {
        let span = Span::new(FileId(3), 10, 20);
        let err = CppError::Parse {
            message: "expected `;`".into(),
            span,
        };
        assert_eq!(err.span(), Some(span));
        assert!(err.to_string().contains("expected `;`"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CppError>();
    }
}
