//! A content-addressed, dependency-validated parse cache.
//!
//! A real compiler discovers a translation unit's include closure only
//! *while* preprocessing it, so — exactly like `make` depfiles or ccache's
//! direct mode — the cache records the closure observed on the previous
//! parse and validates it against current file hashes on lookup:
//!
//! * **key**: `(main path, defines hash)` selects the entry;
//! * **validation**: the entry is a hit iff every file that entered the
//!   previous parse (the main file and all transitively included headers)
//!   still has the same content hash;
//! * **artifact**: the parsed TU behind an [`Arc`], so hits are O(closure)
//!   hash comparisons and one pointer clone — no preprocessing, no lexing,
//!   no parsing.
//!
//! Every entry also carries a `closure_hash` content-addressing the whole
//! input set (main path + defines + every dependency's hash). Downstream
//! stages key *their* artifacts on it: if the closure hash is unchanged,
//! the parse — and anything derived only from it — cannot have changed.
//!
//! With an attached [`yalla_store::Store`], the cache additionally
//! persists each parse's *dependency manifest* (the depfile: every file in
//! the closure with its hash, plus the closure hash) to disk under the
//! `parse` namespace. ASTs never leave memory — the manifest exists so a
//! *fresh process* can prove via [`ParseCache::probe_disk`] that its input
//! set is byte-identical to a previous parse and recover the closure hash
//! without preprocessing anything, which is the anchor the session layer
//! needs to look up a whole-run artifact bundle on disk.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use yalla_store::module::{ModuleBuilder, ModuleReader, PartitionBuilder};
use yalla_store::{Store, NS_PARSE};

use crate::error::Result;
use crate::frontend::{Frontend, ParsedTu};
use crate::hash::{self, Fnv64};
use crate::vfs::Vfs;

/// How a cache lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// Valid entry found; the cached artifact was reused.
    Hit,
    /// No entry existed for the key; the artifact was computed.
    Miss,
    /// An entry existed but its inputs changed; the stale artifact was
    /// recomputed and replaced.
    Invalidated,
}

impl CacheLookup {
    /// True for [`CacheLookup::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, CacheLookup::Hit)
    }

    /// Display label (`hit`, `miss`, `inval`).
    pub fn label(self) -> &'static str {
        match self {
            CacheLookup::Hit => "hit",
            CacheLookup::Miss => "miss",
            CacheLookup::Invalidated => "inval",
        }
    }
}

/// A successfully validated (or freshly computed) cached parse.
#[derive(Debug, Clone)]
pub struct CachedParse {
    /// The parsed TU (shared; cloning is a pointer bump).
    pub tu: Arc<ParsedTu>,
    /// Content address of the parse's entire input set.
    pub closure_hash: u64,
    /// How the lookup resolved.
    pub lookup: CacheLookup,
}

#[derive(Debug)]
struct Entry {
    /// `(path, content hash)` of every file that entered the parse, main
    /// file first.
    deps: Vec<(String, u64)>,
    closure_hash: u64,
    tu: Arc<ParsedTu>,
}

/// Parse versions retained per `(path, defines)` key. A small history
/// makes edit-then-revert (comment out, rebuild, undo, rebuild — the
/// A/B pattern of an interactive session) a cache *hit* instead of a
/// recompute, at the cost of a few retained ASTs per TU.
const VERSIONS_PER_KEY: usize = 4;

/// A per-TU parse cache keyed by `(main path, defines)` and validated
/// against file content hashes. Each key retains up to
/// [`VERSIONS_PER_KEY`] recent parses, so reverting an edit re-hits the
/// version cached before the edit.
///
/// The cache is internally synchronized: [`ParseCache::parse`] takes
/// `&self`, so one cache (behind an `Arc`) serves concurrent per-TU
/// parse tasks. The map lock is held only for lookup and insertion —
/// never across an actual parse — so misses on different TUs
/// preprocess and parse in parallel. Two threads missing the *same*
/// key may both parse; the loser's insert deduplicates by closure
/// hash, so the history stays consistent (the work is wasted, never
/// wrong).
///
/// # Example
///
/// ```
/// use yalla_cpp::cache::{CacheLookup, ParseCache};
/// use yalla_cpp::vfs::Vfs;
///
/// let mut vfs = Vfs::new();
/// vfs.add_file("a.hpp", "int x;");
/// vfs.add_file("m.cpp", "#include \"a.hpp\"\nint y;");
/// let cache = ParseCache::new();
/// let first = cache.parse(&vfs, &[], "m.cpp").unwrap();
/// assert_eq!(first.lookup, CacheLookup::Miss);
/// let second = cache.parse(&vfs, &[], "m.cpp").unwrap();
/// assert_eq!(second.lookup, CacheLookup::Hit);
/// assert_eq!(first.closure_hash, second.closure_hash);
/// ```
#[derive(Debug, Default)]
pub struct ParseCache {
    entries: Mutex<HashMap<(String, u64), Vec<Entry>>>,
    store: Option<Arc<Store>>,
}

impl ParseCache {
    /// An empty cache.
    pub fn new() -> Self {
        ParseCache::default()
    }

    /// An empty cache that persists dependency manifests to `store`.
    pub fn with_store(store: Option<Arc<Store>>) -> Self {
        ParseCache {
            entries: Mutex::new(HashMap::new()),
            store,
        }
    }

    /// The attached on-disk store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Key of the on-disk dependency manifest for `(path, defines)` with
    /// the root file's own content hash folded in. Without the root hash,
    /// an edited main file would leave the stale manifest squatting on
    /// the key (the dedup `contains` check would skip the overwrite) and
    /// every later process would probe the dead manifest forever; with
    /// it, each content generation gets its own slot and the LRU sweeps
    /// out the old ones.
    fn manifest_key(path: &str, defines_hash: u64, root_hash: u64) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(path);
        h.write_u64(defines_hash);
        h.write_u64(root_hash);
        h.finish()
    }

    /// Manifest payloads are modules ([`yalla_store::module`]): dep paths
    /// interned once, one fixed 12-byte row (`path StrRef`, `content
    /// hash u64`) per closure file, closure hash in a meta partition.
    /// [`ParseCache::probe_disk`] validates the rows straight off the
    /// store's payload view without materializing a single `String`.
    const MODULE_KIND: u8 = 1;
    const PART_DEPS: u8 = 1;
    const PART_META: u8 = 2;
    const DEP_ROW_SIZE: usize = 12;

    fn encode_manifest(deps: &[(String, u64)], closure_hash: u64) -> Vec<u8> {
        let mut m = ModuleBuilder::new(Self::MODULE_KIND);
        let mut rows = PartitionBuilder::fixed(Self::PART_DEPS, Self::DEP_ROW_SIZE);
        for (path, hash) in deps {
            let path = m.intern(path);
            let row = rows.row();
            row.put_u32(path.0);
            row.put_u64(*hash);
        }
        m.push(rows);
        let mut meta = PartitionBuilder::var(Self::PART_META);
        meta.row().put_varint(closure_hash);
        m.push(meta);
        m.finish()
    }

    /// Best-effort write of the manifest for `deps` if the store does not
    /// already hold one for this content (`contains` is a cheap stat).
    fn persist_manifest(
        &self,
        key: &(String, u64),
        root_hash: Option<u64>,
        deps: &[(String, u64)],
        closure_hash: u64,
    ) {
        let (Some(store), Some(root_hash)) = (&self.store, root_hash) else {
            return;
        };
        let disk_key = Self::manifest_key(&key.0, key.1, root_hash);
        if !store.contains(NS_PARSE, disk_key) {
            store.put(
                NS_PARSE,
                disk_key,
                &Self::encode_manifest(deps, closure_hash),
            );
        }
    }

    /// Validates the *on-disk* dependency manifest for `path` against the
    /// current file tree: returns the previous parse's closure hash when
    /// every file in the recorded include closure still has the same
    /// content hash. No TU is produced (ASTs are not persisted) — the
    /// session layer uses the recovered closure hash to address whole-run
    /// artifact bundles on disk. Returns `None` (with no side effects
    /// beyond the store's own hit/miss counters) when no store is
    /// attached, no manifest exists, or any dependency changed.
    pub fn probe_disk(&self, vfs: &Vfs, defines: &[(String, String)], path: &str) -> Option<u64> {
        let store = self.store.as_ref()?;
        let root_hash = vfs.hash_of(path)?;
        let key = Self::manifest_key(path, hash::hash_defines(defines), root_hash);
        let view = store.get_view(NS_PARSE, key)?;
        // Zero-copy validation: each dep row is read in place from the
        // record's payload view — no paths are copied out of the buffer.
        let m = ModuleReader::parse(&view).ok()?;
        if m.kind() != Self::MODULE_KIND {
            return None;
        }
        for row in m.part(Self::PART_DEPS)?.iter() {
            let dep = m.get(row.str_at(0).ok()?).ok()?;
            let hash = row.u64_at(4).ok()?;
            if vfs.hash_of(dep) != Some(hash) {
                return None;
            }
        }
        m.part(Self::PART_META)?.reader().get_varint().ok()
    }

    /// Number of cached TUs.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("parse cache lock").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().expect("parse cache lock").is_empty()
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.entries.lock().expect("parse cache lock").clear();
    }

    /// Looks up `path` without parsing: returns the validated cached TU
    /// on a hit (counting it exactly as [`ParseCache::parse`] would), or
    /// `None` — with no metric side effects — when a parse would be
    /// needed. The session layer probes before building its stage DAG so
    /// a warm parse short-circuits scheduling entirely.
    pub fn probe(
        &self,
        vfs: &Vfs,
        defines: &[(String, String)],
        path: &str,
    ) -> Option<CachedParse> {
        let key = (path.to_string(), hash::hash_defines(defines));
        self.lookup_and_repair(&key, vfs)
    }

    /// The hit path plus disk-manifest repair: a memory hit whose
    /// manifest is missing on disk (evicted, or a failed earlier write)
    /// re-persists it, so disk warmth converges back toward memory
    /// warmth.
    fn lookup_and_repair(&self, key: &(String, u64), vfs: &Vfs) -> Option<CachedParse> {
        let (cached, deps) = {
            let mut entries = self.entries.lock().expect("parse cache lock");
            let cached = Self::lookup_valid(&mut entries, key, vfs)?;
            // lookup_valid promoted the hit to versions[0].
            let deps = self.store.is_some().then(|| entries[key][0].deps.clone());
            (cached, deps)
        };
        if let Some(deps) = deps {
            self.persist_manifest(key, vfs.hash_of(&key.0), &deps, cached.closure_hash);
        }
        Some(cached)
    }

    /// The shared hit path: finds a validated version for `key`, promotes
    /// it to most-recently-used, and counts the hit.
    fn lookup_valid(
        entries: &mut HashMap<(String, u64), Vec<Entry>>,
        key: &(String, u64),
        vfs: &Vfs,
    ) -> Option<CachedParse> {
        let versions = entries.get_mut(key)?;
        let valid = versions.iter().position(|entry| {
            entry
                .deps
                .iter()
                .all(|(dep, h)| vfs.hash_of(dep) == Some(*h))
        })?;
        // Most-recently-used first, so the history evicts the version
        // least likely to come back.
        let entry = versions.remove(valid);
        let cached = CachedParse {
            tu: Arc::clone(&entry.tu),
            closure_hash: entry.closure_hash,
            lookup: CacheLookup::Hit,
        };
        versions.insert(0, entry);
        yalla_obs::count(yalla_obs::metrics::names::CACHE_HITS, 1);
        Some(cached)
    }

    /// Parses `path` against `vfs` with `defines`, reusing the cached TU
    /// when the whole include closure is byte-identical to the previous
    /// parse.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (which are never cached).
    pub fn parse(
        &self,
        vfs: &Vfs,
        defines: &[(String, String)],
        path: &str,
    ) -> Result<CachedParse> {
        let key = (path.to_string(), hash::hash_defines(defines));
        if let Some(cached) = self.lookup_and_repair(&key, vfs) {
            return Ok(cached);
        }
        let stale = self
            .entries
            .lock()
            .expect("parse cache lock")
            .contains_key(&key);
        // Lock released: the parse itself runs unsynchronized, so cache
        // misses on different TUs overlap on the executor.
        yalla_obs::count(yalla_obs::metrics::names::CACHE_MISSES, 1);
        if stale {
            yalla_obs::count(yalla_obs::metrics::names::CACHE_INVALIDATIONS, 1);
        }

        let mut fe = Frontend::new(vfs.clone());
        for (k, v) in defines {
            fe.define(k, v);
        }
        let tu = Arc::new(fe.parse_translation_unit(path)?);

        let mut deps = Vec::with_capacity(tu.stats.files_entered.len());
        let mut closure = Fnv64::new();
        closure.write_str(path);
        closure.write_u64(key.1);
        for &file in &tu.stats.files_entered {
            let dep_path = vfs.path(file).to_string();
            let dep_hash = vfs.file_hash(file);
            closure.write_str(&dep_path);
            closure.write_u64(dep_hash);
            deps.push((dep_path, dep_hash));
        }
        let closure_hash = closure.finish();
        self.persist_manifest(&key, vfs.hash_of(path), &deps, closure_hash);
        let mut entries = self.entries.lock().expect("parse cache lock");
        let versions = entries.entry(key).or_default();
        versions.retain(|e| e.closure_hash != closure_hash);
        versions.insert(
            0,
            Entry {
                deps,
                closure_hash,
                tu: Arc::clone(&tu),
            },
        );
        versions.truncate(VERSIONS_PER_KEY);
        Ok(CachedParse {
            tu,
            closure_hash,
            lookup: if stale {
                CacheLookup::Invalidated
            } else {
                CacheLookup::Miss
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vfs() -> Vfs {
        let mut vfs = Vfs::new();
        vfs.add_file("lib.hpp", "#pragma once\nnamespace l { class C; }\n");
        vfs.add_file("other.hpp", "#pragma once\nint unrelated;\n");
        vfs.add_file("main.cpp", "#include \"lib.hpp\"\nint y;\n");
        vfs
    }

    #[test]
    fn second_parse_is_a_hit_sharing_the_ast() {
        let v = vfs();
        let cache = ParseCache::new();
        let a = cache.parse(&v, &[], "main.cpp").unwrap();
        let b = cache.parse(&v, &[], "main.cpp").unwrap();
        assert_eq!(a.lookup, CacheLookup::Miss);
        assert_eq!(b.lookup, CacheLookup::Hit);
        assert!(Arc::ptr_eq(&a.tu, &b.tu));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn editing_a_dependency_invalidates() {
        let mut v = vfs();
        let cache = ParseCache::new();
        let a = cache.parse(&v, &[], "main.cpp").unwrap();
        v.apply_edit(
            "lib.hpp",
            "#pragma once\nnamespace l { class C; class D; }\n",
        )
        .unwrap();
        let b = cache.parse(&v, &[], "main.cpp").unwrap();
        assert_eq!(b.lookup, CacheLookup::Invalidated);
        assert_ne!(a.closure_hash, b.closure_hash);
        // Reverting restores the original closure hash and re-hits the
        // version cached before the edit — no reparse.
        v.apply_edit("lib.hpp", "#pragma once\nnamespace l { class C; }\n")
            .unwrap();
        let c = cache.parse(&v, &[], "main.cpp").unwrap();
        assert_eq!(c.lookup, CacheLookup::Hit);
        assert_eq!(a.closure_hash, c.closure_hash);
        assert!(Arc::ptr_eq(&a.tu, &c.tu));
    }

    #[test]
    fn version_history_is_bounded() {
        let mut v = vfs();
        let cache = ParseCache::new();
        for i in 0..10 {
            v.apply_edit("lib.hpp", format!("#pragma once\nint v{i};\n"))
                .unwrap();
            cache.parse(&v, &[], "main.cpp").unwrap();
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.entries.lock().unwrap()[&("main.cpp".to_string(), hash::hash_defines(&[]))].len(),
            VERSIONS_PER_KEY
        );
        // The most recent content is still a hit...
        assert!(cache.parse(&v, &[], "main.cpp").unwrap().lookup.is_hit());
        // ...and re-caching identical content does not duplicate it.
        assert_eq!(
            cache.entries.lock().unwrap()[&("main.cpp".to_string(), hash::hash_defines(&[]))].len(),
            VERSIONS_PER_KEY
        );
    }

    #[test]
    fn editing_an_unreached_file_keeps_the_hit() {
        let mut v = vfs();
        let cache = ParseCache::new();
        cache.parse(&v, &[], "main.cpp").unwrap();
        v.apply_edit("other.hpp", "#pragma once\nint changed;\n")
            .unwrap();
        let b = cache.parse(&v, &[], "main.cpp").unwrap();
        assert_eq!(b.lookup, CacheLookup::Hit);
    }

    #[test]
    fn defines_partition_the_cache() {
        let v = vfs();
        let cache = ParseCache::new();
        cache.parse(&v, &[], "main.cpp").unwrap();
        let defined = vec![("MODE".to_string(), "2".to_string())];
        let b = cache.parse(&v, &defined, "main.cpp").unwrap();
        assert_eq!(b.lookup, CacheLookup::Miss);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_tus_cache_independently() {
        let mut v = vfs();
        v.add_file("second.cpp", "#include \"other.hpp\"\nint z;\n");
        let cache = ParseCache::new();
        cache.parse(&v, &[], "main.cpp").unwrap();
        cache.parse(&v, &[], "second.cpp").unwrap();
        // Editing other.hpp touches only second.cpp's closure.
        v.apply_edit("other.hpp", "#pragma once\nint changed;\n")
            .unwrap();
        assert!(cache.parse(&v, &[], "main.cpp").unwrap().lookup.is_hit());
        assert_eq!(
            cache.parse(&v, &[], "second.cpp").unwrap().lookup,
            CacheLookup::Invalidated
        );
    }

    #[test]
    fn concurrent_parses_share_one_cache() {
        // 8 threads × 2 TUs through one &self cache: every thread gets a
        // correct TU, and at the end each TU re-hits.
        let mut v = vfs();
        v.add_file("second.cpp", "#include \"other.hpp\"\nint z;\n");
        let cache = ParseCache::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = &cache;
                let v = &v;
                scope.spawn(move || {
                    let path = if t % 2 == 0 { "main.cpp" } else { "second.cpp" };
                    for _ in 0..4 {
                        cache.parse(v, &[], path).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 2);
        assert!(cache.parse(&v, &[], "main.cpp").unwrap().lookup.is_hit());
        assert!(cache.parse(&v, &[], "second.cpp").unwrap().lookup.is_hit());
    }

    #[test]
    fn disk_manifest_probe_survives_process_restart() {
        let dir =
            std::env::temp_dir().join(format!("yalla-parsecache-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).expect("open store"));
        let v = vfs();
        let cache = ParseCache::with_store(Some(Arc::clone(&store)));
        let parsed = cache.parse(&v, &[], "main.cpp").unwrap();

        // A fresh cache on the same store (a restarted process): the
        // memory tier is cold, but the disk manifest validates and
        // recovers the closure hash without parsing anything.
        let fresh = ParseCache::with_store(Some(Arc::clone(&store)));
        assert!(fresh.probe(&v, &[], "main.cpp").is_none());
        assert_eq!(
            fresh.probe_disk(&v, &[], "main.cpp"),
            Some(parsed.closure_hash)
        );

        // Editing a file in the closure defeats the manifest; editing an
        // unreached file does not.
        let mut edited = v.clone();
        edited
            .apply_edit("lib.hpp", "#pragma once\nnamespace l { class X; }\n")
            .unwrap();
        assert_eq!(fresh.probe_disk(&edited, &[], "main.cpp"), None);
        let mut unrelated = v.clone();
        unrelated
            .apply_edit("other.hpp", "#pragma once\nint changed;\n")
            .unwrap();
        assert_eq!(
            fresh.probe_disk(&unrelated, &[], "main.cpp"),
            Some(parsed.closure_hash)
        );

        // Without a store, probe_disk is inert.
        assert_eq!(ParseCache::new().probe_disk(&v, &[], "main.cpp"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_not_cached() {
        let mut v = Vfs::new();
        v.add_file("bad.cpp", "#include \"missing.hpp\"\n");
        let cache = ParseCache::new();
        assert!(cache.parse(&v, &[], "bad.cpp").is_err());
        assert!(cache.is_empty());
        // Adding the header makes it parse (a miss, not a stale error).
        v.add_file("missing.hpp", "int ok;\n");
        let ok = cache.parse(&v, &[], "bad.cpp").unwrap();
        assert_eq!(ok.lookup, CacheLookup::Miss);
    }
}
