//! A content-addressed, dependency-validated parse cache.
//!
//! A real compiler discovers a translation unit's include closure only
//! *while* preprocessing it, so — exactly like `make` depfiles or ccache's
//! direct mode — the cache records the closure observed on the previous
//! parse and validates it against current file hashes on lookup:
//!
//! * **key**: `(main path, defines hash)` selects the entry;
//! * **validation**: the entry is a hit iff every file that entered the
//!   previous parse (the main file and all transitively included headers)
//!   still has the same content hash;
//! * **artifact**: the parsed TU behind an [`Arc`], so hits are O(closure)
//!   hash comparisons and one pointer clone — no preprocessing, no lexing,
//!   no parsing.
//!
//! Every entry also carries a `closure_hash` content-addressing the whole
//! input set (main path + defines + every dependency's hash). Downstream
//! stages key *their* artifacts on it: if the closure hash is unchanged,
//! the parse — and anything derived only from it — cannot have changed.
//!
//! With an attached [`yalla_store::Store`], the cache additionally
//! persists each parse's *dependency manifest* (the depfile: every file in
//! the closure with its hash, plus the closure hash) to disk under the
//! `parse` namespace. ASTs never leave memory — the manifest exists so a
//! *fresh process* can prove via [`ParseCache::probe_disk`] that its input
//! set is byte-identical to a previous parse and recover the closure hash
//! without preprocessing anything, which is the anchor the session layer
//! needs to look up a whole-run artifact bundle on disk.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use yalla_store::module::{ModuleBuilder, ModuleReader, PartitionBuilder};
use yalla_store::{Store, NS_PARSE};

use crate::error::Result;
use crate::frontend::{Frontend, ParsedTu};
use crate::hash::{self, Fnv64};
use crate::vfs::Vfs;

/// Sentinel for "no explicit budget set — consult `YALLA_MEM_BUDGET`".
const BUDGET_UNSET: u64 = u64::MAX;

/// Process-wide in-memory byte budget, shared by every cache in
/// [`BudgetMode::Global`] mode. `BUDGET_UNSET` defers to the
/// `YALLA_MEM_BUDGET` environment variable; `0` means unlimited.
static GLOBAL_MEM_BUDGET: AtomicU64 = AtomicU64::new(BUDGET_UNSET);

/// Estimated bytes of parsed TUs resident across every in-memory parse
/// cache in the process, and the high-water mark since the last reset.
static RESIDENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_RESIDENT_BYTES: AtomicU64 = AtomicU64::new(0);

fn env_mem_budget() -> Option<u64> {
    static CACHED: OnceLock<Option<u64>> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let raw = std::env::var("YALLA_MEM_BUDGET").ok()?;
        // An unparsable value is ignored rather than fatal: the CLI flag
        // validates loudly; the env var is best-effort plumbing.
        parse_mem_budget(&raw).ok().filter(|&b| b > 0)
    })
}

/// Sets the process-wide parse-cache byte budget. `None` (or `Some(0)`)
/// disables eviction. Overrides `YALLA_MEM_BUDGET` for every cache in
/// [`BudgetMode::Global`] mode; the budget is consulted on each insert,
/// so a change applies to already-open caches too.
pub fn set_mem_budget(bytes: Option<u64>) {
    GLOBAL_MEM_BUDGET.store(bytes.unwrap_or(0), Ordering::Relaxed);
}

/// The effective process-wide budget: the explicit
/// [`set_mem_budget`] value if one was set, else `YALLA_MEM_BUDGET`,
/// else unlimited.
pub fn mem_budget() -> Option<u64> {
    match GLOBAL_MEM_BUDGET.load(Ordering::Relaxed) {
        BUDGET_UNSET => env_mem_budget(),
        0 => None,
        n => Some(n),
    }
}

/// Parses a human-readable byte budget: a decimal count with an
/// optional binary suffix (`k`/`K` = 2^10, `m`/`M` = 2^20, `g`/`G` =
/// 2^30), e.g. `64M`, `512k`, `2G`, `1048576`. `0` disables the budget.
///
/// # Errors
///
/// Returns a human-readable message for empty, non-numeric, or
/// overflowing inputs.
pub fn parse_mem_budget(s: &str) -> std::result::Result<u64, String> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k') | Some('K') => (&t[..t.len() - 1], 1u64 << 10),
        Some('m') | Some('M') => (&t[..t.len() - 1], 1u64 << 20),
        Some('g') | Some('G') => (&t[..t.len() - 1], 1u64 << 30),
        _ => (t, 1),
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid byte budget {t:?} (want e.g. 64M, 512k, 1048576)"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("byte budget {t:?} overflows u64"))
}

/// Estimated bytes of parsed TUs currently resident in in-memory parse
/// caches, process-wide.
pub fn bytes_resident() -> u64 {
    RESIDENT_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`bytes_resident`] since process start or the
/// last [`reset_peak_resident`].
pub fn peak_bytes_resident() -> u64 {
    PEAK_RESIDENT_BYTES.load(Ordering::Relaxed)
}

/// Resets the [`peak_bytes_resident`] high-water mark to the current
/// resident total (benches call this between presets).
pub fn reset_peak_resident() {
    PEAK_RESIDENT_BYTES.store(RESIDENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn add_resident(bytes: u64) {
    let now = RESIDENT_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_RESIDENT_BYTES.fetch_max(now, Ordering::Relaxed);
    yalla_obs::gauge(yalla_obs::metrics::names::CACHE_BYTES_RESIDENT, now as i64);
}

fn sub_resident(bytes: u64) {
    let prev = RESIDENT_BYTES.fetch_sub(bytes, Ordering::Relaxed);
    yalla_obs::gauge(
        yalla_obs::metrics::names::CACHE_BYTES_RESIDENT,
        prev.saturating_sub(bytes) as i64,
    );
}

/// Where a cache takes its in-memory byte budget from.
#[derive(Debug, Clone, Copy, Default)]
pub enum BudgetMode {
    /// Follow the process-wide budget ([`set_mem_budget`] /
    /// `YALLA_MEM_BUDGET`), re-read on every insert.
    #[default]
    Global,
    /// A fixed per-cache budget; `None` disables eviction. Used by
    /// tests and benches that must not depend on process-global state.
    Fixed(Option<u64>),
}

/// How a cache lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// Valid entry found; the cached artifact was reused.
    Hit,
    /// No entry existed for the key; the artifact was computed.
    Miss,
    /// An entry existed but its inputs changed; the stale artifact was
    /// recomputed and replaced.
    Invalidated,
}

impl CacheLookup {
    /// True for [`CacheLookup::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, CacheLookup::Hit)
    }

    /// Display label (`hit`, `miss`, `inval`).
    pub fn label(self) -> &'static str {
        match self {
            CacheLookup::Hit => "hit",
            CacheLookup::Miss => "miss",
            CacheLookup::Invalidated => "inval",
        }
    }
}

/// A successfully validated (or freshly computed) cached parse.
#[derive(Debug, Clone)]
pub struct CachedParse {
    /// The parsed TU (shared; cloning is a pointer bump).
    pub tu: Arc<ParsedTu>,
    /// Content address of the parse's entire input set.
    pub closure_hash: u64,
    /// How the lookup resolved.
    pub lookup: CacheLookup,
}

#[derive(Debug)]
struct Entry {
    /// `(path, content hash)` of every file that entered the parse, main
    /// file first.
    deps: Vec<(String, u64)>,
    closure_hash: u64,
    tu: Arc<ParsedTu>,
    /// Deterministic estimate of this entry's in-memory footprint
    /// (see [`ParseCache::approx_entry_bytes`]).
    bytes: u64,
    /// LRU clock tick of the last hit or insert; the eviction scan
    /// removes the minimum-stamp entry first.
    stamp: u64,
}

/// Parse versions retained per `(path, defines)` key. A small history
/// makes edit-then-revert (comment out, rebuild, undo, rebuild — the
/// A/B pattern of an interactive session) a cache *hit* instead of a
/// recompute, at the cost of a few retained ASTs per TU.
const VERSIONS_PER_KEY: usize = 4;

/// A per-TU parse cache keyed by `(main path, defines)` and validated
/// against file content hashes. Each key retains up to
/// [`VERSIONS_PER_KEY`] recent parses, so reverting an edit re-hits the
/// version cached before the edit.
///
/// The cache is internally synchronized: [`ParseCache::parse`] takes
/// `&self`, so one cache (behind an `Arc`) serves concurrent per-TU
/// parse tasks. The map lock is held only for lookup and insertion —
/// never across an actual parse — so misses on different TUs
/// preprocess and parse in parallel. Two threads missing the *same*
/// key may both parse; the loser's insert deduplicates by closure
/// hash, so the history stays consistent (the work is wasted, never
/// wrong).
///
/// # Example
///
/// ```
/// use yalla_cpp::cache::{CacheLookup, ParseCache};
/// use yalla_cpp::vfs::Vfs;
///
/// let mut vfs = Vfs::new();
/// vfs.add_file("a.hpp", "int x;");
/// vfs.add_file("m.cpp", "#include \"a.hpp\"\nint y;");
/// let cache = ParseCache::new();
/// let first = cache.parse(&vfs, &[], "m.cpp").unwrap();
/// assert_eq!(first.lookup, CacheLookup::Miss);
/// let second = cache.parse(&vfs, &[], "m.cpp").unwrap();
/// assert_eq!(second.lookup, CacheLookup::Hit);
/// assert_eq!(first.closure_hash, second.closure_hash);
/// ```
#[derive(Debug, Default)]
pub struct ParseCache {
    entries: Mutex<HashMap<(String, u64), Vec<Entry>>>,
    store: Option<Arc<Store>>,
    /// In-memory byte budget policy; enforced after every insert.
    budget: BudgetMode,
    /// Estimated bytes held by *this* cache (the budget is per cache;
    /// the process-wide gauge sums every cache).
    resident: AtomicU64,
    /// Monotone LRU clock; bumped on every hit and insert.
    clock: AtomicU64,
}

impl ParseCache {
    /// An empty cache.
    pub fn new() -> Self {
        ParseCache::default()
    }

    /// An empty cache that persists dependency manifests to `store`.
    pub fn with_store(store: Option<Arc<Store>>) -> Self {
        ParseCache {
            entries: Mutex::new(HashMap::new()),
            store,
            budget: BudgetMode::Global,
            resident: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// An empty cache with a fixed per-cache byte budget (`None`
    /// disables eviction), independent of the process-global setting.
    pub fn with_budget(store: Option<Arc<Store>>, budget: Option<u64>) -> Self {
        let mut cache = ParseCache::with_store(store);
        cache.budget = BudgetMode::Fixed(budget);
        cache
    }

    /// The byte budget this cache enforces right now.
    pub fn effective_budget(&self) -> Option<u64> {
        match self.budget {
            BudgetMode::Fixed(b) => b.filter(|&b| b > 0),
            BudgetMode::Global => mem_budget(),
        }
    }

    /// Estimated bytes of parsed TUs this cache currently holds.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// The attached on-disk store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Key of the on-disk dependency manifest for `(path, defines)` with
    /// the root file's own content hash folded in. Without the root hash,
    /// an edited main file would leave the stale manifest squatting on
    /// the key (the dedup `contains` check would skip the overwrite) and
    /// every later process would probe the dead manifest forever; with
    /// it, each content generation gets its own slot and the LRU sweeps
    /// out the old ones.
    fn manifest_key(path: &str, defines_hash: u64, root_hash: u64) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(path);
        h.write_u64(defines_hash);
        h.write_u64(root_hash);
        h.finish()
    }

    /// Manifest payloads are modules ([`yalla_store::module`]): dep paths
    /// interned once, one fixed 12-byte row (`path StrRef`, `content
    /// hash u64`) per closure file, closure hash in a meta partition.
    /// [`ParseCache::probe_disk`] validates the rows straight off the
    /// store's payload view without materializing a single `String`.
    const MODULE_KIND: u8 = 1;
    const PART_DEPS: u8 = 1;
    const PART_META: u8 = 2;
    const DEP_ROW_SIZE: usize = 12;

    fn encode_manifest(deps: &[(String, u64)], closure_hash: u64) -> Vec<u8> {
        let mut m = ModuleBuilder::new(Self::MODULE_KIND);
        let mut rows = PartitionBuilder::fixed(Self::PART_DEPS, Self::DEP_ROW_SIZE);
        for (path, hash) in deps {
            let path = m.intern(path);
            let row = rows.row();
            row.put_u32(path.0);
            row.put_u64(*hash);
        }
        m.push(rows);
        let mut meta = PartitionBuilder::var(Self::PART_META);
        meta.row().put_varint(closure_hash);
        m.push(meta);
        m.finish()
    }

    /// Best-effort write of the manifest for `deps` if the store does not
    /// already hold one for this content (`contains` is a cheap stat).
    fn persist_manifest(
        &self,
        key: &(String, u64),
        root_hash: Option<u64>,
        deps: &[(String, u64)],
        closure_hash: u64,
    ) {
        let (Some(store), Some(root_hash)) = (&self.store, root_hash) else {
            return;
        };
        let disk_key = Self::manifest_key(&key.0, key.1, root_hash);
        if !store.contains(NS_PARSE, disk_key) {
            store.put(
                NS_PARSE,
                disk_key,
                &Self::encode_manifest(deps, closure_hash),
            );
        }
    }

    /// Validates the *on-disk* dependency manifest for `path` against the
    /// current file tree: returns the previous parse's closure hash when
    /// every file in the recorded include closure still has the same
    /// content hash. No TU is produced (ASTs are not persisted) — the
    /// session layer uses the recovered closure hash to address whole-run
    /// artifact bundles on disk. Returns `None` (with no side effects
    /// beyond the store's own hit/miss counters) when no store is
    /// attached, no manifest exists, or any dependency changed.
    pub fn probe_disk(&self, vfs: &Vfs, defines: &[(String, String)], path: &str) -> Option<u64> {
        let store = self.store.as_ref()?;
        let root_hash = vfs.hash_of(path)?;
        let key = Self::manifest_key(path, hash::hash_defines(defines), root_hash);
        let view = store.get_view(NS_PARSE, key)?;
        // Zero-copy validation: each dep row is read in place from the
        // record's payload view — no paths are copied out of the buffer.
        let m = ModuleReader::parse(&view).ok()?;
        if m.kind() != Self::MODULE_KIND {
            return None;
        }
        for row in m.part(Self::PART_DEPS)?.iter() {
            let dep = m.get(row.str_at(0).ok()?).ok()?;
            let hash = row.u64_at(4).ok()?;
            if vfs.hash_of(dep) != Some(hash) {
                return None;
            }
        }
        m.part(Self::PART_META)?.reader().get_varint().ok()
    }

    /// Number of cached TUs.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("parse cache lock").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().expect("parse cache lock").is_empty()
    }

    /// Drops every entry.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().expect("parse cache lock");
        let freed: u64 = entries
            .values()
            .flat_map(|vs| vs.iter().map(|e| e.bytes))
            .sum();
        entries.clear();
        self.resident.fetch_sub(freed, Ordering::Relaxed);
        sub_resident(freed);
    }

    /// Looks up `path` without parsing: returns the validated cached TU
    /// on a hit (counting it exactly as [`ParseCache::parse`] would), or
    /// `None` — with no metric side effects — when a parse would be
    /// needed. The session layer probes before building its stage DAG so
    /// a warm parse short-circuits scheduling entirely.
    pub fn probe(
        &self,
        vfs: &Vfs,
        defines: &[(String, String)],
        path: &str,
    ) -> Option<CachedParse> {
        let key = (path.to_string(), hash::hash_defines(defines));
        self.lookup_and_repair(&key, vfs)
    }

    /// The hit path plus disk-manifest repair: a memory hit whose
    /// manifest is missing on disk (evicted, or a failed earlier write)
    /// re-persists it, so disk warmth converges back toward memory
    /// warmth.
    fn lookup_and_repair(&self, key: &(String, u64), vfs: &Vfs) -> Option<CachedParse> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let (cached, deps) = {
            let mut entries = self.entries.lock().expect("parse cache lock");
            let cached = Self::lookup_valid(&mut entries, key, vfs, tick)?;
            // lookup_valid promoted the hit to versions[0].
            let deps = self.store.is_some().then(|| entries[key][0].deps.clone());
            (cached, deps)
        };
        if let Some(deps) = deps {
            self.persist_manifest(key, vfs.hash_of(&key.0), &deps, cached.closure_hash);
        }
        Some(cached)
    }

    /// The shared hit path: finds a validated version for `key`, promotes
    /// it to most-recently-used, and counts the hit.
    fn lookup_valid(
        entries: &mut HashMap<(String, u64), Vec<Entry>>,
        key: &(String, u64),
        vfs: &Vfs,
        tick: u64,
    ) -> Option<CachedParse> {
        let versions = entries.get_mut(key)?;
        let valid = versions.iter().position(|entry| {
            entry
                .deps
                .iter()
                .all(|(dep, h)| vfs.hash_of(dep) == Some(*h))
        })?;
        // Most-recently-used first, so the history evicts the version
        // least likely to come back.
        let mut entry = versions.remove(valid);
        entry.stamp = tick;
        let cached = CachedParse {
            tu: Arc::clone(&entry.tu),
            closure_hash: entry.closure_hash,
            lookup: CacheLookup::Hit,
        };
        versions.insert(0, entry);
        yalla_obs::count(yalla_obs::metrics::names::CACHE_HITS, 1);
        Some(cached)
    }

    /// Parses `path` against `vfs` with `defines`, reusing the cached TU
    /// when the whole include closure is byte-identical to the previous
    /// parse.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (which are never cached).
    pub fn parse(
        &self,
        vfs: &Vfs,
        defines: &[(String, String)],
        path: &str,
    ) -> Result<CachedParse> {
        let key = (path.to_string(), hash::hash_defines(defines));
        if let Some(cached) = self.lookup_and_repair(&key, vfs) {
            return Ok(cached);
        }
        let stale = self
            .entries
            .lock()
            .expect("parse cache lock")
            .contains_key(&key);
        // Lock released: the parse itself runs unsynchronized, so cache
        // misses on different TUs overlap on the executor.
        yalla_obs::count(yalla_obs::metrics::names::CACHE_MISSES, 1);
        if stale {
            yalla_obs::count(yalla_obs::metrics::names::CACHE_INVALIDATIONS, 1);
        }

        let mut fe = Frontend::new(vfs.clone());
        for (k, v) in defines {
            fe.define(k, v);
        }
        let tu = Arc::new(fe.parse_translation_unit(path)?);

        let mut deps = Vec::with_capacity(tu.stats.files_entered.len());
        let mut closure = Fnv64::new();
        closure.write_str(path);
        closure.write_u64(key.1);
        for &file in &tu.stats.files_entered {
            let dep_path = vfs.path(file).to_string();
            let dep_hash = vfs.file_hash(file);
            closure.write_str(&dep_path);
            closure.write_u64(dep_hash);
            deps.push((dep_path, dep_hash));
        }
        let closure_hash = closure.finish();
        self.persist_manifest(&key, vfs.hash_of(path), &deps, closure_hash);
        let bytes = Self::approx_entry_bytes(&tu, &deps);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let spilled = {
            let mut entries = self.entries.lock().expect("parse cache lock");
            let versions = entries.entry(key).or_default();
            let mut freed: u64 = 0;
            versions.retain(|e| {
                let keep = e.closure_hash != closure_hash;
                if !keep {
                    freed += e.bytes;
                }
                keep
            });
            versions.insert(
                0,
                Entry {
                    deps,
                    closure_hash,
                    tu: Arc::clone(&tu),
                    bytes,
                    stamp,
                },
            );
            for e in versions.drain(VERSIONS_PER_KEY.min(versions.len())..) {
                freed += e.bytes;
            }
            self.resident.fetch_add(bytes, Ordering::Relaxed);
            self.resident.fetch_sub(freed, Ordering::Relaxed);
            add_resident(bytes);
            sub_resident(freed);
            match self.effective_budget() {
                Some(budget) => Self::enforce_budget(&mut entries, &self.resident, budget, stamp),
                None => Vec::new(),
            }
        };
        // Spill outside the map lock: each evicted entry's dependency
        // manifest is (re-)persisted to the store tier, so the record
        // round-trips — a later probe_disk recovers the closure hash and
        // the run-bundle tier rebuilds the artifacts without a cold parse.
        if !spilled.is_empty() {
            yalla_obs::count(
                yalla_obs::metrics::names::CACHE_EVICTIONS,
                spilled.len() as i64,
            );
            for s in spilled {
                self.persist_manifest(&s.key, Some(s.root_hash), &s.deps, s.closure_hash);
            }
        }
        Ok(CachedParse {
            tu,
            closure_hash,
            lookup: if stale {
                CacheLookup::Invalidated
            } else {
                CacheLookup::Miss
            },
        })
    }

    /// Deterministic estimate of an entry's in-memory footprint: a
    /// per-line constant for the retained AST/tokens plus the dep table.
    /// It is a *model*, not an allocator measurement — what matters for
    /// the budget is that it is stable across runs and monotone in TU
    /// size, so eviction decisions (and the bench's peak-resident
    /// numbers) are reproducible.
    fn approx_entry_bytes(tu: &ParsedTu, deps: &[(String, u64)]) -> u64 {
        let lines = tu.stats.lines_compiled as u64;
        let dep_bytes: u64 = deps.iter().map(|(p, _)| p.len() as u64 + 24).sum();
        256 + lines * 160 + dep_bytes
    }

    /// Evicts least-recently-used entries (never the one stamped
    /// `keep_stamp`, so the insert that triggered enforcement always
    /// survives — a cache smaller than one TU still makes progress)
    /// until this cache's resident estimate fits `budget`. Returns the
    /// spill manifests for the caller to persist after the lock drops.
    fn enforce_budget(
        entries: &mut HashMap<(String, u64), Vec<Entry>>,
        resident: &AtomicU64,
        budget: u64,
        keep_stamp: u64,
    ) -> Vec<Spill> {
        let mut spilled = Vec::new();
        while resident.load(Ordering::Relaxed) > budget {
            let victim = entries
                .iter()
                .flat_map(|(k, vs)| vs.iter().map(move |e| (e.stamp, k)))
                .filter(|&(stamp, _)| stamp != keep_stamp)
                .min_by_key(|&(stamp, _)| stamp)
                .map(|(stamp, k)| (stamp, k.clone()));
            let Some((stamp, key)) = victim else {
                break;
            };
            let versions = entries.get_mut(&key).expect("victim key present");
            let idx = versions
                .iter()
                .position(|e| e.stamp == stamp)
                .expect("victim version present");
            let e = versions.remove(idx);
            if versions.is_empty() {
                entries.remove(&key);
            }
            resident.fetch_sub(e.bytes, Ordering::Relaxed);
            sub_resident(e.bytes);
            spilled.push(Spill {
                key,
                root_hash: e.deps.first().map(|d| d.1).unwrap_or_default(),
                deps: e.deps,
                closure_hash: e.closure_hash,
            });
        }
        spilled
    }
}

/// What the eviction path carries out of the lock: enough to persist
/// the dependency manifest of a spilled entry to the store tier.
struct Spill {
    key: (String, u64),
    root_hash: u64,
    deps: Vec<(String, u64)>,
    closure_hash: u64,
}

impl Drop for ParseCache {
    /// Returns this cache's resident estimate to the process-wide gauge
    /// (serve shards come and go; the gauge must not leak their bytes).
    fn drop(&mut self) {
        sub_resident(self.resident.load(Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vfs() -> Vfs {
        let mut vfs = Vfs::new();
        vfs.add_file("lib.hpp", "#pragma once\nnamespace l { class C; }\n");
        vfs.add_file("other.hpp", "#pragma once\nint unrelated;\n");
        vfs.add_file("main.cpp", "#include \"lib.hpp\"\nint y;\n");
        vfs
    }

    #[test]
    fn second_parse_is_a_hit_sharing_the_ast() {
        let v = vfs();
        let cache = ParseCache::new();
        let a = cache.parse(&v, &[], "main.cpp").unwrap();
        let b = cache.parse(&v, &[], "main.cpp").unwrap();
        assert_eq!(a.lookup, CacheLookup::Miss);
        assert_eq!(b.lookup, CacheLookup::Hit);
        assert!(Arc::ptr_eq(&a.tu, &b.tu));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn editing_a_dependency_invalidates() {
        let mut v = vfs();
        let cache = ParseCache::new();
        let a = cache.parse(&v, &[], "main.cpp").unwrap();
        v.apply_edit(
            "lib.hpp",
            "#pragma once\nnamespace l { class C; class D; }\n",
        )
        .unwrap();
        let b = cache.parse(&v, &[], "main.cpp").unwrap();
        assert_eq!(b.lookup, CacheLookup::Invalidated);
        assert_ne!(a.closure_hash, b.closure_hash);
        // Reverting restores the original closure hash and re-hits the
        // version cached before the edit — no reparse.
        v.apply_edit("lib.hpp", "#pragma once\nnamespace l { class C; }\n")
            .unwrap();
        let c = cache.parse(&v, &[], "main.cpp").unwrap();
        assert_eq!(c.lookup, CacheLookup::Hit);
        assert_eq!(a.closure_hash, c.closure_hash);
        assert!(Arc::ptr_eq(&a.tu, &c.tu));
    }

    #[test]
    fn version_history_is_bounded() {
        let mut v = vfs();
        let cache = ParseCache::new();
        for i in 0..10 {
            v.apply_edit("lib.hpp", format!("#pragma once\nint v{i};\n"))
                .unwrap();
            cache.parse(&v, &[], "main.cpp").unwrap();
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.entries.lock().unwrap()[&("main.cpp".to_string(), hash::hash_defines(&[]))].len(),
            VERSIONS_PER_KEY
        );
        // The most recent content is still a hit...
        assert!(cache.parse(&v, &[], "main.cpp").unwrap().lookup.is_hit());
        // ...and re-caching identical content does not duplicate it.
        assert_eq!(
            cache.entries.lock().unwrap()[&("main.cpp".to_string(), hash::hash_defines(&[]))].len(),
            VERSIONS_PER_KEY
        );
    }

    #[test]
    fn editing_an_unreached_file_keeps_the_hit() {
        let mut v = vfs();
        let cache = ParseCache::new();
        cache.parse(&v, &[], "main.cpp").unwrap();
        v.apply_edit("other.hpp", "#pragma once\nint changed;\n")
            .unwrap();
        let b = cache.parse(&v, &[], "main.cpp").unwrap();
        assert_eq!(b.lookup, CacheLookup::Hit);
    }

    #[test]
    fn defines_partition_the_cache() {
        let v = vfs();
        let cache = ParseCache::new();
        cache.parse(&v, &[], "main.cpp").unwrap();
        let defined = vec![("MODE".to_string(), "2".to_string())];
        let b = cache.parse(&v, &defined, "main.cpp").unwrap();
        assert_eq!(b.lookup, CacheLookup::Miss);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_tus_cache_independently() {
        let mut v = vfs();
        v.add_file("second.cpp", "#include \"other.hpp\"\nint z;\n");
        let cache = ParseCache::new();
        cache.parse(&v, &[], "main.cpp").unwrap();
        cache.parse(&v, &[], "second.cpp").unwrap();
        // Editing other.hpp touches only second.cpp's closure.
        v.apply_edit("other.hpp", "#pragma once\nint changed;\n")
            .unwrap();
        assert!(cache.parse(&v, &[], "main.cpp").unwrap().lookup.is_hit());
        assert_eq!(
            cache.parse(&v, &[], "second.cpp").unwrap().lookup,
            CacheLookup::Invalidated
        );
    }

    #[test]
    fn concurrent_parses_share_one_cache() {
        // 8 threads × 2 TUs through one &self cache: every thread gets a
        // correct TU, and at the end each TU re-hits.
        let mut v = vfs();
        v.add_file("second.cpp", "#include \"other.hpp\"\nint z;\n");
        let cache = ParseCache::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = &cache;
                let v = &v;
                scope.spawn(move || {
                    let path = if t % 2 == 0 { "main.cpp" } else { "second.cpp" };
                    for _ in 0..4 {
                        cache.parse(v, &[], path).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 2);
        assert!(cache.parse(&v, &[], "main.cpp").unwrap().lookup.is_hit());
        assert!(cache.parse(&v, &[], "second.cpp").unwrap().lookup.is_hit());
    }

    #[test]
    fn disk_manifest_probe_survives_process_restart() {
        let dir =
            std::env::temp_dir().join(format!("yalla-parsecache-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).expect("open store"));
        let v = vfs();
        let cache = ParseCache::with_store(Some(Arc::clone(&store)));
        let parsed = cache.parse(&v, &[], "main.cpp").unwrap();

        // A fresh cache on the same store (a restarted process): the
        // memory tier is cold, but the disk manifest validates and
        // recovers the closure hash without parsing anything.
        let fresh = ParseCache::with_store(Some(Arc::clone(&store)));
        assert!(fresh.probe(&v, &[], "main.cpp").is_none());
        assert_eq!(
            fresh.probe_disk(&v, &[], "main.cpp"),
            Some(parsed.closure_hash)
        );

        // Editing a file in the closure defeats the manifest; editing an
        // unreached file does not.
        let mut edited = v.clone();
        edited
            .apply_edit("lib.hpp", "#pragma once\nnamespace l { class X; }\n")
            .unwrap();
        assert_eq!(fresh.probe_disk(&edited, &[], "main.cpp"), None);
        let mut unrelated = v.clone();
        unrelated
            .apply_edit("other.hpp", "#pragma once\nint changed;\n")
            .unwrap();
        assert_eq!(
            fresh.probe_disk(&unrelated, &[], "main.cpp"),
            Some(parsed.closure_hash)
        );

        // Without a store, probe_disk is inert.
        assert_eq!(ParseCache::new().probe_disk(&v, &[], "main.cpp"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_budget_suffixes_parse() {
        assert_eq!(parse_mem_budget("1048576"), Ok(1 << 20));
        assert_eq!(parse_mem_budget("512k"), Ok(512 << 10));
        assert_eq!(parse_mem_budget("64M"), Ok(64 << 20));
        assert_eq!(parse_mem_budget(" 2G "), Ok(2 << 30));
        assert_eq!(parse_mem_budget("0"), Ok(0));
        assert!(parse_mem_budget("").is_err());
        assert!(parse_mem_budget("lots").is_err());
        assert!(parse_mem_budget("99999999999G").is_err());
    }

    #[test]
    fn tiny_budget_evicts_lru_and_reparses_correctly() {
        let mut v = vfs();
        for i in 0..6 {
            v.add_file(
                &format!("tu{i}.cpp"),
                format!("#include \"lib.hpp\"\nint t{i};\n"),
            );
        }
        // A budget of one byte: after every insert, everything except the
        // newest entry is evicted.
        let cache = ParseCache::with_budget(None, Some(1));
        for i in 0..6 {
            cache.parse(&v, &[], &format!("tu{i}.cpp")).unwrap();
        }
        assert_eq!(cache.len(), 1, "only the newest TU survives");
        assert!(cache.resident_bytes() > 0);
        // Evicted TUs reparse as misses (not stale invalidations), and the
        // result is identical to the original parse.
        let again = cache.parse(&v, &[], "tu0.cpp").unwrap();
        assert_eq!(again.lookup, CacheLookup::Miss);
        // Unbounded cache on the same inputs agrees on the closure hash.
        let free = ParseCache::with_budget(None, None);
        assert_eq!(
            free.parse(&v, &[], "tu0.cpp").unwrap().closure_hash,
            again.closure_hash
        );
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        let mut v = vfs();
        v.add_file("a.cpp", "#include \"lib.hpp\"\nint a;\n");
        v.add_file("b.cpp", "#include \"lib.hpp\"\nint b;\n");
        // Size the budget from the real estimates: exactly two of these
        // near-identical TUs fit, a third overflows by well under the
        // 64-byte margin's complement.
        let sizer = ParseCache::with_budget(None, None);
        sizer.parse(&v, &[], "a.cpp").unwrap();
        sizer.parse(&v, &[], "b.cpp").unwrap();
        let budget = sizer.resident_bytes() + 64;
        let bounded = ParseCache::with_budget(None, Some(budget));
        bounded.parse(&v, &[], "a.cpp").unwrap();
        bounded.parse(&v, &[], "b.cpp").unwrap();
        // Touch a so b becomes the LRU victim when main.cpp arrives.
        assert!(bounded.probe(&v, &[], "a.cpp").is_some());
        bounded.parse(&v, &[], "main.cpp").unwrap();
        assert!(
            bounded.probe(&v, &[], "a.cpp").is_some(),
            "recently used survives"
        );
        assert!(
            bounded.probe(&v, &[], "b.cpp").is_none(),
            "LRU entry evicted"
        );
    }

    #[test]
    fn evicted_entries_spill_manifests_to_the_store() {
        let dir =
            std::env::temp_dir().join(format!("yalla-parsecache-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).expect("open store"));
        let mut v = vfs();
        for i in 0..4 {
            v.add_file(
                &format!("tu{i}.cpp"),
                format!("#include \"lib.hpp\"\nint t{i};\n"),
            );
        }
        let cache = ParseCache::with_budget(Some(Arc::clone(&store)), Some(1));
        let mut hashes = Vec::new();
        for i in 0..4 {
            hashes.push(
                cache
                    .parse(&v, &[], &format!("tu{i}.cpp"))
                    .unwrap()
                    .closure_hash,
            );
        }
        // Every evicted TU's manifest round-trips: a fresh cache on the
        // same store recovers each closure hash from disk alone.
        let fresh = ParseCache::with_store(Some(store));
        for (i, expect) in hashes.iter().enumerate() {
            assert_eq!(
                fresh.probe_disk(&v, &[], &format!("tu{i}.cpp")),
                Some(*expect),
                "spilled manifest for tu{i}.cpp must validate from disk"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_accounting_balances_on_clear() {
        let v = vfs();
        let before = bytes_resident();
        let cache = ParseCache::new();
        cache.parse(&v, &[], "main.cpp").unwrap();
        assert!(cache.resident_bytes() > 0);
        assert!(bytes_resident() >= before + cache.resident_bytes());
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let mut v = Vfs::new();
        v.add_file("bad.cpp", "#include \"missing.hpp\"\n");
        let cache = ParseCache::new();
        assert!(cache.parse(&v, &[], "bad.cpp").is_err());
        assert!(cache.is_empty());
        // Adding the header makes it parse (a miss, not a stale error).
        v.add_file("missing.hpp", "int ok;\n");
        let ok = cache.parse(&v, &[], "bad.cpp").unwrap();
        assert_eq!(ok.lookup, CacheLookup::Miss);
    }
}
