//! Macro definitions and expansion.

use std::collections::{HashMap, HashSet};

use crate::lex::{lex_str, Punct, Token, TokenKind};
use crate::loc::Span;

/// A single `#define`.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroDef {
    /// Parameter names; `None` for object-like macros.
    pub params: Option<Vec<String>>,
    /// True when the parameter list ends with `...` (`__VA_ARGS__`).
    pub variadic: bool,
    /// Replacement-list tokens (no trailing EOF).
    pub body: Vec<Token>,
}

impl MacroDef {
    /// Convenience constructor for an object-like macro whose body is
    /// lexed from `text`.
    ///
    /// # Panics
    ///
    /// Panics if `text` does not lex — intended for tests and builtins.
    pub fn object(text: &str) -> Self {
        let mut body = lex_str(text).expect("macro body must lex");
        body.pop(); // EOF
        MacroDef {
            params: None,
            variadic: false,
            body,
        }
    }
}

/// The macro environment during preprocessing.
#[derive(Debug, Clone, Default)]
pub struct MacroTable {
    defs: HashMap<String, MacroDef>,
    /// Number of expansions performed (work proxy for the cost model).
    pub expansions: usize,
}

impl MacroTable {
    /// An empty table.
    pub fn new() -> Self {
        MacroTable::default()
    }

    /// Defines (or redefines) a macro.
    pub fn define(&mut self, name: impl Into<String>, def: MacroDef) {
        self.defs.insert(name.into(), def);
    }

    /// Removes a macro; succeeds silently when absent (like `#undef`).
    pub fn undef(&mut self, name: &str) {
        self.defs.remove(name);
    }

    /// True if `name` is currently defined.
    pub fn is_defined(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }

    /// Looks up a macro definition.
    pub fn get(&self, name: &str) -> Option<&MacroDef> {
        self.defs.get(name)
    }

    /// Fully macro-expands `input`, appending the result to `out`.
    ///
    /// Expanded tokens are re-spanned to `use_span`-less positions: body
    /// tokens take the span and line of the *invocation*, so everything the
    /// parser sees points at user-visible source (the same convention Clang
    /// uses for its "expansion location").
    pub fn expand(&mut self, input: &[Token], out: &mut Vec<Token>) {
        let mut hide = HashSet::new();
        self.expand_inner(input, out, &mut hide);
    }

    fn expand_inner(&mut self, input: &[Token], out: &mut Vec<Token>, hide: &mut HashSet<String>) {
        let mut i = 0;
        while i < input.len() {
            let tok = &input[i];
            let name = match &tok.kind {
                TokenKind::Ident(n) => n.clone(),
                _ => {
                    out.push(tok.clone());
                    i += 1;
                    continue;
                }
            };
            if hide.contains(&name) {
                out.push(tok.clone());
                i += 1;
                continue;
            }
            let Some(def) = self.defs.get(&name).cloned() else {
                out.push(tok.clone());
                i += 1;
                continue;
            };
            match def.params {
                None => {
                    self.expansions += 1;
                    let body = respan(&def.body, tok.span, tok.line);
                    hide.insert(name.clone());
                    self.expand_inner(&body, out, hide);
                    hide.remove(&name);
                    i += 1;
                }
                Some(ref params) => {
                    // Function-like: require an immediate '('.
                    if i + 1 >= input.len() || !input[i + 1].kind.is_punct(Punct::LParen) {
                        out.push(tok.clone());
                        i += 1;
                        continue;
                    }
                    let (args, consumed) = match collect_args(&input[i + 1..]) {
                        Some(x) => x,
                        None => {
                            // Unbalanced parens: emit as-is.
                            out.push(tok.clone());
                            i += 1;
                            continue;
                        }
                    };
                    self.expansions += 1;
                    let substituted =
                        self.substitute(&def, params, def.variadic, &args, tok.span, tok.line);
                    hide.insert(name.clone());
                    self.expand_inner(&substituted, out, hide);
                    hide.remove(&name);
                    i += 1 + consumed;
                }
            }
        }
    }

    /// Substitutes arguments into a function-like macro body, handling
    /// `#param` (stringify) and `a ## b` (paste).
    fn substitute(
        &mut self,
        def: &MacroDef,
        params: &[String],
        variadic: bool,
        args: &[Vec<Token>],
        use_span: Span,
        use_line: u32,
    ) -> Vec<Token> {
        let arg_for = |pname: &str| -> Option<Vec<Token>> {
            if let Some(idx) = params.iter().position(|p| p == pname) {
                return Some(args.get(idx).cloned().unwrap_or_default());
            }
            if variadic && pname == "__VA_ARGS__" {
                let rest: Vec<Token> = args
                    .iter()
                    .skip(params.len())
                    .enumerate()
                    .flat_map(|(k, a)| {
                        let mut v = Vec::new();
                        if k > 0 {
                            v.push(Token {
                                kind: TokenKind::Punct(Punct::Comma),
                                span: use_span,
                                line: use_line,
                            });
                        }
                        v.extend(a.iter().cloned());
                        v
                    })
                    .collect();
                return Some(rest);
            }
            None
        };

        let body = respan(&def.body, use_span, use_line);
        let mut out: Vec<Token> = Vec::with_capacity(body.len());
        let mut i = 0;
        while i < body.len() {
            // Stringify: # ident
            if body[i].kind.is_punct(Punct::Hash) && i + 1 < body.len() {
                if let TokenKind::Ident(p) = &body[i + 1].kind {
                    if let Some(arg) = arg_for(p) {
                        let text: Vec<String> = arg.iter().map(|t| t.kind.to_string()).collect();
                        out.push(Token {
                            kind: TokenKind::Str(text.join(" ")),
                            span: use_span,
                            line: use_line,
                        });
                        i += 2;
                        continue;
                    }
                }
            }
            // Paste: prev ## next — concatenate identifier/number spellings.
            if i + 2 < body.len() && body[i + 1].kind.is_punct(Punct::HashHash) {
                let left = expand_one(&body[i], &arg_for);
                let right = expand_one(&body[i + 2], &arg_for);
                let l = left.last().map(|t| t.kind.to_string()).unwrap_or_default();
                let r = right
                    .first()
                    .map(|t| t.kind.to_string())
                    .unwrap_or_default();
                let pasted = format!("{l}{r}");
                out.extend(left.iter().take(left.len().saturating_sub(1)).cloned());
                out.push(Token {
                    kind: TokenKind::Ident(pasted),
                    span: use_span,
                    line: use_line,
                });
                out.extend(right.iter().skip(1).cloned());
                i += 3;
                continue;
            }
            if let TokenKind::Ident(p) = &body[i].kind {
                if let Some(arg) = arg_for(p) {
                    // Arguments are fully expanded before substitution.
                    let mut expanded = Vec::new();
                    self.expand(&arg, &mut expanded);
                    out.extend(respan(&expanded, use_span, use_line));
                    i += 1;
                    continue;
                }
            }
            out.push(body[i].clone());
            i += 1;
        }
        out
    }
}

fn expand_one(tok: &Token, arg_for: &impl Fn(&str) -> Option<Vec<Token>>) -> Vec<Token> {
    if let TokenKind::Ident(p) = &tok.kind {
        if let Some(arg) = arg_for(p) {
            return arg;
        }
    }
    vec![tok.clone()]
}

fn respan(tokens: &[Token], span: Span, line: u32) -> Vec<Token> {
    tokens
        .iter()
        .map(|t| Token {
            kind: t.kind.clone(),
            span,
            line,
        })
        .collect()
}

/// Collects the argument lists of a function-like macro invocation whose
/// tokens start at the opening paren (`input[0]`). Returns the arguments
/// (split on top-level commas) and the number of tokens consumed
/// (including both parens). Returns `None` when parens never balance.
fn collect_args(input: &[Token]) -> Option<(Vec<Vec<Token>>, usize)> {
    debug_assert!(input[0].kind.is_punct(Punct::LParen));
    let mut depth = 0usize;
    let mut args: Vec<Vec<Token>> = vec![Vec::new()];
    for (i, tok) in input.iter().enumerate() {
        match &tok.kind {
            TokenKind::Punct(Punct::LParen) => {
                depth += 1;
                if depth > 1 {
                    args.last_mut().unwrap().push(tok.clone());
                }
            }
            TokenKind::Punct(Punct::RParen) => {
                depth -= 1;
                if depth == 0 {
                    if args.len() == 1 && args[0].is_empty() {
                        args.clear();
                    }
                    return Some((args, i + 1));
                }
                args.last_mut().unwrap().push(tok.clone());
            }
            TokenKind::Punct(Punct::Comma) if depth == 1 => args.push(Vec::new()),
            TokenKind::Eof => return None,
            _ => args.last_mut().unwrap().push(tok.clone()),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand_text(table: &mut MacroTable, text: &str) -> String {
        let mut toks = lex_str(text).unwrap();
        toks.pop();
        let mut out = Vec::new();
        table.expand(&toks, &mut out);
        out.iter()
            .map(|t| t.kind.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn object_like_expansion() {
        let mut t = MacroTable::new();
        t.define("N", MacroDef::object("42"));
        assert_eq!(expand_text(&mut t, "int x = N;"), "int x = 42 ;");
        assert_eq!(t.expansions, 1);
    }

    #[test]
    fn nested_object_like() {
        let mut t = MacroTable::new();
        t.define("A", MacroDef::object("B + 1"));
        t.define("B", MacroDef::object("2"));
        assert_eq!(expand_text(&mut t, "A"), "2 + 1");
    }

    #[test]
    fn self_reference_does_not_loop() {
        let mut t = MacroTable::new();
        t.define("X", MacroDef::object("X + 1"));
        assert_eq!(expand_text(&mut t, "X"), "X + 1");
    }

    #[test]
    fn mutual_recursion_does_not_loop() {
        let mut t = MacroTable::new();
        t.define("A", MacroDef::object("B"));
        t.define("B", MacroDef::object("A"));
        // A -> B -> A (hidden) stops.
        assert_eq!(expand_text(&mut t, "A"), "A");
    }

    fn fnlike(params: &[&str], body: &str) -> MacroDef {
        let mut toks = lex_str(body).unwrap();
        toks.pop();
        MacroDef {
            params: Some(params.iter().map(|s| s.to_string()).collect()),
            variadic: false,
            body: toks,
        }
    }

    #[test]
    fn function_like_expansion() {
        let mut t = MacroTable::new();
        t.define("MAX", fnlike(&["a", "b"], "((a) > (b) ? (a) : (b))"));
        assert_eq!(
            expand_text(&mut t, "MAX(x, y + 1)"),
            "( ( x ) > ( y + 1 ) ? ( x ) : ( y + 1 ) )"
        );
    }

    #[test]
    fn function_like_without_parens_is_untouched() {
        let mut t = MacroTable::new();
        t.define("F", fnlike(&["x"], "x"));
        assert_eq!(expand_text(&mut t, "F + 1"), "F + 1");
    }

    #[test]
    fn nested_call_arguments() {
        let mut t = MacroTable::new();
        t.define("ID", fnlike(&["x"], "x"));
        assert_eq!(expand_text(&mut t, "ID(f(a, b))"), "f ( a , b )");
    }

    #[test]
    fn stringify() {
        let mut t = MacroTable::new();
        t.define("S", fnlike(&["x"], "#x"));
        assert_eq!(expand_text(&mut t, "S(hello world)"), "\"hello world\"");
    }

    #[test]
    fn token_paste() {
        let mut t = MacroTable::new();
        t.define("GLUE", fnlike(&["a", "b"], "a ## b"));
        assert_eq!(expand_text(&mut t, "GLUE(foo, bar)"), "foobar");
    }

    #[test]
    fn variadic_macro() {
        let mut t = MacroTable::new();
        let mut body = lex_str("f(__VA_ARGS__)").unwrap();
        body.pop();
        t.define(
            "CALL",
            MacroDef {
                params: Some(vec![]),
                variadic: true,
                body,
            },
        );
        assert_eq!(expand_text(&mut t, "CALL(1, 2, 3)"), "f ( 1 , 2 , 3 )");
    }

    #[test]
    fn undef_removes() {
        let mut t = MacroTable::new();
        t.define("X", MacroDef::object("1"));
        assert!(t.is_defined("X"));
        t.undef("X");
        assert!(!t.is_defined("X"));
        assert_eq!(expand_text(&mut t, "X"), "X");
    }

    #[test]
    fn empty_argument_list() {
        let mut t = MacroTable::new();
        t.define("Z", fnlike(&[], "0"));
        assert_eq!(expand_text(&mut t, "Z()"), "0");
    }
}
