//! Conditional-compilation expression evaluation (`#if` and friends).

use crate::error::{CppError, Result};
use crate::lex::{Punct, Token, TokenKind};
use crate::loc::Span;
use crate::pp::macros::MacroTable;

/// Evaluates the controlling expression of an `#if`/`#elif` directive.
///
/// Semantics follow the preprocessor rules: `defined(X)` / `defined X`
/// are resolved first, remaining identifiers expand as macros, and any
/// identifier still left evaluates to `0`.
///
/// # Errors
///
/// Returns [`CppError::Directive`] for malformed expressions.
pub fn eval_condition(tokens: &[Token], macros: &mut MacroTable, span: Span) -> Result<bool> {
    // Pass 1: resolve `defined`.
    let mut resolved: Vec<Token> = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind.is_ident("defined") {
            let (name, consumed) =
                if i + 1 < tokens.len() && tokens[i + 1].kind.is_punct(Punct::LParen) {
                    match tokens.get(i + 2).map(|t| &t.kind) {
                        Some(TokenKind::Ident(n))
                            if tokens
                                .get(i + 3)
                                .is_some_and(|t| t.kind.is_punct(Punct::RParen)) =>
                        {
                            (n.clone(), 4)
                        }
                        _ => {
                            return Err(CppError::Directive {
                                message: "malformed defined()".into(),
                                span,
                            })
                        }
                    }
                } else {
                    match tokens.get(i + 1).map(|t| &t.kind) {
                        Some(TokenKind::Ident(n)) => (n.clone(), 2),
                        _ => {
                            return Err(CppError::Directive {
                                message: "defined requires a name".into(),
                                span,
                            })
                        }
                    }
                };
            resolved.push(Token {
                kind: TokenKind::Int(i64::from(macros.is_defined(&name))),
                span,
                line: tokens[i].line,
            });
            i += consumed;
        } else {
            resolved.push(tokens[i].clone());
            i += 1;
        }
    }
    // Pass 2: macro-expand everything else.
    let mut expanded = Vec::new();
    macros.expand(&resolved, &mut expanded);
    // Pass 3: evaluate.
    let mut p = CondParser {
        toks: &expanded,
        pos: 0,
        span,
    };
    let v = p.ternary()?;
    Ok(v != 0)
}

struct CondParser<'a> {
    toks: &'a [Token],
    pos: usize,
    span: Span,
}

impl CondParser<'_> {
    fn err(&self, message: &str) -> CppError {
        CppError::Directive {
            message: message.into(),
            span: self.span,
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().is_some_and(|k| k.is_punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ternary(&mut self) -> Result<i64> {
        let cond = self.or()?;
        if self.eat_punct(Punct::Question) {
            let t = self.ternary()?;
            if !self.eat_punct(Punct::Colon) {
                return Err(self.err("expected `:` in conditional"));
            }
            let e = self.ternary()?;
            return Ok(if cond != 0 { t } else { e });
        }
        Ok(cond)
    }

    fn or(&mut self) -> Result<i64> {
        let mut v = self.and()?;
        while self.eat_punct(Punct::PipePipe) {
            let r = self.and()?;
            v = i64::from(v != 0 || r != 0);
        }
        Ok(v)
    }

    fn and(&mut self) -> Result<i64> {
        let mut v = self.bitor()?;
        while self.eat_punct(Punct::AmpAmp) {
            let r = self.bitor()?;
            v = i64::from(v != 0 && r != 0);
        }
        Ok(v)
    }

    fn bitor(&mut self) -> Result<i64> {
        let mut v = self.bitxor()?;
        while self.eat_punct(Punct::Pipe) {
            v |= self.bitxor()?;
        }
        Ok(v)
    }

    fn bitxor(&mut self) -> Result<i64> {
        let mut v = self.bitand()?;
        while self.eat_punct(Punct::Caret) {
            v ^= self.bitand()?;
        }
        Ok(v)
    }

    fn bitand(&mut self) -> Result<i64> {
        let mut v = self.equality()?;
        while self.eat_punct(Punct::Amp) {
            v &= self.equality()?;
        }
        Ok(v)
    }

    fn equality(&mut self) -> Result<i64> {
        let mut v = self.relational()?;
        loop {
            if self.eat_punct(Punct::EqEq) {
                v = i64::from(v == self.relational()?);
            } else if self.eat_punct(Punct::BangEq) {
                v = i64::from(v != self.relational()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn relational(&mut self) -> Result<i64> {
        let mut v = self.shift()?;
        loop {
            if self.eat_punct(Punct::Lt) {
                v = i64::from(v < self.shift()?);
            } else if self.eat_punct(Punct::Gt) {
                v = i64::from(v > self.shift()?);
            } else if self.eat_punct(Punct::LtEq) {
                v = i64::from(v <= self.shift()?);
            } else if self.eat_punct(Punct::GtEq) {
                v = i64::from(v >= self.shift()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn shift(&mut self) -> Result<i64> {
        let mut v = self.additive()?;
        loop {
            if self.eat_punct(Punct::Shl) {
                v = v.wrapping_shl(self.additive()? as u32);
            } else if self.peek().is_some_and(|k| k.is_punct(Punct::Gt))
                && self
                    .toks
                    .get(self.pos + 1)
                    .is_some_and(|t| t.kind.is_punct(Punct::Gt))
            {
                self.pos += 2;
                v = v.wrapping_shr(self.additive()? as u32);
            } else {
                return Ok(v);
            }
        }
    }

    fn additive(&mut self) -> Result<i64> {
        let mut v = self.multiplicative()?;
        loop {
            if self.eat_punct(Punct::Plus) {
                v = v.wrapping_add(self.multiplicative()?);
            } else if self.eat_punct(Punct::Minus) {
                v = v.wrapping_sub(self.multiplicative()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<i64> {
        let mut v = self.unary()?;
        loop {
            if self.eat_punct(Punct::Star) {
                v = v.wrapping_mul(self.unary()?);
            } else if self.eat_punct(Punct::Slash) {
                let d = self.unary()?;
                if d == 0 {
                    return Err(self.err("division by zero in #if"));
                }
                v /= d;
            } else if self.eat_punct(Punct::Percent) {
                let d = self.unary()?;
                if d == 0 {
                    return Err(self.err("division by zero in #if"));
                }
                v %= d;
            } else {
                return Ok(v);
            }
        }
    }

    fn unary(&mut self) -> Result<i64> {
        if self.eat_punct(Punct::Bang) {
            return Ok(i64::from(self.unary()? == 0));
        }
        if self.eat_punct(Punct::Minus) {
            return Ok(self.unary()?.wrapping_neg());
        }
        if self.eat_punct(Punct::Plus) {
            return self.unary();
        }
        if self.eat_punct(Punct::Tilde) {
            return Ok(!self.unary()?);
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<i64> {
        match self.peek().cloned() {
            Some(TokenKind::Int(v)) => {
                self.pos += 1;
                Ok(v)
            }
            Some(TokenKind::Char(c)) => {
                self.pos += 1;
                Ok(c as i64)
            }
            // Any identifier surviving macro expansion evaluates to 0,
            // including `true`/`false` handled specially.
            Some(TokenKind::Ident(name)) => {
                self.pos += 1;
                Ok(match name.as_str() {
                    "true" => 1,
                    _ => 0,
                })
            }
            Some(TokenKind::Punct(Punct::LParen)) => {
                self.pos += 1;
                let v = self.ternary()?;
                if !self.eat_punct(Punct::RParen) {
                    return Err(self.err("expected `)`"));
                }
                Ok(v)
            }
            _ => Err(self.err("expected primary expression in #if")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex_str;
    use crate::pp::macros::MacroDef;

    fn eval(src: &str, macros: &mut MacroTable) -> bool {
        let mut toks = lex_str(src).unwrap();
        toks.pop();
        eval_condition(&toks, macros, Span::dummy()).unwrap()
    }

    #[test]
    fn arithmetic_and_logic() {
        let mut m = MacroTable::new();
        assert!(eval("1 + 1 == 2", &mut m));
        assert!(eval("(3 * 4) > 10 && !0", &mut m));
        assert!(!eval("0 || 0", &mut m));
        assert!(eval("1 ? 1 : 0", &mut m));
        assert!(eval("2 < 3 && 3 <= 3 && 4 >= 4 && 5 > 4", &mut m));
    }

    #[test]
    fn defined_operator() {
        let mut m = MacroTable::new();
        m.define("FOO", MacroDef::object("1"));
        assert!(eval("defined(FOO)", &mut m));
        assert!(eval("defined FOO", &mut m));
        assert!(!eval("defined(BAR)", &mut m));
        assert!(eval("!defined(BAR)", &mut m));
    }

    #[test]
    fn macros_expand_in_condition() {
        let mut m = MacroTable::new();
        m.define("VERSION", MacroDef::object("30100"));
        assert!(eval("VERSION >= 30000", &mut m));
        assert!(!eval("VERSION < 30000", &mut m));
    }

    #[test]
    fn unknown_identifiers_are_zero() {
        let mut m = MacroTable::new();
        assert!(!eval("UNKNOWN_THING", &mut m));
        assert!(eval("UNKNOWN_THING == 0", &mut m));
        assert!(eval("true", &mut m));
    }

    #[test]
    fn bitwise_ops() {
        let mut m = MacroTable::new();
        assert!(eval("(1 << 4) == 16", &mut m));
        assert!(eval("(0xFF & 0x0F) == 15", &mut m));
        assert!(eval("(1 | 2) == 3", &mut m));
        assert!(eval("(5 ^ 1) == 4", &mut m));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut m = MacroTable::new();
        let mut toks = lex_str("1 / 0").unwrap();
        toks.pop();
        assert!(eval_condition(&toks, &mut m, Span::dummy()).is_err());
    }
}
