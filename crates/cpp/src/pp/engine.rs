//! The preprocessing engine: directives, include resolution, token output.

use std::collections::HashSet;

use crate::error::{CppError, Result};
use crate::lex::{lex_file, Punct, Token, TokenKind};
use crate::loc::{FileId, Span};
use crate::pp::cond::eval_condition;
use crate::pp::macros::{MacroDef, MacroTable};
use crate::pp::stats::PpStats;
use crate::vfs::Vfs;

/// Maximum `#include` nesting depth before we assume a cycle.
const MAX_INCLUDE_DEPTH: usize = 200;

/// The result of preprocessing one translation unit.
#[derive(Debug)]
pub struct PpOutput {
    /// The macro-expanded, include-spliced token stream (ends with EOF).
    pub tokens: Vec<Token>,
    /// Statistics about what entered the TU.
    pub stats: PpStats,
}

/// Preprocesses `main_path` against `vfs` with an empty initial macro table.
///
/// # Errors
///
/// Fails when the main file is missing, an include cannot be resolved, a
/// directive is malformed, or nesting exceeds the cycle limit.
pub fn preprocess(vfs: &Vfs, main_path: &str) -> Result<PpOutput> {
    Preprocessor::new(vfs).run(main_path)
}

/// A configurable preprocessor (predefine macros before running).
#[derive(Debug)]
pub struct Preprocessor<'v> {
    vfs: &'v Vfs,
    macros: MacroTable,
    pragma_once: HashSet<FileId>,
    stats: PpStats,
    out: Vec<Token>,
    depth: usize,
}

#[derive(Debug, Clone, Copy)]
struct CondFrame {
    /// Whether any branch of this `#if` chain has been taken.
    taken: bool,
    /// Whether the current branch is active.
    active: bool,
    /// Whether the enclosing context was active.
    parent_active: bool,
}

impl<'v> Preprocessor<'v> {
    /// Creates a preprocessor over `vfs`.
    pub fn new(vfs: &'v Vfs) -> Self {
        Preprocessor {
            vfs,
            macros: MacroTable::new(),
            pragma_once: HashSet::new(),
            stats: PpStats::default(),
            out: Vec::new(),
            depth: 0,
        }
    }

    /// Predefines an object-like macro (like `-DNAME=VALUE`).
    pub fn define(&mut self, name: &str, value: &str) {
        self.macros.define(name, MacroDef::object(value));
    }

    /// Runs the preprocessor on `main_path` and returns the TU tokens and
    /// stats.
    ///
    /// # Errors
    ///
    /// See [`preprocess`].
    pub fn run(mut self, main_path: &str) -> Result<PpOutput> {
        let main = self
            .vfs
            .lookup(main_path)
            .ok_or_else(|| CppError::FileNotFound {
                path: main_path.into(),
            })?;
        self.process_file(main, true)?;
        self.stats.macro_expansions = self.macros.expansions;
        {
            use yalla_obs::metrics::names;
            yalla_obs::count(
                names::FILES_PREPROCESSED,
                self.stats.files_entered.len() as i64,
            );
            yalla_obs::count(names::LINES_PREPROCESSED, self.stats.lines_compiled as i64);
            yalla_obs::count(
                names::INCLUDES_RESOLVED,
                self.stats.include_edges.len() as i64,
            );
            yalla_obs::count(names::MACRO_EXPANSIONS, self.stats.macro_expansions as i64);
        }
        let last_line = self.out.last().map(|t| t.line).unwrap_or(1);
        self.out.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(main, 0, 0),
            line: last_line,
        });
        Ok(PpOutput {
            tokens: self.out,
            stats: self.stats,
        })
    }

    fn process_file(&mut self, file: FileId, is_main: bool) -> Result<()> {
        if self.pragma_once.contains(&file) {
            return Ok(());
        }
        if self.depth >= MAX_INCLUDE_DEPTH {
            return Err(CppError::IncludeCycle {
                name: self.vfs.path(file).to_string(),
                span: Span::new(file, 0, 0),
            });
        }
        self.depth += 1;
        self.stats.enter_file(file, is_main);
        // One span per file entry; recursion through `handle_include` nests
        // these, so the trace mirrors the include tree.
        let _file_span = yalla_obs::span("pp", self.vfs.path(file));

        let tokens = {
            let _lex_span = yalla_obs::span("pp", "lex");
            lex_file(file, self.vfs.text(file))?
        };
        let mut conds: Vec<CondFrame> = Vec::new();
        let mut pending: Vec<Token> = Vec::new();
        let mut counted_lines: HashSet<u32> = HashSet::new();

        let mut i = 0;
        let mut prev_line = 0u32;
        while i < tokens.len() {
            let tok = &tokens[i];
            if matches!(tok.kind, TokenKind::Eof) {
                break;
            }
            let at_line_start = tok.line != prev_line;
            prev_line = tok.line;
            let active = conds.iter().all(|c| c.active);

            if at_line_start && tok.kind.is_punct(Punct::Hash) {
                // Collect the directive's tokens (same logical line).
                let dir_line = tok.line;
                let mut j = i + 1;
                while j < tokens.len()
                    && tokens[j].line == dir_line
                    && !matches!(tokens[j].kind, TokenKind::Eof)
                {
                    j += 1;
                }
                let dir = &tokens[i + 1..j];
                self.flush(&mut pending);
                if active {
                    counted_lines.insert(dir_line);
                }
                self.handle_directive(file, dir, tok.span, &mut conds, active)?;
                i = j;
                prev_line = dir_line;
                continue;
            }

            if active {
                counted_lines.insert(tok.line);
                pending.push(tok.clone());
            }
            i += 1;
        }
        self.flush(&mut pending);
        self.stats.add_lines(file, counted_lines.len());
        self.depth -= 1;
        Ok(())
    }

    fn flush(&mut self, pending: &mut Vec<Token>) {
        if pending.is_empty() {
            return;
        }
        self.macros.expand(pending, &mut self.out);
        pending.clear();
    }

    fn handle_directive(
        &mut self,
        file: FileId,
        dir: &[Token],
        hash_span: Span,
        conds: &mut Vec<CondFrame>,
        active: bool,
    ) -> Result<()> {
        let name = match dir.first().map(|t| &t.kind) {
            Some(TokenKind::Ident(n)) => n.as_str(),
            // A lone `#` is a null directive.
            None => return Ok(()),
            _ => {
                return Err(CppError::Directive {
                    message: "expected directive name after `#`".into(),
                    span: hash_span,
                })
            }
        };
        let rest = &dir[1..];
        match name {
            "include" => {
                if active {
                    self.handle_include(file, rest, hash_span)?;
                }
            }
            "define" => {
                if active {
                    self.handle_define(rest, hash_span)?;
                }
            }
            "undef" => {
                if active {
                    if let Some(TokenKind::Ident(n)) = rest.first().map(|t| &t.kind) {
                        self.macros.undef(n);
                    }
                }
            }
            "ifdef" | "ifndef" => {
                let defined = match rest.first().map(|t| &t.kind) {
                    Some(TokenKind::Ident(n)) => self.macros.is_defined(n),
                    _ => {
                        return Err(CppError::Directive {
                            message: format!("#{name} requires a macro name"),
                            span: hash_span,
                        })
                    }
                };
                let cond = if name == "ifdef" { defined } else { !defined };
                conds.push(CondFrame {
                    taken: active && cond,
                    active: active && cond,
                    parent_active: active,
                });
            }
            "if" => {
                let cond = if active {
                    eval_condition(rest, &mut self.macros, hash_span)?
                } else {
                    false
                };
                conds.push(CondFrame {
                    taken: active && cond,
                    active: active && cond,
                    parent_active: active,
                });
            }
            "elif" => {
                let frame = conds.last_mut().ok_or_else(|| CppError::Directive {
                    message: "#elif without #if".into(),
                    span: hash_span,
                })?;
                if frame.taken || !frame.parent_active {
                    frame.active = false;
                } else {
                    let parent = frame.parent_active;
                    // Evaluate in the parent context.
                    let cond = eval_condition(rest, &mut self.macros, hash_span)?;
                    let frame = conds.last_mut().expect("frame still present");
                    frame.active = parent && cond;
                    frame.taken |= frame.active;
                }
            }
            "else" => {
                let frame = conds.last_mut().ok_or_else(|| CppError::Directive {
                    message: "#else without #if".into(),
                    span: hash_span,
                })?;
                frame.active = frame.parent_active && !frame.taken;
                frame.taken = true;
            }
            "endif" => {
                conds.pop().ok_or_else(|| CppError::Directive {
                    message: "#endif without #if".into(),
                    span: hash_span,
                })?;
            }
            "pragma" => {
                if active && rest.first().is_some_and(|t| t.kind.is_ident("once")) {
                    self.pragma_once.insert(file);
                }
            }
            "error" => {
                if active {
                    let msg: Vec<String> = rest.iter().map(|t| t.kind.to_string()).collect();
                    return Err(CppError::Directive {
                        message: format!("#error: {}", msg.join(" ")),
                        span: hash_span,
                    });
                }
            }
            // Ignored directives.
            "warning" | "line" => {}
            other => {
                return Err(CppError::Directive {
                    message: format!("unknown directive #{other}"),
                    span: hash_span,
                })
            }
        }
        Ok(())
    }

    fn handle_include(&mut self, includer: FileId, rest: &[Token], span: Span) -> Result<()> {
        let (name, quoted) = match rest.first().map(|t| &t.kind) {
            Some(TokenKind::Str(s)) => (s.clone(), true),
            Some(TokenKind::Punct(Punct::Lt)) => {
                // Reconstruct the header name from the original text
                // between `<` and the final `>` of the directive.
                let lt = &rest[0];
                let gt = rest
                    .iter()
                    .rev()
                    .find(|t| t.kind.is_punct(Punct::Gt))
                    .ok_or_else(|| CppError::Directive {
                        message: "unterminated <...> include".into(),
                        span,
                    })?;
                let text = self.vfs.text(includer);
                let name = text
                    .get(lt.span.end as usize..gt.span.start as usize)
                    .unwrap_or("")
                    .trim()
                    .to_string();
                (name, false)
            }
            _ => {
                return Err(CppError::Directive {
                    message: "#include expects \"file\" or <file>".into(),
                    span,
                })
            }
        };
        let target = self
            .vfs
            .resolve_include(&name, Some(includer), quoted)
            .map_err(|_| CppError::IncludeNotFound {
                name: name.clone(),
                span,
            })?;
        self.stats.include_edges.push((includer, target));
        self.process_file(target, false)
    }

    fn handle_define(&mut self, rest: &[Token], span: Span) -> Result<()> {
        let (name, name_tok) = match rest.first() {
            Some(t) => match &t.kind {
                TokenKind::Ident(n) => (n.clone(), t),
                _ => {
                    return Err(CppError::Directive {
                        message: "#define requires a name".into(),
                        span,
                    })
                }
            },
            None => {
                return Err(CppError::Directive {
                    message: "#define requires a name".into(),
                    span,
                })
            }
        };
        // Function-like only when `(` directly abuts the macro name.
        let is_function_like = rest
            .get(1)
            .is_some_and(|t| t.kind.is_punct(Punct::LParen) && t.span.start == name_tok.span.end);
        if !is_function_like {
            self.macros.define(
                name,
                MacroDef {
                    params: None,
                    variadic: false,
                    body: rest[1..].to_vec(),
                },
            );
            return Ok(());
        }
        let mut params = Vec::new();
        let mut variadic = false;
        let mut i = 2;
        loop {
            match rest.get(i).map(|t| &t.kind) {
                Some(TokenKind::Punct(Punct::RParen)) => {
                    i += 1;
                    break;
                }
                Some(TokenKind::Ident(p)) => {
                    params.push(p.clone());
                    i += 1;
                    if rest.get(i).is_some_and(|t| t.kind.is_punct(Punct::Comma)) {
                        i += 1;
                    }
                }
                Some(TokenKind::Punct(Punct::Ellipsis)) => {
                    variadic = true;
                    i += 1;
                }
                _ => {
                    return Err(CppError::Directive {
                        message: "malformed macro parameter list".into(),
                        span,
                    })
                }
            }
        }
        self.macros.define(
            name,
            MacroDef {
                params: Some(params),
                variadic,
                body: rest[i..].to_vec(),
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(out: &PpOutput) -> String {
        out.tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Eof))
            .map(|t| t.kind.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn pp(files: &[(&str, &str)], main: &str) -> PpOutput {
        let mut vfs = Vfs::new();
        for (p, t) in files {
            vfs.add_file(p, *t);
        }
        preprocess(&vfs, main).unwrap()
    }

    #[test]
    fn include_splices_tokens() {
        let out = pp(
            &[
                ("a.hpp", "int a;"),
                ("main.cpp", "#include \"a.hpp\"\nint b;"),
            ],
            "main.cpp",
        );
        assert_eq!(render(&out), "int a ; int b ;");
        assert_eq!(out.stats.header_count(), 1);
        assert_eq!(out.stats.lines_compiled, 3); // a.hpp:1 + main:2
    }

    #[test]
    fn angled_include_with_path() {
        let mut vfs = Vfs::new();
        vfs.add_file("sys/deep/x.hpp", "int x;");
        vfs.add_file("main.cpp", "#include <deep/x.hpp>\n");
        vfs.add_search_path("sys");
        let out = preprocess(&vfs, "main.cpp").unwrap();
        assert_eq!(render(&out), "int x ;");
    }

    #[test]
    fn missing_include_is_error() {
        let mut vfs = Vfs::new();
        vfs.add_file("main.cpp", "#include \"nope.hpp\"\n");
        let err = preprocess(&vfs, "main.cpp").unwrap_err();
        assert!(matches!(err, CppError::IncludeNotFound { .. }));
    }

    #[test]
    fn include_guard_prevents_double_entry() {
        let out = pp(
            &[
                ("g.hpp", "#ifndef G_HPP\n#define G_HPP\nint g;\n#endif\n"),
                ("main.cpp", "#include \"g.hpp\"\n#include \"g.hpp\"\nint m;"),
            ],
            "main.cpp",
        );
        assert_eq!(render(&out), "int g ; int m ;");
        // Both include edges recorded even though second entry emitted nothing.
        assert_eq!(out.stats.include_edges.len(), 2);
    }

    #[test]
    fn pragma_once_prevents_reentry() {
        let out = pp(
            &[
                ("p.hpp", "#pragma once\nint p;\n"),
                ("main.cpp", "#include \"p.hpp\"\n#include \"p.hpp\"\n"),
            ],
            "main.cpp",
        );
        assert_eq!(render(&out), "int p ;");
    }

    #[test]
    fn transitive_includes_counted() {
        let out = pp(
            &[
                ("a.hpp", "#include \"b.hpp\"\nint a;"),
                ("b.hpp", "#include \"c.hpp\"\nint b;"),
                ("c.hpp", "int c;"),
                ("main.cpp", "#include \"a.hpp\"\nint m;"),
            ],
            "main.cpp",
        );
        assert_eq!(render(&out), "int c ; int b ; int a ; int m ;");
        assert_eq!(out.stats.header_count(), 3);
        assert_eq!(out.stats.files_entered.len(), 4);
    }

    #[test]
    fn include_cycle_is_detected() {
        let mut vfs = Vfs::new();
        vfs.add_file("a.hpp", "#include \"b.hpp\"\n");
        vfs.add_file("b.hpp", "#include \"a.hpp\"\n");
        vfs.add_file("main.cpp", "#include \"a.hpp\"\n");
        let err = preprocess(&vfs, "main.cpp").unwrap_err();
        assert!(matches!(err, CppError::IncludeCycle { .. }));
    }

    #[test]
    fn object_macro_definition_and_use() {
        let out = pp(&[("m.cpp", "#define N 4\nint x = N;")], "m.cpp");
        assert_eq!(render(&out), "int x = 4 ;");
    }

    #[test]
    fn function_macro_requires_adjacent_paren() {
        // `#define F (x)` is object-like with body `(x)`.
        let out = pp(&[("m.cpp", "#define F (x)\nF")], "m.cpp");
        assert_eq!(render(&out), "( x )");
        let out = pp(&[("m.cpp", "#define F(a) a+a\nF(2)")], "m.cpp");
        assert_eq!(render(&out), "2 + 2");
    }

    #[test]
    fn conditionals_select_branches() {
        let src = "#define A 1\n#if A\nint yes;\n#else\nint no;\n#endif\n";
        let out = pp(&[("m.cpp", src)], "m.cpp");
        assert_eq!(render(&out), "int yes ;");
    }

    #[test]
    fn elif_chains() {
        let src = "#define V 2\n#if V == 1\nint one;\n#elif V == 2\nint two;\n#elif V == 3\nint three;\n#else\nint other;\n#endif\n";
        let out = pp(&[("m.cpp", src)], "m.cpp");
        assert_eq!(render(&out), "int two ;");
    }

    #[test]
    fn nested_inactive_regions_stay_inactive() {
        let src = "#if 0\n#if 1\nint hidden;\n#endif\n#else\nint shown;\n#endif\n";
        let out = pp(&[("m.cpp", src)], "m.cpp");
        assert_eq!(render(&out), "int shown ;");
    }

    #[test]
    fn inactive_includes_are_skipped() {
        let out = pp(
            &[("m.cpp", "#if 0\n#include \"missing.hpp\"\n#endif\nint x;")],
            "m.cpp",
        );
        assert_eq!(render(&out), "int x ;");
    }

    #[test]
    fn ifdef_and_ifndef() {
        let src = "#define X\n#ifdef X\nint a;\n#endif\n#ifndef X\nint b;\n#endif\n";
        let out = pp(&[("m.cpp", src)], "m.cpp");
        assert_eq!(render(&out), "int a ;");
    }

    #[test]
    fn error_directive_fires_only_when_active() {
        let ok = pp(&[("m.cpp", "#if 0\n#error bad\n#endif\nint x;")], "m.cpp");
        assert_eq!(render(&ok), "int x ;");
        let mut vfs = Vfs::new();
        vfs.add_file("m.cpp", "#error boom\n");
        assert!(preprocess(&vfs, "m.cpp").is_err());
    }

    #[test]
    fn multiline_define_via_splice() {
        let src = "#define SUM(a, b) \\\n  ((a) + (b))\nint x = SUM(1, 2);";
        let out = pp(&[("m.cpp", src)], "m.cpp");
        assert_eq!(render(&out), "int x = ( ( 1 ) + ( 2 ) ) ;");
    }

    #[test]
    fn lines_skipped_by_conditionals_are_not_counted() {
        let src = "#if 0\nint a;\nint b;\nint c;\n#endif\nint live;\n";
        let out = pp(&[("m.cpp", src)], "m.cpp");
        // Counted: the `#if` line (seen while active) and the live line.
        // Everything inside the inactive region, including its `#endif`,
        // is skipped.
        assert_eq!(out.stats.lines_compiled, 2);
    }

    #[test]
    fn predefined_macros_via_define_api() {
        let mut vfs = Vfs::new();
        vfs.add_file("m.cpp", "#ifdef FAST\nint fast;\n#endif\n");
        let mut pp = Preprocessor::new(&vfs);
        pp.define("FAST", "1");
        let out = pp.run("m.cpp").unwrap();
        assert_eq!(render(&out), "int fast ;");
    }

    #[test]
    fn macro_expansion_count_recorded() {
        let out = pp(&[("m.cpp", "#define A 1\nint x = A + A;")], "m.cpp");
        assert_eq!(out.stats.macro_expansions, 2);
    }
}
