//! Preprocessing statistics (the raw material of the paper's Table 3).

use std::collections::{BTreeMap, BTreeSet};

use crate::loc::FileId;

/// Statistics gathered while preprocessing one translation unit.
///
/// These are the quantities the paper correlates with compile time:
/// *"YALLA reduces the LOC from 111301 to 77 by substituting
/// `Kokkos_Core.hpp` ... which pulls in 581 headers in total"* (§5.3).
#[derive(Debug, Clone, Default)]
pub struct PpStats {
    /// Every distinct file that entered the translation unit, in first-entry
    /// order. The first entry is the main file.
    pub files_entered: Vec<FileId>,
    /// Distinct headers included (directly or transitively) — excludes the
    /// main file. This is Table 3's "Headers" column.
    pub headers: BTreeSet<FileId>,
    /// Non-blank lines of code delivered to the compiler across all files
    /// (active preprocessor regions only). This is Table 3's "LOCs" column.
    pub lines_compiled: usize,
    /// Per-file breakdown of `lines_compiled`.
    pub lines_per_file: BTreeMap<FileId, usize>,
    /// Include edges `(includer, includee)` in resolution order; one edge
    /// per `#include` that was actually entered (guard-skipped re-includes
    /// still add an edge, since the file was looked up again).
    pub include_edges: Vec<(FileId, FileId)>,
    /// Number of macro expansions performed (a frontend-work proxy used by
    /// the compilation-cost model).
    pub macro_expansions: usize,
}

impl PpStats {
    /// Number of distinct headers pulled into the TU.
    pub fn header_count(&self) -> usize {
        self.headers.len()
    }

    /// Records that `lines` active lines of `file` were delivered.
    pub(crate) fn add_lines(&mut self, file: FileId, lines: usize) {
        self.lines_compiled += lines;
        *self.lines_per_file.entry(file).or_insert(0) += lines;
    }

    /// Records the first entry of `file` into the TU.
    pub(crate) fn enter_file(&mut self, file: FileId, is_main: bool) {
        if !self.files_entered.contains(&file) {
            self.files_entered.push(file);
        }
        if !is_main {
            self.headers.insert(file);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_count_excludes_main() {
        let mut s = PpStats::default();
        s.enter_file(FileId(0), true);
        s.enter_file(FileId(1), false);
        s.enter_file(FileId(1), false); // re-entry is idempotent
        s.enter_file(FileId(2), false);
        assert_eq!(s.header_count(), 2);
        assert_eq!(s.files_entered.len(), 3);
    }

    #[test]
    fn line_accounting_accumulates() {
        let mut s = PpStats::default();
        s.add_lines(FileId(0), 10);
        s.add_lines(FileId(0), 5);
        s.add_lines(FileId(1), 7);
        assert_eq!(s.lines_compiled, 22);
        assert_eq!(s.lines_per_file[&FileId(0)], 15);
    }
}
