//! The preprocessor.
//!
//! Consumes a main file plus the [`crate::vfs::Vfs`] and produces the token
//! stream of the *translation unit* — the `#include`-spliced,
//! macro-expanded token sequence a C++ compiler's later phases see — while
//! recording the statistics the paper's Table 3 reports: how many lines of
//! code and how many distinct header files enter the compilation.

mod cond;
mod engine;
mod macros;
mod stats;

pub use engine::{preprocess, PpOutput, Preprocessor};
pub use macros::{MacroDef, MacroTable};
pub use stats::PpStats;
