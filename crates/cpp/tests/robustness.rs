//! Failure-injection and robustness tests for the frontend: hostile or
//! degenerate inputs must produce structured errors, never panics, and
//! resource limits must hold.

use yalla_cpp::frontend::Frontend;
use yalla_cpp::parse::parse_str;
use yalla_cpp::vfs::Vfs;

#[test]
fn deep_include_chain_within_limit_works() {
    let mut vfs = Vfs::new();
    for i in 0..150 {
        let body = if i == 149 {
            "int bottom;\n".to_string()
        } else {
            format!("#include <h{}.hpp>\n", i + 1)
        };
        vfs.add_file(&format!("h{i}.hpp"), format!("#pragma once\n{body}"));
    }
    vfs.add_file("main.cpp", "#include <h0.hpp>\n");
    let fe = Frontend::new(vfs);
    let tu = fe.parse_translation_unit("main.cpp").unwrap();
    assert_eq!(tu.stats.header_count(), 150);
}

#[test]
fn include_depth_limit_stops_self_inclusion() {
    let mut vfs = Vfs::new();
    // No guard: includes itself forever.
    vfs.add_file("loop.hpp", "#include <loop.hpp>\n");
    vfs.add_file("main.cpp", "#include <loop.hpp>\n");
    let fe = Frontend::new(vfs);
    let err = fe.parse_translation_unit("main.cpp").unwrap_err();
    assert!(err.to_string().contains("cycle"), "{err}");
}

#[test]
fn unbalanced_everything_is_an_error() {
    for src in [
        "namespace N {",
        "class C { public:",
        "int f() { if (x) {",
        "template <typename T",
        "enum E { A,",
        "int x = (1 + (2;",
        "void f(int a,,int b);",
    ] {
        assert!(parse_str(src).is_err(), "should fail: {src}");
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // 40 levels of parens parse fine...
    let mut expr = String::from("1");
    for _ in 0..40 {
        expr = format!("({expr})");
    }
    let tu = parse_str(&format!("int x = {expr};")).unwrap();
    assert_eq!(tu.decls.len(), 1);
    // ...while pathological nesting is rejected with a structured error
    // instead of blowing the stack.
    let mut bomb = String::from("1");
    for _ in 0..10_000 {
        bomb = format!("({bomb})");
    }
    let err = parse_str(&format!("int x = {bomb};")).unwrap_err();
    assert!(err.to_string().contains("nested too deeply"), "{err}");
}

#[test]
fn deeply_nested_template_args_parse() {
    let mut ty = String::from("int");
    for _ in 0..40 {
        ty = format!("Box<{ty}>");
    }
    let tu = parse_str(&format!("{ty} x;")).unwrap();
    assert_eq!(tu.decls.len(), 1);
}

#[test]
fn many_small_declarations_scale_linearly_enough() {
    let mut src = String::new();
    for i in 0..20_000 {
        src.push_str(&format!("inline int f{i}(int v) {{ return v + {i}; }}\n"));
    }
    let start = std::time::Instant::now();
    let tu = parse_str(&src).unwrap();
    assert_eq!(tu.decls.len(), 20_000);
    // Generous bound: even debug builds parse 20k functions in seconds.
    assert!(start.elapsed().as_secs() < 30);
}

#[test]
fn macro_bomb_is_bounded_by_recursion_guard() {
    // Self-referential macros must not blow up (C-standard behaviour:
    // painted-blue names stop expanding).
    let mut vfs = Vfs::new();
    vfs.add_file("m.cpp", "#define A B B\n#define B A A\nint x = A;\n");
    let fe = Frontend::new(vfs);
    // Parse may fail (the expansion is `B B` etc., not valid C++ in this
    // position is fine) but must return quickly and without a panic.
    let _ = fe.parse_translation_unit("m.cpp");
}

#[test]
fn empty_and_whitespace_files() {
    for text in [
        "",
        "\n\n\n",
        "   \t  ",
        "// only a comment\n",
        "/* block */",
    ] {
        let mut vfs = Vfs::new();
        vfs.add_file("e.cpp", text);
        let fe = Frontend::new(vfs);
        let tu = fe.parse_translation_unit("e.cpp").unwrap();
        assert!(tu.ast.decls.is_empty());
    }
}

#[test]
fn non_ascii_content_in_strings_and_comments() {
    let tu = parse_str("// héllo wörld 🎉\nconst char* s = \"ünïcode\";\n").unwrap();
    assert_eq!(tu.decls.len(), 1);
}

#[test]
fn conditional_stack_abuse() {
    let mut src = String::new();
    for _ in 0..64 {
        src.push_str("#if 1\n");
    }
    src.push_str("int x;\n");
    for _ in 0..64 {
        src.push_str("#endif\n");
    }
    let mut vfs = Vfs::new();
    vfs.add_file("c.cpp", src);
    let fe = Frontend::new(vfs);
    let tu = fe.parse_translation_unit("c.cpp").unwrap();
    assert_eq!(tu.ast.decls.len(), 1);
}

#[test]
fn stray_endif_is_an_error() {
    let mut vfs = Vfs::new();
    vfs.add_file("c.cpp", "#endif\nint x;\n");
    let fe = Frontend::new(vfs);
    assert!(fe.parse_translation_unit("c.cpp").is_err());
}
