//! The local development cycle (paper Figure 1 / Figure 6 / Figure 8).
//!
//! One *iteration* of the cycle is: edit → recompile the user TU → link →
//! run. The initial build additionally pays, under YALLA, the tool run and
//! the wrappers compile (Figure 10); under PCH, the PCH build.

use crate::cost::CompilerProfile;
use crate::link::{link_ms, ObjectFile};
use crate::phases::PhaseBreakdown;

/// Simulated CPU frequency: cycles per virtual millisecond (3.6 GHz, the
/// paper's i7-11700K base clock).
pub const CYCLES_PER_MS: f64 = 3.6e6;

/// Which build strategy a cycle uses (the x-axis families of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuildConfig {
    /// Plain compile of everything.
    Default,
    /// Precompiled header for the expensive includes.
    Pch,
    /// Header Substitution.
    Yalla,
    /// Header Substitution with link-time optimization (§5.4 discussion).
    YallaLto,
}

impl BuildConfig {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BuildConfig::Default => "default",
            BuildConfig::Pch => "pch",
            BuildConfig::Yalla => "yalla",
            BuildConfig::YallaLto => "yalla+lto",
        }
    }
}

/// How the substitution tool participates in each iteration of the cycle.
///
/// The paper's workflow (Figure 6) runs the tool once up front and argues
/// (§6) that edits rarely force a re-run. With the incremental session
/// layer the tool *can* ride along every iteration: a warm
/// `Session::rerun` revalidates its caches and recomputes only what the
/// edit invalidated, which is orders of magnitude cheaper than a cold run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ToolMode {
    /// The tool runs cold, once, before the first iteration (its cost sits
    /// in `initial_extra_ms`); iterations pay nothing for it.
    #[default]
    Batch,
    /// The tool stays resident as an incremental session and re-runs warm
    /// on every iteration (its per-iteration cost sits in
    /// `tool_rerun_ms`).
    Incremental,
}

impl ToolMode {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ToolMode::Batch => "batch",
            ToolMode::Incremental => "incremental",
        }
    }
}

/// The timed pieces of one development-cycle iteration.
#[derive(Debug, Clone, Copy)]
pub struct CycleReport {
    /// Which configuration.
    pub config: BuildConfig,
    /// User-TU compile time (step ④).
    pub compile_ms: f64,
    /// Link time (step ⑤).
    pub link_ms: f64,
    /// Run time of the rebuilt program.
    pub run_ms: f64,
    /// One-off costs paid before the first iteration (tool run, wrappers
    /// compile, PCH build).
    pub initial_extra_ms: f64,
    /// Per-iteration warm tool cost ([`ToolMode::Incremental`]); 0 under
    /// [`ToolMode::Batch`].
    pub tool_rerun_ms: f64,
}

impl CycleReport {
    /// Time of one steady-state iteration (edit→[tool rerun]→compile→
    /// link→run).
    pub fn iteration_ms(&self) -> f64 {
        self.tool_rerun_ms + self.compile_ms + self.link_ms + self.run_ms
    }

    /// Returns the report with a warm per-iteration tool cost attached
    /// (switching the cycle to [`ToolMode::Incremental`]).
    pub fn with_tool_rerun(mut self, tool_rerun_ms: f64) -> Self {
        self.tool_rerun_ms = tool_rerun_ms;
        self
    }

    /// Time of the first build (includes one-off costs).
    pub fn initial_ms(&self) -> f64 {
        self.initial_extra_ms + self.iteration_ms()
    }

    /// Speedup of this configuration's steady-state iteration over
    /// `baseline`'s.
    pub fn speedup_over(&self, baseline: &CycleReport) -> f64 {
        baseline.iteration_ms() / self.iteration_ms()
    }
}

/// Predicted wall-clock of running `costs` (one entry per independent
/// tool rerun / build, in ms) on `workers` concurrent agents, under
/// greedy list scheduling in submission order: each task goes to the
/// earliest-free worker.
///
/// This is the daemon's tool-rerun accounting under concurrency: with a
/// single worker the makespan is the plain sum (the batch cycle's serial
/// cost); with more workers it approaches `max(longest task, sum /
/// workers)`. The throughput bench compares this model against the
/// measured wall-clock of `yalla serve` under load.
pub fn concurrent_makespan(costs: &[f64], workers: usize) -> f64 {
    let workers = workers.max(1);
    let mut free_at = vec![0.0f64; workers];
    for &cost in costs {
        let earliest = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite cost"))
            .map(|(i, _)| i)
            .expect("at least one worker");
        free_at[earliest] += cost.max(0.0);
    }
    free_at.into_iter().fold(0.0, f64::max)
}

/// The modeled speedup of `workers` concurrent agents over a single one
/// for the given rerun costs (≥ 1, ≤ `workers`).
pub fn concurrent_speedup(costs: &[f64], workers: usize) -> f64 {
    let serial: f64 = costs.iter().map(|c| c.max(0.0)).sum();
    let parallel = concurrent_makespan(costs, workers);
    if parallel <= 0.0 {
        1.0
    } else {
        serial / parallel
    }
}

/// Builds [`CycleReport`]s from per-configuration measurements.
#[derive(Debug, Clone, Copy)]
pub struct DevCycleSim {
    profile: CompilerProfile,
}

impl DevCycleSim {
    /// Creates a simulator for `profile`.
    pub fn new(profile: CompilerProfile) -> Self {
        DevCycleSim { profile }
    }

    /// The profile in use.
    pub fn profile(&self) -> &CompilerProfile {
        &self.profile
    }

    /// Assembles one iteration's report.
    ///
    /// * `compile` — the user TU's phase times under this configuration;
    /// * `objects` — every object linked into the executable (user TU
    ///   object first; YALLA adds the wrappers object);
    /// * `run_cycles` — dynamic cycles from the abstract machine;
    /// * `initial_extra_ms` — one-off costs (tool, wrapper compile, PCH
    ///   build) paid before the first iteration.
    pub fn cycle(
        &self,
        config: BuildConfig,
        compile: &PhaseBreakdown,
        objects: &[ObjectFile],
        run_cycles: u64,
        initial_extra_ms: f64,
    ) -> CycleReport {
        let lto = config == BuildConfig::YallaLto;
        yalla_obs::count(yalla_obs::metrics::names::SIM_ITERATIONS, 1);
        CycleReport {
            config,
            compile_ms: compile.total_ms(),
            link_ms: link_ms(&self.profile, objects, lto),
            run_ms: run_cycles as f64 / CYCLES_PER_MS,
            initial_extra_ms,
            tool_rerun_ms: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(total: f64) -> PhaseBreakdown {
        PhaseBreakdown {
            parse_sema_ms: total,
            ..PhaseBreakdown::default()
        }
    }

    #[test]
    fn iteration_and_initial_totals() {
        let sim = DevCycleSim::new(CompilerProfile::clang());
        let r = sim.cycle(
            BuildConfig::Yalla,
            &breakdown(20.0),
            &[ObjectFile {
                code_stmts: 100,
                symbols: 10,
            }],
            36_000_000, // 10 ms at 3.6 GHz
            2_000.0,
        );
        assert!(r.iteration_ms() > 30.0);
        assert!((r.run_ms - 10.0).abs() < 1e-9);
        assert!(r.initial_ms() > 2_000.0);
    }

    #[test]
    fn speedup_comparison() {
        let sim = DevCycleSim::new(CompilerProfile::clang());
        let slow = sim.cycle(BuildConfig::Default, &breakdown(650.0), &[], 0, 0.0);
        let fast = sim.cycle(BuildConfig::Yalla, &breakdown(17.0), &[], 0, 0.0);
        let s = fast.speedup_over(&slow);
        assert!(s > 10.0, "{s}");
    }

    #[test]
    fn lto_makes_linking_slower() {
        let sim = DevCycleSim::new(CompilerProfile::clang());
        let objs = [ObjectFile {
            code_stmts: 10_000,
            symbols: 500,
        }];
        let plain = sim.cycle(BuildConfig::Yalla, &breakdown(10.0), &objs, 0, 0.0);
        let lto = sim.cycle(BuildConfig::YallaLto, &breakdown(10.0), &objs, 0, 0.0);
        assert!(lto.link_ms > plain.link_ms * 2.0);
    }

    #[test]
    fn labels() {
        assert_eq!(BuildConfig::Default.label(), "default");
        assert_eq!(BuildConfig::YallaLto.label(), "yalla+lto");
        assert_eq!(ToolMode::Batch.label(), "batch");
        assert_eq!(ToolMode::Incremental.label(), "incremental");
    }

    #[test]
    fn makespan_with_one_worker_is_the_serial_sum() {
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert!((concurrent_makespan(&costs, 1) - 14.0).abs() < 1e-9);
        assert!((concurrent_speedup(&costs, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_overlaps_across_workers() {
        // Greedy in order on 2 workers: w0=[3,1,5], w1=[1,4] → makespan 9.
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert!((concurrent_makespan(&costs, 2) - 9.0).abs() < 1e-9);
        // Never better than the longest single task, never better than
        // an even split.
        assert!(concurrent_makespan(&costs, 100) >= 5.0);
        let s = concurrent_speedup(&costs, 2);
        assert!(s > 1.0 && s <= 2.0, "{s}");
    }

    #[test]
    fn makespan_degenerate_inputs() {
        assert_eq!(concurrent_makespan(&[], 4), 0.0);
        assert!((concurrent_speedup(&[], 4) - 1.0).abs() < 1e-9);
        // workers = 0 clamps to 1.
        assert!((concurrent_makespan(&[2.0, 2.0], 0) - 4.0).abs() < 1e-9);
        // Negative costs clamp to zero rather than making time run backward.
        assert!((concurrent_makespan(&[-1.0, 3.0], 1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_tool_cost_enters_the_iteration() {
        let sim = DevCycleSim::new(CompilerProfile::clang());
        let batch = sim.cycle(BuildConfig::Yalla, &breakdown(17.0), &[], 0, 2_000.0);
        let incremental = batch.with_tool_rerun(1.5);
        assert_eq!(batch.tool_rerun_ms, 0.0);
        assert!((incremental.iteration_ms() - batch.iteration_ms() - 1.5).abs() < 1e-9);
        // The one-off cold cost is unchanged by the mode.
        assert!(
            (incremental.initial_ms() - batch.initial_ms() - 1.5).abs() < 1e-9,
            "initial build still pays the same extra"
        );
    }
}
