//! Convenience build drivers: measure + cost in one call.

use yalla_cpp::vfs::Vfs;
use yalla_cpp::Result;

use crate::cost::CompilerProfile;
use crate::link::ObjectFile;
use crate::pch::PchFile;
use crate::phases::PhaseBreakdown;
use crate::tu::{measure_tu, TuWork};

/// The outcome of compiling one translation unit.
#[derive(Debug, Clone, Copy)]
pub struct CompiledTu {
    /// Per-phase virtual times.
    pub phases: PhaseBreakdown,
    /// The object file produced (for linking).
    pub object: ObjectFile,
    /// The measured work (for reporting).
    pub work: TuWork,
}

fn object_of(work: &TuWork) -> ObjectFile {
    ObjectFile {
        code_stmts: work.backend_stmts(),
        symbols: work.decls / 4 + 1,
    }
}

/// Measures and compiles `main` with no PCH.
///
/// # Errors
///
/// Propagates frontend errors.
pub fn compile_default(
    vfs: &Vfs,
    main: &str,
    profile: &CompilerProfile,
    defines: &[(String, String)],
) -> Result<CompiledTu> {
    let work = measure_tu(vfs, main, defines)?;
    Ok(CompiledTu {
        phases: profile.compile(&work),
        object: object_of(&work),
        work,
    })
}

/// Builds a PCH for `headers` (a synthetic TU that includes each of them,
/// the way real projects precompile a common prefix header).
///
/// # Errors
///
/// Propagates frontend errors.
pub fn build_pch(
    vfs: &Vfs,
    headers: &[&str],
    profile: &CompilerProfile,
    defines: &[(String, String)],
) -> Result<PchFile> {
    let mut pch_vfs = vfs.clone();
    let mut src = String::new();
    for h in headers {
        src.push_str(&format!("#include <{h}>\n"));
    }
    pch_vfs.add_file("__pch_prefix.hpp", src);
    let work = measure_tu(&pch_vfs, "__pch_prefix.hpp", defines)?;
    Ok(PchFile::build(profile, work))
}

/// Measures and compiles `main` using a previously built PCH.
///
/// # Errors
///
/// Propagates frontend errors.
pub fn compile_using_pch(
    vfs: &Vfs,
    main: &str,
    pch: &PchFile,
    profile: &CompilerProfile,
    defines: &[(String, String)],
) -> Result<CompiledTu> {
    let work = measure_tu(vfs, main, defines)?;
    Ok(CompiledTu {
        phases: pch.compile_using(profile, &work),
        object: object_of(&work),
        work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_vfs() -> Vfs {
        let mut vfs = Vfs::new();
        let mut lib = String::from("#pragma once\nnamespace lib {\n");
        for i in 0..150 {
            lib.push_str(&format!("inline int f{i}(int v) {{ return v * {i}; }}\n"));
        }
        lib.push_str("}\n");
        vfs.add_file("lib.hpp", lib);
        vfs.add_file(
            "main.cpp",
            "#include <lib.hpp>\nint main() { return lib::f3(4); }\n",
        );
        vfs
    }

    #[test]
    fn default_compile_produces_object() {
        let c = compile_default(&test_vfs(), "main.cpp", &CompilerProfile::clang(), &[]).unwrap();
        assert!(c.phases.total_ms() > 0.0);
        assert!(c.object.code_stmts > 100);
        assert_eq!(c.work.headers, 1);
    }

    #[test]
    fn pch_speeds_up_frontend() {
        let vfs = test_vfs();
        let profile = CompilerProfile::clang();
        let cold = compile_default(&vfs, "main.cpp", &profile, &[]).unwrap();
        let pch = build_pch(&vfs, &["lib.hpp"], &profile, &[]).unwrap();
        let warm = compile_using_pch(&vfs, "main.cpp", &pch, &profile, &[]).unwrap();
        assert!(warm.phases.frontend_ms() < cold.phases.frontend_ms());
        // Backend untouched by PCH (Fig. 7a).
        assert!((warm.phases.backend_ms() - cold.phases.backend_ms()).abs() < 1e-9);
    }
}
