//! Precompiled-header modeling (§2.2, §5.3 of the paper).

use crate::cost::CompilerProfile;
use crate::phases::PhaseBreakdown;
use crate::tu::TuWork;

/// Approximate serialized AST size per preprocessed line (bytes). The
/// paper (§6) notes PCH files reach "hundreds of megabytes" for its test
/// subjects; real Clang PCHs for ~100k-line TUs are tens to hundreds of MB.
const PCH_BYTES_PER_LINE: f64 = 900.0;

/// A built precompiled header.
#[derive(Debug, Clone, Copy)]
pub struct PchFile {
    /// The work the PCH covers (the header TU's own measurements).
    pub work: TuWork,
    /// Time spent building the PCH (a full frontend pass plus
    /// serialization).
    pub build: PhaseBreakdown,
    /// Estimated on-disk size in bytes.
    pub size_bytes: u64,
}

impl PchFile {
    /// Builds a PCH for a header whose own TU measures `header_work`.
    ///
    /// Building costs a full frontend run (the header must be parsed) plus
    /// a serialization pass; there is no backend work.
    pub fn build(profile: &CompilerProfile, header_work: TuWork) -> PchFile {
        let mut build = profile.compile(&header_work);
        // No code is generated when producing a PCH.
        build.optimize_ms = 0.0;
        build.codegen_ms = 0.0;
        // Serialization: proportional to AST size, comparable to the load
        // cost.
        build.parse_sema_ms += header_work.lines as f64 * profile.pch_load_per_line_us / 1000.0;
        PchFile {
            work: header_work,
            build,
            size_bytes: (header_work.lines as f64 * PCH_BYTES_PER_LINE) as u64,
        }
    }

    /// Size in megabytes.
    pub fn size_mb(&self) -> f64 {
        self.size_bytes as f64 / 1e6
    }

    /// Simulates compiling `tu_work` using this PCH.
    pub fn compile_using(&self, profile: &CompilerProfile, tu_work: &TuWork) -> PhaseBreakdown {
        profile.compile_with_pch(tu_work, &self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_work() -> TuWork {
        TuWork {
            lines: 111_000,
            headers: 580,
            tokens: 690_000,
            instantiations: 200,
            concrete_body_stmts: 1_000,
            uninstantiated_template_stmts: 60_000,
            ..TuWork::default()
        }
    }

    #[test]
    fn pch_build_has_no_backend() {
        let pch = PchFile::build(&CompilerProfile::clang(), header_work());
        assert_eq!(pch.build.backend_ms(), 0.0);
        assert!(pch.build.frontend_ms() > 100.0);
    }

    #[test]
    fn pch_size_is_large_for_big_headers() {
        let pch = PchFile::build(&CompilerProfile::clang(), header_work());
        // The paper notes hundreds of MB; our 111k-line header ⇒ ~100 MB.
        assert!(pch.size_mb() > 50.0, "{}", pch.size_mb());
    }

    #[test]
    fn compile_using_pch_is_faster_than_cold() {
        let profile = CompilerProfile::clang();
        let pch = PchFile::build(&profile, header_work());
        let mut tu = header_work();
        tu.lines += 200;
        tu.tokens += 2_000;
        tu.instantiations += 20;
        let cold = profile.compile(&tu);
        let warm = pch.compile_using(&profile, &tu);
        assert!(warm.total_ms() < cold.total_ms() / 2.0);
    }
}
