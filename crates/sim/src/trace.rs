//! Chrome-trace output (`chrome://tracing`), matching the artifact's
//! `results/traces/*.json` files (paper appendix A.6).
//!
//! The simulator's virtual-time events use the same [`Event`] model and
//! writer as the tool's *real* self-profile (`yalla-obs`), so both kinds
//! of trace share one escaping-correct serializer, and traces from
//! several configurations can be merged side by side as separate `pid`
//! tracks with `M` (metadata) process-name events labelling each track.

pub use yalla_obs::{ArgValue, Event, Phase};

use crate::phases::PhaseBreakdown;

/// A virtual-time trace under construction.
///
/// Events are laid out sequentially from a cursor: each [`Trace::push`]
/// starts where the previous event ended, which is how the simulated
/// serial build timeline looks in the viewer.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<Event>,
    cursor_us: f64,
    pid: u32,
    tid: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// An empty trace on the default track (`pid` 1).
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            cursor_us: 0.0,
            pid: 1,
            tid: 1,
        }
    }

    /// An empty trace on its own `pid` track, opened with a metadata
    /// event naming the track (e.g. `config=yalla`). Merging such traces
    /// shows the configurations side by side in the viewer.
    pub fn for_process(pid: u32, label: &str) -> Self {
        let mut t = Trace {
            events: Vec::new(),
            cursor_us: 0.0,
            pid,
            tid: 1,
        };
        t.events.push(Event::process_name(pid, label));
        t
    }

    /// The pid track this trace writes to.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Appends an event of `duration_us` at the current cursor and
    /// advances the cursor.
    pub fn push(&mut self, name: &str, category: &str, duration_us: f64) {
        self.events.push(Event::complete(
            name,
            category,
            self.cursor_us,
            duration_us,
            self.pid,
            self.tid,
        ));
        self.cursor_us += duration_us;
    }

    /// Appends an instant marker (`ph: "i"`) at the current cursor — used
    /// for zero-width moments like "edit" in the dev-cycle timeline.
    pub fn push_instant(&mut self, name: &str, category: &str) {
        self.events.push(Event::instant(
            name,
            category,
            self.cursor_us,
            self.pid,
            self.tid,
        ));
    }

    /// Appends the standard frontend/backend events for one TU compile
    /// (the layout the paper's trace JSONs show).
    pub fn push_compile(&mut self, tu_name: &str, phases: &PhaseBreakdown) {
        self.push(
            &format!("{tu_name}: frontend"),
            "compile",
            phases.frontend_ms() * 1000.0,
        );
        self.push(
            &format!("{tu_name}: backend"),
            "compile",
            phases.backend_ms() * 1000.0,
        );
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Serializes to Chrome trace JSON (array-of-events form).
    pub fn to_json(&self) -> String {
        yalla_obs::chrome::to_json(&self.events)
    }

    /// Merges several traces (typically one per configuration, each on
    /// its own pid) into one combined Chrome-trace JSON document.
    pub fn merged_json(traces: &[Trace]) -> String {
        let events: Vec<Event> = traces
            .iter()
            .flat_map(|t| t.events.iter().cloned())
            .collect();
        yalla_obs::chrome::to_json(&events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_obs::json::{self, JsonValue};

    #[test]
    fn events_are_sequential() {
        let mut t = Trace::new();
        t.push("a", "compile", 10.0);
        t.push("b", "compile", 5.0);
        assert_eq!(t.events()[0].ts_us, 0.0);
        assert_eq!(t.events()[1].ts_us, 10.0);
    }

    #[test]
    fn json_shape() {
        let mut t = Trace::new();
        t.push_compile(
            "02",
            &PhaseBreakdown {
                parse_sema_ms: 1.0,
                codegen_ms: 2.0,
                ..PhaseBreakdown::default()
            },
        );
        let json = t.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("02: frontend"));
        assert!(json.contains("02: backend"));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn names_with_quotes_and_controls_stay_valid_json() {
        let mut t = Trace::new();
        t.push("quo\"te\\with\nnewline\u{01}", "c", 1.0);
        let text = t.to_json();
        let parsed = json::parse(&text).expect("valid JSON");
        let name = parsed.as_array().unwrap()[0]
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string();
        assert_eq!(name, "quo\"te\\with\nnewline\u{01}");
    }

    #[test]
    fn process_tracks_carry_metadata_events() {
        let mut a = Trace::for_process(1, "config=default");
        a.push("compile", "compile", 500.0);
        let mut b = Trace::for_process(2, "config=yalla");
        b.push("compile", "compile", 20.0);
        let combined = Trace::merged_json(&[a, b]);
        let parsed = json::parse(&combined).expect("valid JSON");
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 4);
        let meta: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(JsonValue::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(meta, ["config=default", "config=yalla"]);
        assert_eq!(
            arr.last().unwrap().get("pid").and_then(JsonValue::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn instant_markers() {
        let mut t = Trace::new();
        t.push("compile", "compile", 10.0);
        t.push_instant("edit", "cycle");
        let parsed = json::parse(&t.to_json()).unwrap();
        let e = &parsed.as_array().unwrap()[1];
        assert_eq!(e.get("ph").and_then(JsonValue::as_str), Some("i"));
        assert_eq!(e.get("ts").and_then(JsonValue::as_f64), Some(10.0));
    }
}
