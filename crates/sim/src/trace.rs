//! Chrome-trace output (`chrome://tracing`), matching the artifact's
//! `results/traces/*.json` files (paper appendix A.6).

use std::fmt::Write as _;

use crate::phases::PhaseBreakdown;

/// One complete ("X") trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (e.g. "Frontend").
    pub name: String,
    /// Category (e.g. "compile").
    pub category: String,
    /// Start, in virtual microseconds.
    pub start_us: f64,
    /// Duration, in virtual microseconds.
    pub duration_us: f64,
}

/// A trace under construction.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    cursor_us: f64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event of `duration_us` at the current cursor and
    /// advances the cursor.
    pub fn push(&mut self, name: &str, category: &str, duration_us: f64) {
        self.events.push(TraceEvent {
            name: name.into(),
            category: category.into(),
            start_us: self.cursor_us,
            duration_us,
        });
        self.cursor_us += duration_us;
    }

    /// Appends the standard frontend/backend events for one TU compile
    /// (the layout the paper's trace JSONs show).
    pub fn push_compile(&mut self, tu_name: &str, phases: &PhaseBreakdown) {
        self.push(
            &format!("{tu_name}: frontend"),
            "compile",
            phases.frontend_ms() * 1000.0,
        );
        self.push(
            &format!("{tu_name}: backend"),
            "compile",
            phases.backend_ms() * 1000.0,
        );
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serializes to Chrome trace JSON (array-of-events form).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {:.1}, \"dur\": {:.1}, \"pid\": 1, \"tid\": 1}}",
                escape(&e.name),
                escape(&e.category),
                e.start_us,
                e.duration_us
            );
        }
        out.push_str("\n]\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sequential() {
        let mut t = Trace::new();
        t.push("a", "compile", 10.0);
        t.push("b", "compile", 5.0);
        assert_eq!(t.events()[0].start_us, 0.0);
        assert_eq!(t.events()[1].start_us, 10.0);
    }

    #[test]
    fn json_shape() {
        let mut t = Trace::new();
        t.push_compile(
            "02",
            &PhaseBreakdown {
                parse_sema_ms: 1.0,
                codegen_ms: 2.0,
                ..PhaseBreakdown::default()
            },
        );
        let json = t.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("02: frontend"));
        assert!(json.contains("02: backend"));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn names_are_escaped() {
        let mut t = Trace::new();
        t.push("quo\"te", "c", 1.0);
        assert!(t.to_json().contains("quo\\\"te"));
    }
}
