//! Link-time modeling, including the LTO trade-off of §5.4.

use crate::cost::CompilerProfile;

/// An object file produced by compiling one translation unit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ObjectFile {
    /// Statements that were code-generated into this object.
    pub code_stmts: usize,
    /// Exported symbols (functions + globals), for symbol-resolution cost.
    pub symbols: usize,
}

/// Simulated link of `objects` into an executable. Returns milliseconds.
///
/// With `lto`, cross-TU optimization re-runs inlining and optimization
/// over all code at link time — the paper found this recovers the lost
/// run-time performance but costs too much wall-clock for the development
/// cycle (§5.4).
pub fn link_ms(profile: &CompilerProfile, objects: &[ObjectFile], lto: bool) -> f64 {
    let stmts: usize = objects.iter().map(|o| o.code_stmts).sum();
    let symbols: usize = objects.iter().map(|o| o.symbols).sum();
    let mut ms = profile.link_base_ms
        + stmts as f64 * profile.link_per_stmt_us / 1000.0
        + symbols as f64 * 0.4 / 1000.0;
    if lto {
        ms += stmts as f64 * profile.lto_per_stmt_us / 1000.0;
    }
    ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linking_scales_with_objects() {
        let p = CompilerProfile::clang();
        let small = link_ms(
            &p,
            &[ObjectFile {
                code_stmts: 10,
                symbols: 5,
            }],
            false,
        );
        let large = link_ms(
            &p,
            &[
                ObjectFile {
                    code_stmts: 10_000,
                    symbols: 900,
                },
                ObjectFile {
                    code_stmts: 8_000,
                    symbols: 700,
                },
            ],
            false,
        );
        assert!(large > small);
        assert!(small >= p.link_base_ms);
    }

    #[test]
    fn lto_costs_more_than_plain_link() {
        let p = CompilerProfile::clang();
        let objs = [ObjectFile {
            code_stmts: 5_000,
            symbols: 300,
        }];
        assert!(link_ms(&p, &objs, true) > 2.0 * link_ms(&p, &objs, false));
    }
}
