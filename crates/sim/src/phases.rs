//! Per-phase virtual timings.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Virtual milliseconds spent in each compiler phase for one translation
/// unit (the granularity of the paper's Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Preprocessing (include resolution, macro expansion).
    pub preprocess_ms: f64,
    /// Lexing, parsing, semantic analysis — or PCH AST deserialization.
    pub parse_sema_ms: f64,
    /// Template instantiation.
    pub instantiate_ms: f64,
    /// Optimization passes.
    pub optimize_ms: f64,
    /// Machine-code generation.
    pub codegen_ms: f64,
}

impl PhaseBreakdown {
    /// Frontend time (preprocess + parse/sema + instantiation), matching
    /// the paper's Clang `-ftime-trace` frontend bucket.
    pub fn frontend_ms(&self) -> f64 {
        self.preprocess_ms + self.parse_sema_ms + self.instantiate_ms
    }

    /// Backend time (optimization + codegen).
    pub fn backend_ms(&self) -> f64 {
        self.optimize_ms + self.codegen_ms
    }

    /// Total compile time for the TU.
    pub fn total_ms(&self) -> f64 {
        self.frontend_ms() + self.backend_ms()
    }
}

impl Add for PhaseBreakdown {
    type Output = PhaseBreakdown;
    fn add(self, rhs: PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            preprocess_ms: self.preprocess_ms + rhs.preprocess_ms,
            parse_sema_ms: self.parse_sema_ms + rhs.parse_sema_ms,
            instantiate_ms: self.instantiate_ms + rhs.instantiate_ms,
            optimize_ms: self.optimize_ms + rhs.optimize_ms,
            codegen_ms: self.codegen_ms + rhs.codegen_ms,
        }
    }
}

impl AddAssign for PhaseBreakdown {
    fn add_assign(&mut self, rhs: PhaseBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frontend {:.1} ms (pp {:.1}, parse {:.1}, inst {:.1}) + backend {:.1} ms (opt {:.1}, cg {:.1}) = {:.1} ms",
            self.frontend_ms(),
            self.preprocess_ms,
            self.parse_sema_ms,
            self.instantiate_ms,
            self.backend_ms(),
            self.optimize_ms,
            self.codegen_ms,
            self.total_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = PhaseBreakdown {
            preprocess_ms: 1.0,
            parse_sema_ms: 2.0,
            instantiate_ms: 3.0,
            optimize_ms: 4.0,
            codegen_ms: 5.0,
        };
        assert_eq!(a.frontend_ms(), 6.0);
        assert_eq!(a.backend_ms(), 9.0);
        assert_eq!(a.total_ms(), 15.0);
        let b = a + a;
        assert_eq!(b.total_ms(), 30.0);
        let mut c = a;
        c += a;
        assert_eq!(c, b);
    }

    #[test]
    fn display_mentions_all_phases() {
        let s = PhaseBreakdown::default().to_string();
        assert!(s.contains("frontend"));
        assert!(s.contains("backend"));
    }
}
