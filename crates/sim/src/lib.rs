//! A deterministic compilation-pipeline and development-cycle simulator.
//!
//! The paper evaluates YALLA by timing Clang 15 on an i7-11700K. This
//! reproduction cannot re-run that testbed, so the evaluation substrate is
//! a *simulator* whose inputs are **real counts produced by the real
//! frontend in this repository** — preprocessed lines, headers pulled in,
//! AST statements inside function bodies, template instantiations — and
//! whose outputs are virtual wall-clock times per compiler phase. The
//! phase structure mirrors §2.1 of the paper:
//!
//! * **frontend**: preprocessing + lexing/parsing/semantic analysis (and,
//!   under PCH, deserializing a precompiled AST instead of re-parsing),
//! * **template instantiation**,
//! * **backend**: optimization + code generation (proportional to the code
//!   that actually enters the translation unit — the reason YALLA beats
//!   PCH in Figure 7),
//! * **linking**, with an optional LTO mode (§5.4's discussion).
//!
//! A small abstract machine ([`ir`]) lowers kernels to pseudo-assembly
//! with *translation-unit-local inlining only* — cross-TU calls stay calls
//! (the effect Figure 9 shows) — and interprets them with per-call
//! overhead so development-cycle runs (Figure 8) have honest run times.
//!
//! Phase constants are calibrated against the paper's Table 2 default
//! column; see `cost::CompilerProfile`. All simulated time is virtual and
//! deterministic: no system clock is read.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
pub mod cost;
pub mod devcycle;
pub mod ir;
pub mod link;
pub mod pch;
pub mod phases;
pub mod trace;
pub mod tu;

pub use cost::{CompilerKind, CompilerProfile};
pub use devcycle::{
    concurrent_makespan, concurrent_speedup, BuildConfig, CycleReport, DevCycleSim, ToolMode,
};
pub use phases::PhaseBreakdown;
pub use tu::{measure_tu, TuWork};
