//! Measuring the *work* a translation unit represents.
//!
//! Everything the cost model consumes is counted here, from a real
//! preprocess + parse of the TU by this repository's frontend — no magic
//! numbers per subject. The quantities mirror what drives a real
//! compiler's phases (§2.1 of the paper): preprocessed lines and headers
//! (frontend), template instantiations (middle), and statements inside
//! function bodies that actually enter the TU (backend).

use std::collections::HashSet;

use yalla_cpp::ast::visit::{walk_tu, Visitor};
use yalla_cpp::ast::{Decl, DeclKind, Expr, ExprKind, Stmt, TranslationUnit, Type, TypeKind};
use yalla_cpp::pp::Preprocessor;
use yalla_cpp::vfs::Vfs;
use yalla_cpp::Result;

/// The measured work of one translation unit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TuWork {
    /// Non-blank lines entering the TU (paper Table 3 "LOCs").
    pub lines: usize,
    /// Distinct headers included (Table 3 "Headers").
    pub headers: usize,
    /// Tokens after preprocessing.
    pub tokens: usize,
    /// Macro expansions performed.
    pub macro_expansions: usize,
    /// Declarations in the AST (all nesting levels).
    pub decls: usize,
    /// Statements inside non-template function bodies (always optimized
    /// and code-generated).
    pub concrete_body_stmts: usize,
    /// Statements inside template function bodies that are *used* in this
    /// TU (instantiated, hence optimized and code-generated).
    pub instantiated_template_stmts: usize,
    /// Statements inside template bodies that are never instantiated here
    /// (parsed, but no backend cost).
    pub uninstantiated_template_stmts: usize,
    /// Distinct template instantiations observed (template-ids in types
    /// and calls, plus explicit instantiation declarations).
    pub instantiations: usize,
}

impl TuWork {
    /// Total statements that reach the backend.
    pub fn backend_stmts(&self) -> usize {
        self.concrete_body_stmts + self.instantiated_template_stmts
    }
}

/// Preprocesses and parses `main` inside `vfs` and counts its work.
///
/// # Errors
///
/// Propagates frontend errors.
pub fn measure_tu(vfs: &Vfs, main: &str, defines: &[(String, String)]) -> Result<TuWork> {
    let mut pp = Preprocessor::new(vfs);
    for (k, v) in defines {
        pp.define(k, v);
    }
    let out = pp.run(main)?;
    let tokens = out.tokens.len();
    let stats = out.stats;
    let ast = yalla_cpp::parse::parse_tokens(out.tokens)?;
    let mut counts = Counter::default();
    // Pass 1: what is called/used (drives which templates count as
    // instantiated).
    walk_tu(&mut counts, &ast);
    // Pass 2: attribute body statements.
    let mut attr = Attributor {
        used_names: &counts.used_names,
        concrete: 0,
        instantiated: 0,
        uninstantiated: 0,
    };
    attr.walk(&ast);
    Ok(TuWork {
        lines: stats.lines_compiled,
        headers: stats.header_count(),
        tokens,
        macro_expansions: stats.macro_expansions,
        decls: counts.decls,
        concrete_body_stmts: attr.concrete,
        instantiated_template_stmts: attr.instantiated,
        uninstantiated_template_stmts: attr.uninstantiated,
        instantiations: counts.instantiation_keys.len(),
    })
}

/// First pass: counts declarations and records used names + instantiations.
#[derive(Default)]
struct Counter {
    decls: usize,
    used_names: HashSet<String>,
    instantiation_keys: HashSet<String>,
}

impl Visitor for Counter {
    fn visit_decl(&mut self, decl: &Decl) {
        self.decls += 1;
        // Explicit instantiations count directly.
        match &decl.kind {
            DeclKind::Class(c) if c.is_explicit_instantiation => {
                self.instantiation_keys.insert(format!(
                    "{}{}",
                    c.name,
                    c.spec_args.as_deref().unwrap_or("")
                ));
            }
            DeclKind::Function(f) if f.specs.is_explicit_instantiation => {
                self.instantiation_keys
                    .insert(f.name.spelling().as_str().to_string());
            }
            _ => {}
        }
    }

    fn visit_expr(&mut self, expr: &Expr) {
        match &expr.kind {
            ExprKind::Call { callee, .. } => {
                if let Some(name) = callee.as_name() {
                    self.used_names.insert(name.base_ident().to_string());
                    if name.last().args.is_some() {
                        self.instantiation_keys.insert(name.to_string());
                    }
                }
                if let ExprKind::Member { member, .. } = &callee.kind {
                    self.used_names.insert(member.ident.clone());
                }
            }
            ExprKind::Name(n) => {
                self.used_names.insert(n.base_ident().to_string());
            }
            _ => {}
        }
    }

    fn visit_type(&mut self, ty: &Type) {
        if let TypeKind::Named(n) = &ty.kind {
            self.used_names.insert(n.base_ident().to_string());
            if n.segs.iter().any(|s| s.args.is_some()) {
                self.instantiation_keys.insert(n.to_string());
            }
        }
    }
}

/// Second pass: splits body statements into concrete / instantiated
/// template / uninstantiated template.
struct Attributor<'a> {
    used_names: &'a HashSet<String>,
    concrete: usize,
    instantiated: usize,
    uninstantiated: usize,
}

impl Attributor<'_> {
    fn walk(&mut self, tu: &TranslationUnit) {
        for d in &tu.decls {
            self.decl(d, false, true);
        }
    }

    /// `templated`: whether an enclosing template head applies;
    /// `used`: whether the enclosing entity is referenced in this TU.
    fn decl(&mut self, decl: &Decl, templated: bool, used: bool) {
        match &decl.kind {
            DeclKind::Namespace(ns) => {
                for d in &ns.decls {
                    self.decl(d, templated, used);
                }
            }
            DeclKind::Class(c) => {
                let class_templated = templated || c.template.is_some();
                let class_used = self.used_names.contains(&c.name);
                for m in &c.members {
                    self.decl(&m.decl, class_templated, class_used);
                }
            }
            DeclKind::Function(f) => {
                let Some(body) = &f.body else { return };
                let stmts = count_stmts(&body.stmts);
                let is_template = templated || f.template.is_some();
                if !is_template {
                    self.concrete += stmts;
                } else {
                    let name_used = match &f.name {
                        yalla_cpp::ast::FunctionName::Ident(n) => {
                            self.used_names.contains(n.split('<').next().unwrap_or(n))
                        }
                        yalla_cpp::ast::FunctionName::CallOperator => used,
                        other => self.used_names.contains(other.spelling().as_str()),
                    };
                    if name_used && (used || !templated) {
                        self.instantiated += stmts;
                    } else {
                        self.uninstantiated += stmts;
                    }
                }
            }
            _ => {}
        }
    }
}

fn count_stmts(stmts: &[Stmt]) -> usize {
    use yalla_cpp::ast::StmtKind;
    let mut n = 0;
    for s in stmts {
        n += 1;
        match &s.kind {
            StmtKind::Block(b) => n += count_stmts(&b.stmts),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                n += count_stmts(std::slice::from_ref(then_branch));
                if let Some(e) = else_branch {
                    n += count_stmts(std::slice::from_ref(e));
                }
            }
            StmtKind::For { body, .. }
            | StmtKind::RangeFor { body, .. }
            | StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. } => {
                n += count_stmts(std::slice::from_ref(body));
            }
            _ => {}
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(files: &[(&str, &str)], main: &str) -> TuWork {
        let mut vfs = Vfs::new();
        for (p, t) in files {
            vfs.add_file(p, *t);
        }
        measure_tu(&vfs, main, &[]).unwrap()
    }

    #[test]
    fn counts_lines_and_headers() {
        let w = measure(
            &[
                ("h.hpp", "int h1;\nint h2;\n"),
                ("m.cpp", "#include \"h.hpp\"\nint m;\n"),
            ],
            "m.cpp",
        );
        assert_eq!(w.headers, 1);
        assert_eq!(w.lines, 4);
        assert!(w.tokens > 6);
        assert_eq!(w.decls, 3);
    }

    #[test]
    fn concrete_bodies_count_backend_stmts() {
        let w = measure(
            &[("m.cpp", "int f() { int a = 1; int b = 2; return a + b; }")],
            "m.cpp",
        );
        assert_eq!(w.concrete_body_stmts, 3);
        assert_eq!(w.backend_stmts(), 3);
    }

    #[test]
    fn uninstantiated_templates_have_no_backend_cost() {
        let w = measure(
            &[(
                "m.cpp",
                "template<class T> T unused(T x) { int a; int b; int c; return x; }\nint main() { return 0; }",
            )],
            "m.cpp",
        );
        assert_eq!(w.uninstantiated_template_stmts, 4);
        assert_eq!(w.instantiated_template_stmts, 0);
        assert_eq!(w.concrete_body_stmts, 1);
    }

    #[test]
    fn called_templates_are_instantiated() {
        let w = measure(
            &[(
                "m.cpp",
                "template<class T> T g_add(T x, T y) { return x + y; }\nint main() { return g_add<int>(1, 2); }",
            )],
            "m.cpp",
        );
        assert_eq!(w.instantiated_template_stmts, 1);
        assert!(w.instantiations >= 1);
    }

    #[test]
    fn template_ids_in_types_count_as_instantiations() {
        let w = measure(
            &[(
                "m.cpp",
                "template<class A, class B> class View {};\nView<int, double> v;\nView<int, int> u;\n",
            )],
            "m.cpp",
        );
        assert_eq!(w.instantiations, 2);
    }

    #[test]
    fn bigger_header_means_more_work() {
        let small = measure(&[("m.cpp", "int x;\n")], "m.cpp");
        let mut big_header = String::new();
        for i in 0..100 {
            big_header.push_str(&format!("inline int f{i}(int v) {{ return v + {i}; }}\n"));
        }
        let big = measure(
            &[
                ("big.hpp", big_header.as_str()),
                ("m.cpp", "#include \"big.hpp\"\nint x;\n"),
            ],
            "m.cpp",
        );
        assert!(big.lines > small.lines + 90);
        assert!(big.concrete_body_stmts >= 100);
    }
}
