//! An abstract machine over the C++ subset: cycle-counting interpreter and
//! pseudo-assembly lowering.
//!
//! The paper's Figure 9 shows the crux of YALLA's run-time cost: with the
//! default build the compiler *inlines* `View::operator()` into the kernel
//! loop (direct memory accesses); with YALLA the accesses go through
//! `paren_operator`, which lives in `wrappers.cpp` — a different
//! translation unit — so the calls cannot be inlined and each one pays
//! call overhead. This module reproduces that mechanism:
//!
//! * every function knows its translation unit;
//! * calls to same-TU functions are inlined (no overhead) — unless LTO is
//!   off and the callee is in another TU, in which case each dynamic call
//!   costs [`ExecConfig::call_overhead_cycles`];
//! * the interpreter counts virtual cycles, which the dev-cycle simulator
//!   converts to run time;
//! * [`Machine::disassemble`] renders the same inlining decisions as
//!   pseudo-assembly for Figure 9.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use yalla_cpp::ast::{
    BinaryOp, Block, ClassDecl, Decl, DeclKind, EnumDecl, Expr, ExprKind, ForInit, FunctionDecl,
    FunctionName, Stmt, StmtKind, TranslationUnit, UnaryOp,
};

/// Index of a translation unit inside a [`Machine`].
pub type TuId = usize;

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    /// No value (void).
    Unit,
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Shared 1-D numeric array.
    Array(Rc<RefCell<Vec<f64>>>),
    /// Shared 2-D numeric array (row-major).
    Array2 {
        /// Element storage.
        data: Rc<RefCell<Vec<f64>>>,
        /// Row length.
        cols: usize,
    },
    /// A half-open iteration range (what `TeamThreadRange` returns).
    Range {
        /// Inclusive start.
        lo: i64,
        /// Exclusive end.
        hi: i64,
    },
    /// An object with named fields (functors, library types).
    Obj {
        /// Class name.
        class: String,
        /// Field storage.
        fields: Rc<RefCell<HashMap<String, Value>>>,
    },
    /// A reference to a named scalar slot in some scope (produced by
    /// `&var` on locals; lets generated functors mutate captured scalars
    /// through pointer fields exactly like the real generated C++ does).
    ScalarRef {
        /// The owning scope's shared storage.
        cell: Rc<RefCell<HashMap<String, Value>>>,
        /// Variable name within the scope.
        name: String,
    },
    /// A lambda closure.
    Closure {
        /// Parameter names.
        params: Rc<Vec<String>>,
        /// Body.
        body: Rc<Block>,
        /// Captured environment (by reference).
        env: Env,
        /// TU the lambda was written in.
        tu: TuId,
    },
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(a) => write!(f, "array[{}]", a.borrow().len()),
            Value::Array2 { data, cols } => {
                write!(f, "array2[{}x{cols}]", data.borrow().len() / cols.max(&1))
            }
            Value::Range { lo, hi } => write!(f, "range({lo}, {hi})"),
            Value::Obj { class, .. } => write!(f, "obj<{class}>"),
            Value::ScalarRef { name, .. } => write!(f, "&{name}"),
            Value::Closure { .. } => write!(f, "closure"),
        }
    }
}

impl Value {
    /// Numeric view (ints coerce to f64).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(f64::from(*b)),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Unit => false,
            _ => true,
        }
    }
}

/// A lexical environment: a chain of shared scopes.
#[derive(Clone, Default)]
pub struct Env {
    scopes: Vec<Rc<RefCell<HashMap<String, Value>>>>,
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<env: {} scopes>", self.scopes.len())
    }
}

impl Env {
    /// A fresh environment with one empty scope.
    pub fn new() -> Self {
        let mut e = Env::default();
        e.push();
        e
    }

    /// Pushes a new innermost scope.
    pub fn push(&mut self) {
        self.scopes.push(Rc::new(RefCell::new(HashMap::new())));
    }

    /// Pops the innermost scope.
    pub fn pop(&mut self) {
        self.scopes.pop();
    }

    /// Defines a variable in the innermost scope.
    pub fn define(&mut self, name: &str, value: Value) {
        if let Some(s) = self.scopes.last() {
            s.borrow_mut().insert(name.to_string(), value);
        }
    }

    /// Reads a variable.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.borrow().get(name).cloned())
    }

    /// The owning scope cell of `name`, for taking scalar references.
    pub fn cell_of(&self, name: &str) -> Option<Rc<RefCell<HashMap<String, Value>>>> {
        self.scopes
            .iter()
            .rev()
            .find(|s| s.borrow().contains_key(name))
            .cloned()
    }

    /// Writes an existing variable (innermost match).
    pub fn set(&mut self, name: &str, value: Value) -> bool {
        for s in self.scopes.iter().rev() {
            let mut b = s.borrow_mut();
            if b.contains_key(name) {
                b.insert(name.to_string(), value);
                return true;
            }
        }
        false
    }
}

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

fn err<T>(message: impl Into<String>) -> Result<T, ExecError> {
    Err(ExecError {
        message: message.into(),
    })
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Cycles charged for each call that crosses a TU boundary
    /// (frame setup, spilled registers, lost optimization context).
    pub call_overhead_cycles: u64,
    /// Cross-TU inlining (link-time optimization, §5.4): when on, no
    /// cross-TU overhead is charged.
    pub lto: bool,
    /// Fuel: maximum interpreted operations before aborting.
    pub max_ops: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            call_overhead_cycles: 12,
            lto: false,
            max_ops: 200_000_000,
        }
    }
}

/// A native (built-in) function: the simulated library runtime.
pub type NativeFn = Rc<dyn Fn(&mut Machine, Vec<Value>) -> Result<Value, ExecError>>;

/// A native method dispatcher: `(machine, receiver, method, args)`.
pub type MethodDispatcher =
    Rc<dyn Fn(&mut Machine, &Value, &str, Vec<Value>) -> Option<Result<Value, ExecError>>>;

struct FnEntry {
    decl: Rc<FunctionDecl>,
    tu: TuId,
}

struct ClassEntry {
    decl: Rc<ClassDecl>,
    tu: TuId,
}

/// The abstract machine.
pub struct Machine {
    functions: HashMap<String, FnEntry>,
    /// Out-of-line method bodies: `Class::method`.
    methods: HashMap<String, FnEntry>,
    classes: HashMap<String, ClassEntry>,
    /// Enumerator values from loaded `enum` declarations, keyed by every
    /// qualification a use site can spell (`ns::E::A`, `E::A`, and for
    /// unscoped enums also `ns::A`/`A`).
    enum_constants: HashMap<String, i64>,
    natives: HashMap<String, NativeFn>,
    dispatcher: Option<MethodDispatcher>,
    config: ExecConfig,
    /// Virtual cycles consumed.
    pub cycles: u64,
    ops: u64,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Machine({} fns, {} classes, {} cycles)",
            self.functions.len(),
            self.classes.len(),
            self.cycles
        )
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

impl Machine {
    /// Creates an empty machine.
    pub fn new(config: ExecConfig) -> Self {
        Machine {
            functions: HashMap::new(),
            methods: HashMap::new(),
            classes: HashMap::new(),
            enum_constants: HashMap::new(),
            natives: HashMap::new(),
            dispatcher: None,
            config,
            cycles: 0,
            ops: 0,
        }
    }

    /// Loads every function and class of `tu_ast` as translation unit
    /// `tu`. First registration of a name wins (matching the ODR).
    pub fn load_tu(&mut self, tu_ast: &TranslationUnit, tu: TuId) {
        self.load_decls(&tu_ast.decls, tu, &mut Vec::new());
    }

    fn load_decls(&mut self, decls: &[Decl], tu: TuId, path: &mut Vec<String>) {
        for d in decls {
            match &d.kind {
                DeclKind::Namespace(ns) => {
                    path.push(ns.name.clone());
                    self.load_decls(&ns.decls, tu, path);
                    path.pop();
                }
                DeclKind::Function(f) => {
                    if f.body.is_none() {
                        continue;
                    }
                    let key = match &f.qualifier {
                        Some(q) => format!("{}::{}", q.key(), f.name.spelling()),
                        None => {
                            let mut k = path
                                .iter()
                                .filter(|s| !s.is_empty())
                                .cloned()
                                .collect::<Vec<_>>()
                                .join("::");
                            if !k.is_empty() {
                                k.push_str("::");
                            }
                            k.push_str(f.name.spelling().as_str());
                            k
                        }
                    };
                    let entry = FnEntry {
                        decl: Rc::new(f.clone()),
                        tu,
                    };
                    if f.qualifier.is_some() {
                        self.methods.entry(key).or_insert(entry);
                    } else {
                        self.functions.entry(key).or_insert(entry);
                    }
                }
                DeclKind::Class(c) if c.is_definition => {
                    self.classes.entry(c.name.clone()).or_insert(ClassEntry {
                        decl: Rc::new(c.clone()),
                        tu,
                    });
                }
                DeclKind::Enum(e) => self.load_enum(e, path),
                _ => {}
            }
        }
    }

    /// Registers the enumerators of `en` under every spelling a use site
    /// can reach them by. Values follow the C++ rule the planner also
    /// implements: an explicit integer initializer sets the counter, every
    /// other enumerator takes previous + 1 starting from zero.
    fn load_enum(&mut self, en: &EnumDecl, path: &[String]) {
        let ns = path
            .iter()
            .filter(|s| !s.is_empty())
            .cloned()
            .collect::<Vec<_>>()
            .join("::");
        let mut next = 0i64;
        for e in &en.enumerators {
            let value = match &e.value {
                Some(text) => text.trim().parse::<i64>().unwrap_or(next),
                None => next,
            };
            next = value + 1;
            let mut keys = Vec::new();
            if !en.name.is_empty() {
                keys.push(format!("{}::{}", en.name, e.name));
                if !ns.is_empty() {
                    keys.push(format!("{ns}::{}::{}", en.name, e.name));
                }
            }
            if !en.scoped {
                keys.push(e.name.clone());
                if !ns.is_empty() {
                    keys.push(format!("{ns}::{}", e.name));
                }
            }
            for k in keys {
                self.enum_constants.entry(k).or_insert(value);
            }
        }
    }

    /// Looks up a loaded enumerator value by qualified spelling.
    pub fn enum_constant(&self, key: &str) -> Option<i64> {
        self.enum_constants.get(key).copied()
    }

    /// Registers a native function under `name` (and its base name).
    pub fn register_native(
        &mut self,
        name: &str,
        f: impl Fn(&mut Machine, Vec<Value>) -> Result<Value, ExecError> + 'static,
    ) {
        let f: NativeFn = Rc::new(f);
        self.natives.insert(name.to_string(), f.clone());
        if let Some(base) = name.rsplit("::").next() {
            self.natives.entry(base.to_string()).or_insert(f);
        }
    }

    /// Installs the native-method dispatcher.
    pub fn set_method_dispatcher(
        &mut self,
        d: impl Fn(&mut Machine, &Value, &str, Vec<Value>) -> Option<Result<Value, ExecError>> + 'static,
    ) {
        self.dispatcher = Some(Rc::new(d));
    }

    /// Resets the cycle and op counters.
    pub fn reset_counters(&mut self) {
        self.cycles = 0;
        self.ops = 0;
    }

    fn tick(&mut self, cycles: u64) -> Result<(), ExecError> {
        self.cycles += cycles;
        self.ops += 1;
        if self.ops > self.config.max_ops {
            return err("fuel exhausted (infinite loop?)");
        }
        Ok(())
    }

    /// Calls a named function with `args`, starting in TU `caller_tu`.
    ///
    /// # Errors
    ///
    /// Fails on unknown names, bad arity/types, or fuel exhaustion.
    pub fn call(
        &mut self,
        name: &str,
        args: Vec<Value>,
        caller_tu: TuId,
    ) -> Result<Value, ExecError> {
        // AST function?
        if let Some((decl, tu)) = self
            .functions
            .get(name)
            .map(|e| (e.decl.clone(), e.tu))
            .or_else(|| {
                // Unqualified fallback: unique suffix match.
                let base = name.rsplit("::").next().unwrap_or(name);
                let mut hits = self
                    .functions
                    .iter()
                    .filter(|(k, _)| k.rsplit("::").next() == Some(base));
                match (hits.next(), hits.next()) {
                    (Some((_, e)), None) => Some((e.decl.clone(), e.tu)),
                    _ => None,
                }
            })
        {
            if tu != caller_tu && !self.config.lto {
                self.tick(self.config.call_overhead_cycles)?;
            }
            return self.invoke_ast(&decl, None, args, tu);
        }
        // Native?
        if let Some(f) = self.natives.get(name).cloned() {
            self.tick(2)?;
            return f(self, args);
        }
        let base = name.rsplit("::").next().unwrap_or(name);
        if let Some(f) = self.natives.get(base).cloned() {
            self.tick(2)?;
            return f(self, args);
        }
        // Constructor-style call: `T(args)` for a known class or native
        // constructor.
        if self.natives.contains_key(&format!("ctor::{base}")) || self.classes.contains_key(base) {
            self.tick(4)?;
            return self.construct(base, args, caller_tu);
        }
        err(format!("unknown function `{name}`"))
    }

    /// Invokes a callable *value*: closure, functor object, or array
    /// (operator() indexing).
    pub fn call_value(
        &mut self,
        callee: &Value,
        args: Vec<Value>,
        caller_tu: TuId,
    ) -> Result<Value, ExecError> {
        match callee {
            Value::Closure {
                params,
                body,
                env,
                tu,
            } => {
                // Lambdas are local: calling one from its own TU is free.
                if *tu != caller_tu && !self.config.lto {
                    self.tick(self.config.call_overhead_cycles)?;
                }
                let mut env = env.clone();
                env.push();
                for (p, a) in params.iter().zip(args) {
                    env.define(p, a);
                }
                let body = body.clone();
                let tu = *tu;
                let flow = self.exec_block(&body, &mut env, tu)?;
                env.pop();
                Ok(match flow {
                    Flow::Return(v) => v,
                    _ => Value::Unit,
                })
            }
            Value::Obj { class, fields } => {
                // Functor: find operator() in the class.
                let entry = self.classes.get(class).ok_or_else(|| ExecError {
                    message: format!("unknown class `{class}`"),
                })?;
                let (decl, tu) = (entry.decl.clone(), entry.tu);
                let method = decl
                    .methods()
                    .find(|(_, f)| f.name == FunctionName::CallOperator && f.body.is_some())
                    .map(|(_, f)| f.clone());
                // In-class body, or an out-of-line definition.
                let method = match method {
                    Some(m) => m,
                    None => {
                        let key = format!("{class}::operator()");
                        match self.methods.get(&key) {
                            Some(e) => (*e.decl).clone(),
                            None => return err(format!("class `{class}` has no operator()")),
                        }
                    }
                };
                if tu != caller_tu && !self.config.lto {
                    self.tick(self.config.call_overhead_cycles)?;
                }
                self.invoke_ast(
                    &method,
                    Some(Value::Obj {
                        class: class.clone(),
                        fields: fields.clone(),
                    }),
                    args,
                    tu,
                )
            }
            Value::Array2 { data, cols } => {
                // Direct (inlined) element access.
                self.tick(2)?;
                let i = args
                    .first()
                    .and_then(Value::as_i64)
                    .ok_or_else(|| ExecError {
                        message: "array2 index".into(),
                    })?;
                let j = args.get(1).and_then(Value::as_i64).unwrap_or(0);
                let idx = i as usize * *cols + j as usize;
                let v = data.borrow().get(idx).copied().unwrap_or(0.0);
                Ok(Value::Float(v))
            }
            Value::Array(a) => {
                self.tick(2)?;
                let i = args
                    .first()
                    .and_then(Value::as_i64)
                    .ok_or_else(|| ExecError {
                        message: "array index".into(),
                    })?;
                let v = a.borrow().get(i as usize).copied().unwrap_or(0.0);
                Ok(Value::Float(v))
            }
            other => err(format!("value {other:?} is not callable")),
        }
    }

    /// Runs an AST function with an optional receiver (`this` fields are
    /// spliced into scope, as methods see them).
    fn invoke_ast(
        &mut self,
        decl: &FunctionDecl,
        receiver: Option<Value>,
        args: Vec<Value>,
        tu: TuId,
    ) -> Result<Value, ExecError> {
        let mut env = Env::new();
        if let Some(Value::Obj { fields, class }) = &receiver {
            // Fields become variables shared with the object.
            for (k, v) in fields.borrow().iter() {
                env.define(k, v.clone());
            }
            env.define(
                "this",
                Value::Obj {
                    class: class.clone(),
                    fields: fields.clone(),
                },
            );
        }
        env.push();
        for (p, a) in decl.params.iter().zip(args) {
            if !p.name.is_empty() {
                env.define(&p.name, a);
            }
        }
        let body = decl.body.clone().ok_or_else(|| ExecError {
            message: format!("function `{}` has no body", decl.name.spelling()),
        })?;
        let flow = self.exec_block(&body, &mut env, tu)?;
        // Write back (possibly reassigned) scalar fields for by-value
        // receivers is unnecessary: our objects share field storage.
        Ok(match flow {
            Flow::Return(v) => v,
            _ => Value::Unit,
        })
    }

    fn exec_block(&mut self, block: &Block, env: &mut Env, tu: TuId) -> Result<Flow, ExecError> {
        env.push();
        for s in &block.stmts {
            match self.exec_stmt(s, env, tu)? {
                Flow::Normal => {}
                other => {
                    env.pop();
                    return Ok(other);
                }
            }
        }
        env.pop();
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env, tu: TuId) -> Result<Flow, ExecError> {
        self.tick(1)?;
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.eval(e, env, tu)?;
                Ok(Flow::Normal)
            }
            StmtKind::Decl(v) => {
                let value = match &v.init {
                    Some(e) => self.eval(e, env, tu)?,
                    // Default construction: class-typed locals become
                    // objects; scalars become zero.
                    None => match v.ty.core_name() {
                        Some(n) => self.construct(&n.key(), vec![], tu)?,
                        None => Value::Int(0),
                    },
                };
                env.define(&v.name, value);
                Ok(Flow::Normal)
            }
            StmtKind::Block(b) => self.exec_block(b, env, tu),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond, env, tu)?.truthy() {
                    self.exec_stmt(then_branch, env, tu)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, env, tu)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => {
                env.push();
                match init.as_ref() {
                    ForInit::Decl(v) => {
                        let value = match &v.init {
                            Some(e) => self.eval(e, env, tu)?,
                            None => Value::Int(0),
                        };
                        env.define(&v.name, value);
                    }
                    ForInit::Expr(e) => {
                        self.eval(e, env, tu)?;
                    }
                    ForInit::Empty => {}
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(c, env, tu)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_stmt(body, env, tu)? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            env.pop();
                            return Ok(Flow::Return(v));
                        }
                        _ => {}
                    }
                    if let Some(i) = inc {
                        self.eval(i, env, tu)?;
                    }
                }
                env.pop();
                Ok(Flow::Normal)
            }
            StmtKind::RangeFor { var, range, body } => {
                let r = self.eval(range, env, tu)?;
                let (lo, hi) = match r {
                    Value::Range { lo, hi } => (lo, hi),
                    Value::Array(a) => (0, a.borrow().len() as i64),
                    other => return err(format!("cannot iterate {other:?}")),
                };
                env.push();
                for i in lo..hi {
                    env.define(&var.name, Value::Int(i));
                    match self.exec_stmt(body, env, tu)? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            env.pop();
                            return Ok(Flow::Return(v));
                        }
                        _ => {}
                    }
                }
                env.pop();
                Ok(Flow::Normal)
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond, env, tu)?.truthy() {
                    match self.exec_stmt(body, env, tu)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    match self.exec_stmt(body, env, tu)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if !self.eval(cond, env, tu)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env, tu)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Empty => Ok(Flow::Normal),
        }
    }

    /// Evaluates an expression.
    pub fn eval(&mut self, expr: &Expr, env: &mut Env, tu: TuId) -> Result<Value, ExecError> {
        self.tick(1)?;
        match &expr.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Char(c) => Ok(Value::Int(*c as i64)),
            ExprKind::Null => Ok(Value::Int(0)),
            ExprKind::This => env.get("this").ok_or_else(|| ExecError {
                message: "`this` outside method".into(),
            }),
            ExprKind::Name(n) => {
                let base = n.key();
                if let Some(v) = env.get(&base) {
                    return Ok(v);
                }
                if n.segs.len() == 1 {
                    if let Some(v) = env.get(&n.segs[0].ident) {
                        return Ok(v);
                    }
                }
                // Enumerators of loaded `enum` declarations evaluate to
                // their declared value, matching what the rewriter folds
                // them to in substituted sources.
                if let Some(v) = self.enum_constants.get(&base) {
                    return Ok(Value::Int(*v));
                }
                // Other qualified names that resolve to nothing are library
                // constants (flags) whose definitions live in stubbed
                // headers; their exact value does not affect the cycle
                // counts we measure.
                if n.segs.len() > 1 {
                    return Ok(Value::Int(0));
                }
                err(format!("unbound name `{base}`"))
            }
            ExprKind::Unary { op, expr: e } => self.eval_unary(*op, e, env, tu),
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, env, tu),
            ExprKind::Conditional {
                cond,
                then_expr,
                else_expr,
            } => {
                if self.eval(cond, env, tu)?.truthy() {
                    self.eval(then_expr, env, tu)
                } else {
                    self.eval(else_expr, env, tu)
                }
            }
            ExprKind::Call { callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env, tu)?);
                }
                // Method call?
                if let ExprKind::Member { base, member, .. } = &callee.kind {
                    let recv = self.eval(base, env, tu)?;
                    return self.call_method(&recv, &member.ident, argv, tu);
                }
                // Named call: local callable first, then function.
                if let Some(n) = callee.as_name() {
                    let key = n.key();
                    let local = env.get(&key).or_else(|| env.get(n.base_ident()));
                    if let Some(v) = local {
                        return self.call_value(&v, argv, tu);
                    }
                    return self.call(&key, argv, tu);
                }
                let callee_v = self.eval(callee, env, tu)?;
                self.call_value(&callee_v, argv, tu)
            }
            ExprKind::Member { base, member, .. } => {
                let recv = self.eval(base, env, tu)?;
                match &recv {
                    Value::Obj { fields, .. } => {
                        if let Some(v) = fields.borrow().get(&member.ident) {
                            return Ok(v.clone());
                        }
                        // Zero-arg method used as a field? Fall through to
                        // dispatcher.
                        self.call_method(&recv, &member.ident, vec![], tu)
                    }
                    _ => self.call_method(&recv, &member.ident, vec![], tu),
                }
            }
            ExprKind::Index { base, index } => {
                let b = self.eval(base, env, tu)?;
                let i = self
                    .eval(index, env, tu)?
                    .as_i64()
                    .ok_or_else(|| ExecError {
                        message: "index must be integer".into(),
                    })?;
                match b {
                    Value::Array(a) => {
                        self.tick(1)?;
                        Ok(Value::Float(
                            a.borrow().get(i as usize).copied().unwrap_or(0.0),
                        ))
                    }
                    other => err(format!("cannot index {other:?}")),
                }
            }
            ExprKind::Lambda(l) => Ok(Value::Closure {
                params: Rc::new(l.params.iter().map(|(_, n)| n.clone()).collect()),
                body: Rc::new(l.body.clone()),
                env: env.clone(),
                tu,
            }),
            ExprKind::New { ty, args } => {
                // Heap allocation: construct an object/array via natives.
                let name = ty
                    .core_name()
                    .map(|n| n.key())
                    .unwrap_or_else(|| "int".into());
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env, tu)?);
                }
                self.tick(8)?; // allocation cost
                if argv.len() == 1 && !matches!(argv[0], Value::Unit) {
                    // `new T(value)` used by wrappers: box the value —
                    // our values are shared, so "boxing" is identity.
                    return Ok(argv.remove(0));
                }
                self.construct(&name, argv, tu)
            }
            ExprKind::Delete { expr: e, .. } => {
                self.eval(e, env, tu)?;
                self.tick(4)?;
                Ok(Value::Unit)
            }
            ExprKind::Cast { expr: e, ty, .. } => {
                let v = self.eval(e, env, tu)?;
                let target = ty.to_string();
                Ok(if target.contains("int") {
                    Value::Int(v.as_i64().unwrap_or(0))
                } else if target.contains("double") || target.contains("float") {
                    Value::Float(v.as_f64().unwrap_or(0.0))
                } else {
                    v
                })
            }
            ExprKind::BraceInit { ty, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env, tu)?);
                }
                match ty.as_ref().and_then(|t| t.core_name()).map(|n| n.key()) {
                    Some(name) => self.construct(&name, argv, tu),
                    None => Ok(argv.pop().unwrap_or(Value::Unit)),
                }
            }
            ExprKind::Paren(e) => self.eval(e, env, tu),
            ExprKind::Sizeof(_) => Ok(Value::Int(8)),
        }
    }

    /// Constructs an instance of a loaded class (fields from `args`, in
    /// declaration order) or defers to a native constructor.
    pub fn construct(
        &mut self,
        class: &str,
        args: Vec<Value>,
        _tu: TuId,
    ) -> Result<Value, ExecError> {
        let base = class.rsplit("::").next().unwrap_or(class);
        // Native constructors win over loaded class definitions: the
        // runtime's `View`/`Mat` representations are authoritative even
        // when a (stub) class definition happens to be loaded.
        if let Some(f) = self.natives.get(&format!("ctor::{base}")).cloned() {
            return f(self, args);
        }
        if let Some(entry) = self.classes.get(base) {
            let decl = entry.decl.clone();
            let fields: HashMap<String, Value> = decl
                .fields()
                .map(|(_, f)| f.name.clone())
                .zip(args.into_iter().chain(std::iter::repeat(Value::Int(0))))
                .collect();
            return Ok(Value::Obj {
                class: base.to_string(),
                fields: Rc::new(RefCell::new(fields)),
            });
        }
        if let Some(f) = self.natives.get(&format!("ctor::{base}")).cloned() {
            return f(self, args);
        }
        // Unknown type: opaque object.
        Ok(Value::Obj {
            class: base.to_string(),
            fields: Rc::new(RefCell::new(HashMap::new())),
        })
    }

    /// Calls a method on a receiver: AST methods of loaded classes first,
    /// then the native dispatcher.
    pub fn call_method(
        &mut self,
        recv: &Value,
        method: &str,
        args: Vec<Value>,
        caller_tu: TuId,
    ) -> Result<Value, ExecError> {
        if let Value::Obj { class, .. } = recv {
            // In-class or out-of-line AST method.
            let found = self.classes.get(class).and_then(|e| {
                e.decl
                    .methods()
                    .find(|(_, f)| f.name.spelling() == method && f.body.is_some())
                    .map(|(_, f)| (f.clone(), e.tu))
            });
            let found = found.or_else(|| {
                self.methods
                    .get(&format!("{class}::{method}"))
                    .map(|e| ((*e.decl).clone(), e.tu))
            });
            if let Some((decl, tu)) = found {
                if tu != caller_tu && !self.config.lto {
                    self.tick(self.config.call_overhead_cycles)?;
                }
                return self.invoke_ast(&decl, Some(recv.clone()), args, tu);
            }
        }
        if let Some(d) = self.dispatcher.clone() {
            if let Some(result) = d(self, recv, method, args) {
                return result;
            }
        }
        err(format!("no method `{method}` on {recv:?}"))
    }

    fn eval_unary(
        &mut self,
        op: UnaryOp,
        e: &Expr,
        env: &mut Env,
        tu: TuId,
    ) -> Result<Value, ExecError> {
        // ++/-- mutate in place.
        match op {
            UnaryOp::PreInc | UnaryOp::PostInc | UnaryOp::PreDec | UnaryOp::PostDec => {
                let old = self.eval(e, env, tu)?;
                let delta = if matches!(op, UnaryOp::PreInc | UnaryOp::PostInc) {
                    1
                } else {
                    -1
                };
                let new = Value::Int(old.as_i64().unwrap_or(0) + delta);
                self.assign(e, new.clone(), env, tu)?;
                return Ok(match op {
                    UnaryOp::PostInc | UnaryOp::PostDec => old,
                    _ => new,
                });
            }
            _ => {}
        }
        // `&local_scalar` produces a real reference so mutation through a
        // generated functor's pointer field reaches the original variable.
        if op == UnaryOp::AddrOf {
            if let Some(n) = e.as_name() {
                if n.segs.len() == 1 {
                    let name = n.segs[0].ident.clone();
                    if let Some(cell) = env.cell_of(&name) {
                        let current = cell.borrow().get(&name).cloned();
                        // Shared handles (arrays, objects) stay handles;
                        // scalars get a reference.
                        if matches!(
                            current,
                            Some(Value::Int(_) | Value::Float(_) | Value::Bool(_))
                        ) {
                            return Ok(Value::ScalarRef { cell, name });
                        }
                    }
                }
            }
        }
        let v = self.eval(e, env, tu)?;
        Ok(match op {
            UnaryOp::Neg => match v {
                Value::Float(f) => Value::Float(-f),
                other => Value::Int(-other.as_i64().unwrap_or(0)),
            },
            UnaryOp::Not => Value::Bool(!v.truthy()),
            UnaryOp::BitNot => Value::Int(!v.as_i64().unwrap_or(0)),
            UnaryOp::Deref => match v {
                Value::ScalarRef { cell, name } => {
                    cell.borrow().get(&name).cloned().unwrap_or(Value::Int(0))
                }
                other => other,
            },
            // Address-of on non-scalars: objects/arrays are shared
            // handles already.
            UnaryOp::AddrOf => v,
            _ => v,
        })
    }

    fn eval_binary(
        &mut self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        env: &mut Env,
        tu: TuId,
    ) -> Result<Value, ExecError> {
        use BinaryOp::*;
        if op == Assign {
            let v = self.eval(rhs, env, tu)?;
            self.assign(lhs, v.clone(), env, tu)?;
            return Ok(v);
        }
        if op.is_assignment() {
            let cur = self.eval(lhs, env, tu)?;
            let r = self.eval(rhs, env, tu)?;
            let base_op = match op {
                AddAssign => Add,
                SubAssign => Sub,
                MulAssign => Mul,
                DivAssign => Div,
                RemAssign => Rem,
                ShlAssign => Shl,
                ShrAssign => Shr,
                AndAssign => BitAnd,
                OrAssign => BitOr,
                XorAssign => BitXor,
                _ => unreachable!("assignment op"),
            };
            let v = arith(base_op, &cur, &r)?;
            self.assign(lhs, v.clone(), env, tu)?;
            return Ok(v);
        }
        if op == And {
            let l = self.eval(lhs, env, tu)?;
            if !l.truthy() {
                return Ok(Value::Bool(false));
            }
            return Ok(Value::Bool(self.eval(rhs, env, tu)?.truthy()));
        }
        if op == Or {
            let l = self.eval(lhs, env, tu)?;
            if l.truthy() {
                return Ok(Value::Bool(true));
            }
            return Ok(Value::Bool(self.eval(rhs, env, tu)?.truthy()));
        }
        let l = self.eval(lhs, env, tu)?;
        let r = self.eval(rhs, env, tu)?;
        arith(op, &l, &r)
    }

    /// Assigns `value` to the place denoted by `target`.
    fn assign(
        &mut self,
        target: &Expr,
        value: Value,
        env: &mut Env,
        tu: TuId,
    ) -> Result<(), ExecError> {
        self.tick(1)?;
        match &target.kind {
            ExprKind::Name(n) => {
                let key = n.key();
                if env.set(&key, value.clone()) || env.set(n.base_ident(), value.clone()) {
                    // Also update the receiver's field storage when the
                    // name is a field brought into scope by a method call.
                    if let Some(Value::Obj { fields, .. }) = env.get("this") {
                        let mut b = fields.borrow_mut();
                        if b.contains_key(n.base_ident()) {
                            b.insert(n.base_ident().to_string(), value);
                        }
                    }
                    return Ok(());
                }
                // New binding (assignment to undeclared: tolerated).
                env.define(&key, value);
                Ok(())
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                expr: e,
            } => {
                // Writing through a pointer: if the pointee is a scalar
                // reference, store into its owning scope.
                if let Some(n) = e.as_name() {
                    let key = n.key();
                    let target = env.get(&key).or_else(|| env.get(n.base_ident()));
                    if let Some(Value::ScalarRef { cell, name }) = target {
                        cell.borrow_mut().insert(name, value);
                        return Ok(());
                    }
                }
                self.assign(e, value, env, tu)
            }
            ExprKind::Paren(e) | ExprKind::Unary { expr: e, .. } => self.assign(e, value, env, tu),
            ExprKind::Member { base, member, .. } => {
                let recv = self.eval(base, env, tu)?;
                match recv {
                    Value::Obj { fields, .. } => {
                        fields.borrow_mut().insert(member.ident.clone(), value);
                        Ok(())
                    }
                    other => err(format!("cannot assign to member of {other:?}")),
                }
            }
            ExprKind::Index { base, index } => {
                let b = self.eval(base, env, tu)?;
                let i = self
                    .eval(index, env, tu)?
                    .as_i64()
                    .ok_or_else(|| ExecError {
                        message: "index must be integer".into(),
                    })?;
                match b {
                    Value::Array(a) => {
                        let mut arr = a.borrow_mut();
                        let idx = i as usize;
                        if idx >= arr.len() {
                            arr.resize(idx + 1, 0.0);
                        }
                        arr[idx] = value.as_f64().unwrap_or(0.0);
                        Ok(())
                    }
                    other => err(format!("cannot index-assign {other:?}")),
                }
            }
            ExprKind::Call { callee, args } => {
                // Assignment through operator(): `x(j, i) = v` or
                // `paren_operator(x, j, i) = v` (wrapper returning a
                // reference). Resolve the array element place.
                let place = self.resolve_element_place(callee, args, env, tu)?;
                match place {
                    Some((data, idx)) => {
                        let mut arr = data.borrow_mut();
                        if idx >= arr.len() {
                            arr.resize(idx + 1, 0.0);
                        }
                        arr[idx] = value.as_f64().unwrap_or(0.0);
                        Ok(())
                    }
                    None => err("call expression is not assignable"),
                }
            }
            other => err(format!("not an assignable place: {other:?}")),
        }
    }

    /// Resolves `callee(args)` to an array element, when the callee is an
    /// array-like object or a wrapper whose first argument is one. Charges
    /// the same cross-TU overhead an actual call would.
    #[allow(clippy::type_complexity)]
    fn resolve_element_place(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        env: &mut Env,
        tu: TuId,
    ) -> Result<Option<(Rc<RefCell<Vec<f64>>>, usize)>, ExecError> {
        let Some(name) = callee.as_name() else {
            return Ok(None);
        };
        // Direct object call: x(j, i).
        if let Some(v) = env.get(name.base_ident()) {
            return self.element_of(&v, args, env, tu);
        }
        // Wrapper call: paren_operator(x, j, i) — the wrapper lives in
        // another TU; charge the call overhead, then treat arg0 as the
        // receiver.
        if self.functions.contains_key(&name.key())
            || self
                .functions
                .keys()
                .any(|k| k.rsplit("::").next() == Some(name.base_ident()))
        {
            let entry_tu = self
                .functions
                .get(&name.key())
                .map(|e| e.tu)
                .or_else(|| {
                    self.functions
                        .iter()
                        .find(|(k, _)| k.rsplit("::").next() == Some(name.base_ident()))
                        .map(|(_, e)| e.tu)
                })
                .unwrap_or(tu);
            if entry_tu != tu && !self.config.lto {
                self.tick(self.config.call_overhead_cycles)?;
            }
            if let Some(first) = args.first() {
                let recv = self.eval(first, env, tu)?;
                return self.element_of(&recv, &args[1..], env, tu);
            }
        }
        Ok(None)
    }

    #[allow(clippy::type_complexity)]
    fn element_of(
        &mut self,
        recv: &Value,
        idx_args: &[Expr],
        env: &mut Env,
        tu: TuId,
    ) -> Result<Option<(Rc<RefCell<Vec<f64>>>, usize)>, ExecError> {
        match recv {
            Value::Array2 { data, cols } => {
                let i = self.eval(&idx_args[0], env, tu)?.as_i64().unwrap_or(0) as usize;
                let j = if idx_args.len() > 1 {
                    self.eval(&idx_args[1], env, tu)?.as_i64().unwrap_or(0) as usize
                } else {
                    0
                };
                self.tick(2)?;
                Ok(Some((data.clone(), i * cols + j)))
            }
            Value::Array(a) => {
                let i = self.eval(&idx_args[0], env, tu)?.as_i64().unwrap_or(0) as usize;
                self.tick(1)?;
                Ok(Some((a.clone(), i)))
            }
            _ => Ok(None),
        }
    }

    // ----- Figure 9: pseudo-assembly lowering ---------------------------

    /// Renders pseudo-assembly for function `name` as compiled in TU
    /// `home_tu`: calls to same-TU (or LTO) functions are inlined; calls
    /// across TU boundaries stay `callq` instructions — exactly the
    /// distinction the paper's Figure 9 illustrates.
    pub fn disassemble(&self, name: &str, home_tu: TuId) -> Option<String> {
        let (decl, tu) = match self.functions.get(name).or_else(|| self.methods.get(name)) {
            Some(e) => (e.decl.clone(), e.tu),
            None => {
                // In-class method bodies: `Class::method`.
                let (class, method) = name.rsplit_once("::")?;
                let entry = self.classes.get(class)?;
                let decl = entry
                    .decl
                    .methods()
                    .find(|(_, f)| f.name.spelling() == method && f.body.is_some())
                    .map(|(_, f)| Rc::new(f.clone()))?;
                (decl, entry.tu)
            }
        };
        let mut out = String::new();
        let mut addr = 0usize;
        out.push_str(&format!("; {} (TU {})\n", name, tu));
        if let Some(body) = &decl.body {
            self.lower_block(body, home_tu, &mut out, &mut addr, 0);
        }
        out.push_str(&format!("{addr:4x}: ret\n"));
        Some(out)
    }

    fn emit(out: &mut String, addr: &mut usize, text: &str) {
        out.push_str(&format!("{:4x}: {text}\n", *addr));
        *addr += 4;
    }

    fn lower_block(
        &self,
        block: &Block,
        home_tu: TuId,
        out: &mut String,
        addr: &mut usize,
        depth: usize,
    ) {
        for s in &block.stmts {
            self.lower_stmt(s, home_tu, out, addr, depth);
        }
    }

    fn lower_stmt(
        &self,
        stmt: &Stmt,
        home_tu: TuId,
        out: &mut String,
        addr: &mut usize,
        depth: usize,
    ) {
        if depth > 6 {
            Self::emit(out, addr, "...");
            return;
        }
        match &stmt.kind {
            StmtKind::Expr(e) => self.lower_expr(e, home_tu, out, addr, depth),
            StmtKind::Decl(v) => {
                if let Some(init) = &v.init {
                    self.lower_expr(init, home_tu, out, addr, depth);
                }
                Self::emit(out, addr, &format!("mov %rax, {}(%rsp)", v.name));
            }
            StmtKind::Return(Some(e)) => {
                self.lower_expr(e, home_tu, out, addr, depth);
                Self::emit(out, addr, "mov %rax, %rdi");
            }
            StmtKind::For { cond, body, .. } => {
                Self::emit(out, addr, &format!(".L{depth}_loop:"));
                if let Some(c) = cond {
                    self.lower_expr(c, home_tu, out, addr, depth);
                    Self::emit(out, addr, &format!("jge .L{depth}_done"));
                }
                self.lower_stmt(body, home_tu, out, addr, depth + 1);
                Self::emit(out, addr, &format!("jmp .L{depth}_loop"));
                Self::emit(out, addr, &format!(".L{depth}_done:"));
            }
            StmtKind::Block(b) => self.lower_block(b, home_tu, out, addr, depth),
            StmtKind::If { then_branch, .. } => {
                self.lower_stmt(then_branch, home_tu, out, addr, depth + 1)
            }
            _ => {}
        }
    }

    fn lower_expr(
        &self,
        expr: &Expr,
        home_tu: TuId,
        out: &mut String,
        addr: &mut usize,
        depth: usize,
    ) {
        match &expr.kind {
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.lower_expr(a, home_tu, out, addr, depth);
                }
                let name = match callee.as_name() {
                    Some(n) => n.key(),
                    None => {
                        if let ExprKind::Member { member, .. } = &callee.kind {
                            member.ident.clone()
                        } else {
                            "indirect".into()
                        }
                    }
                };
                let base = name.rsplit("::").next().unwrap_or(&name).to_string();
                let entry = self.functions.get(&name).or_else(|| {
                    self.functions
                        .iter()
                        .find(|(k, _)| k.rsplit("::").next() == Some(base.as_str()))
                        .map(|(_, e)| e)
                });
                match entry {
                    Some(e) if e.tu == home_tu || self.config.lto => {
                        // Inlined: splice the body.
                        if let Some(body) = &e.decl.body {
                            self.lower_block(body, home_tu, out, addr, depth + 1);
                        }
                    }
                    Some(_) => {
                        Self::emit(out, addr, &format!("callq <{base}>"));
                    }
                    None => {
                        // Native/array access: direct memory traffic, the
                        // "inlined" shape of Figure 9b.
                        Self::emit(out, addr, &format!("mov ({base},%rsi,8), %rax"));
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.lower_expr(lhs, home_tu, out, addr, depth);
                self.lower_expr(rhs, home_tu, out, addr, depth);
                let instr = match op {
                    BinaryOp::Mul | BinaryOp::MulAssign => "imul %rbx, %rax",
                    BinaryOp::Add | BinaryOp::AddAssign => "add %rbx, %rax",
                    BinaryOp::Sub | BinaryOp::SubAssign => "sub %rbx, %rax",
                    BinaryOp::Lt | BinaryOp::Gt | BinaryOp::Le | BinaryOp::Ge => "cmp %rbx, %rax",
                    _ => "op %rbx, %rax",
                };
                Self::emit(out, addr, instr);
            }
            ExprKind::Member { base, member, .. } => {
                self.lower_expr(base, home_tu, out, addr, depth);
                Self::emit(out, addr, &format!("mov {}(%rax), %rax", member.ident));
            }
            ExprKind::Unary { expr: e, .. } | ExprKind::Paren(e) => {
                self.lower_expr(e, home_tu, out, addr, depth)
            }
            ExprKind::Index { base, index } => {
                self.lower_expr(base, home_tu, out, addr, depth);
                self.lower_expr(index, home_tu, out, addr, depth);
                Self::emit(out, addr, "mov (%rax,%rcx,8), %rax");
            }
            ExprKind::Lambda(l) => {
                self.lower_block(&l.body, home_tu, out, addr, depth + 1);
            }
            ExprKind::BraceInit { args, .. } => {
                for a in args {
                    self.lower_expr(a, home_tu, out, addr, depth);
                }
            }
            _ => {}
        }
    }
}

/// Pure arithmetic on values.
fn arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value, ExecError> {
    use BinaryOp::*;
    let as_pair = || -> Option<(f64, f64)> { Some((l.as_f64()?, r.as_f64()?)) };
    let float_result = matches!(l, Value::Float(_)) || matches!(r, Value::Float(_));
    let num = |v: f64| -> Value {
        if float_result {
            Value::Float(v)
        } else {
            Value::Int(v as i64)
        }
    };
    let (a, b) = as_pair().ok_or_else(|| ExecError {
        message: format!("arithmetic on non-numbers: {l:?} {op} {r:?}"),
    })?;
    Ok(match op {
        Add => num(a + b),
        Sub => num(a - b),
        Mul => num(a * b),
        Div => {
            if b == 0.0 {
                return err("division by zero");
            }
            num(a / b)
        }
        Rem => {
            if b == 0.0 {
                return err("remainder by zero");
            }
            Value::Int((a as i64) % (b as i64))
        }
        Shl => Value::Int((a as i64).wrapping_shl(b as u32)),
        Shr => Value::Int((a as i64).wrapping_shr(b as u32)),
        BitAnd => Value::Int((a as i64) & (b as i64)),
        BitOr => Value::Int((a as i64) | (b as i64)),
        BitXor => Value::Int((a as i64) ^ (b as i64)),
        Lt => Value::Bool(a < b),
        Gt => Value::Bool(a > b),
        Le => Value::Bool(a <= b),
        Ge => Value::Bool(a >= b),
        Eq => Value::Bool(a == b),
        Ne => Value::Bool(a != b),
        other => return err(format!("unsupported operator {other}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use yalla_cpp::parse::parse_str;

    fn machine_with(src: &str, tu: TuId) -> Machine {
        let mut m = Machine::new(ExecConfig::default());
        m.load_tu(&parse_str(src).unwrap(), tu);
        m
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let mut m = machine_with(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }",
            0,
        );
        let v = m.call("fib", vec![Value::Int(10)], 0).unwrap();
        assert_eq!(v.as_i64(), Some(55));
    }

    #[test]
    fn loops_accumulate() {
        let mut m = machine_with(
            "int sum(int n) { int acc = 0; for (int i = 0; i < n; i++) { acc += i; } return acc; }",
            0,
        );
        let v = m.call("sum", vec![Value::Int(10)], 0).unwrap();
        assert_eq!(v.as_i64(), Some(45));
    }

    #[test]
    fn while_break_continue() {
        let mut m = machine_with(
            "int f() { int i = 0; int s = 0; while (true) { i++; if (i > 10) break; if (i % 2 == 0) continue; s += i; } return s; }",
            0,
        );
        assert_eq!(m.call("f", vec![], 0).unwrap().as_i64(), Some(25));
    }

    #[test]
    fn same_tu_call_has_no_overhead() {
        let src = "int helper(int x) { return x + 1; }\nint top(int x) { return helper(x); }";
        let mut same = machine_with(src, 0);
        same.call("top", vec![Value::Int(1)], 0).unwrap();
        let same_cycles = same.cycles;

        // Split the two functions across TUs.
        let mut cross = Machine::new(ExecConfig::default());
        cross.load_tu(
            &parse_str("int helper(int x) { return x + 1; }").unwrap(),
            1,
        );
        cross.load_tu(
            &parse_str("int top(int x) { return helper(x); }").unwrap(),
            0,
        );
        cross.call("top", vec![Value::Int(1)], 0).unwrap();
        assert_eq!(
            cross.cycles,
            same_cycles + ExecConfig::default().call_overhead_cycles
        );
    }

    #[test]
    fn lto_removes_cross_tu_overhead() {
        let mut cross = Machine::new(ExecConfig {
            lto: true,
            ..ExecConfig::default()
        });
        cross.load_tu(
            &parse_str("int helper(int x) { return x + 1; }").unwrap(),
            1,
        );
        cross.load_tu(
            &parse_str("int top(int x) { return helper(x); }").unwrap(),
            0,
        );
        let mut same = machine_with(
            "int helper(int x) { return x + 1; }\nint top(int x) { return helper(x); }",
            0,
        );
        cross.call("top", vec![Value::Int(1)], 0).unwrap();
        same.call("top", vec![Value::Int(1)], 0).unwrap();
        assert_eq!(cross.cycles, same.cycles);
    }

    #[test]
    fn lambdas_capture_by_reference() {
        let mut m = machine_with(
            "int f() { int acc = 0; auto g = [&](int i) { acc += i; }; g(3); g(4); return acc; }",
            0,
        );
        assert_eq!(m.call("f", vec![], 0).unwrap().as_i64(), Some(7));
    }

    #[test]
    fn natives_are_callable() {
        let mut m = Machine::new(ExecConfig::default());
        m.load_tu(&parse_str("int go() { return twice(21); }").unwrap(), 0);
        m.register_native("twice", |_m, args| {
            Ok(Value::Int(args[0].as_i64().unwrap_or(0) * 2))
        });
        assert_eq!(m.call("go", vec![], 0).unwrap().as_i64(), Some(42));
    }

    #[test]
    fn functor_objects_execute_operator() {
        let src = r#"
struct add_k {
  int k;
  int acc;
  void operator()(int i) { acc += i + k; }
};
"#;
        let mut m = machine_with(src, 0);
        let functor = m
            .construct("add_k", vec![Value::Int(10), Value::Int(0)], 0)
            .unwrap();
        m.call_value(&functor, vec![Value::Int(1)], 0).unwrap();
        m.call_value(&functor, vec![Value::Int(2)], 0).unwrap();
        if let Value::Obj { fields, .. } = &functor {
            assert_eq!(fields.borrow()["acc"].as_i64(), Some(23));
        } else {
            panic!("expected object");
        }
    }

    #[test]
    fn array2_element_assignment_through_call_operator() {
        let src = "void bump(int j) { x(j, 1) += 5; }";
        let mut m = machine_with(src, 0);
        // `x` is a global array bound via a native wrapper around env —
        // simulate by calling with a prepared receiver through operator
        // assignment: use an Obj-free approach with a direct env variable.
        // Simplest: make a function taking x as param.
        let src2 = "void bump2(Arr2 x, int j) { x(j, 1) += 5; }";
        m.load_tu(&parse_str(src2).unwrap(), 0);
        let data = Rc::new(RefCell::new(vec![0.0; 10]));
        let arr = Value::Array2 {
            data: data.clone(),
            cols: 5,
        };
        m.call("bump2", vec![arr, Value::Int(1)], 0).unwrap();
        assert_eq!(data.borrow()[6], 5.0);
    }

    #[test]
    fn fuel_prevents_infinite_loops() {
        let mut m = Machine::new(ExecConfig {
            max_ops: 10_000,
            ..ExecConfig::default()
        });
        m.load_tu(
            &parse_str("int spin() { while (true) { } return 0; }").unwrap(),
            0,
        );
        assert!(m.call("spin", vec![], 0).is_err());
    }

    #[test]
    fn unknown_function_is_error() {
        let mut m = Machine::new(ExecConfig::default());
        assert!(m.call("missing", vec![], 0).is_err());
    }

    #[test]
    fn disassembly_inlines_same_tu_only() {
        let lib = "int helper(int x) { return x * 2; }";
        let user = "int top(int x) { return helper(x) + 1; }";
        // Same TU: helper body inlined, no call.
        let mut same = Machine::new(ExecConfig::default());
        same.load_tu(&parse_str(&format!("{lib}\n{user}")).unwrap(), 0);
        let asm_same = same.disassemble("top", 0).unwrap();
        assert!(!asm_same.contains("callq"), "{asm_same}");
        assert!(asm_same.contains("imul"), "{asm_same}");
        // Cross TU: call survives.
        let mut cross = Machine::new(ExecConfig::default());
        cross.load_tu(&parse_str(lib).unwrap(), 1);
        cross.load_tu(&parse_str(user).unwrap(), 0);
        let asm_cross = cross.disassemble("top", 0).unwrap();
        assert!(asm_cross.contains("callq <helper>"), "{asm_cross}");
    }

    #[test]
    fn scoped_enum_constants_evaluate_to_declared_values() {
        let src = r#"
namespace fz {
enum class Mode { Fast, Slow = 7, Exact };
int pick(int which) {
  if (which == 0) return fz::Mode::Fast;
  if (which == 1) return fz::Mode::Slow;
  return fz::Mode::Exact;
}
}
"#;
        let mut m = machine_with(src, 0);
        assert_eq!(
            m.call("fz::pick", vec![Value::Int(0)], 0).unwrap().as_i64(),
            Some(0)
        );
        assert_eq!(
            m.call("fz::pick", vec![Value::Int(1)], 0).unwrap().as_i64(),
            Some(7)
        );
        assert_eq!(
            m.call("fz::pick", vec![Value::Int(2)], 0).unwrap().as_i64(),
            Some(8)
        );
        assert_eq!(m.enum_constant("fz::Mode::Slow"), Some(7));
        assert_eq!(m.enum_constant("Mode::Exact"), Some(8));
        // Scoped enums do not leak unqualified names.
        assert_eq!(m.enum_constant("Fast"), None);
    }

    #[test]
    fn unscoped_enum_constants_are_reachable_unqualified() {
        let src = r#"
namespace lib {
enum Flags { None, ReadOnly = 4, Hidden };
int f() { return ReadOnly + lib::Hidden; }
}
"#;
        let mut m = machine_with(src, 0);
        assert_eq!(m.call("lib::f", vec![], 0).unwrap().as_i64(), Some(9));
        assert_eq!(m.enum_constant("lib::Flags::Hidden"), Some(5));
    }

    #[test]
    fn locals_shadow_enum_constants() {
        let src = r#"
enum Picks { Alpha = 3 };
int f() { int Alpha = 10; return Alpha; }
"#;
        let mut m = machine_with(src, 0);
        assert_eq!(m.call("f", vec![], 0).unwrap().as_i64(), Some(10));
    }

    #[test]
    fn method_fields_write_back() {
        let src = r#"
struct counter {
  int n;
  void tick() { n += 1; }
};
"#;
        let mut m = machine_with(src, 0);
        let obj = m.construct("counter", vec![Value::Int(0)], 0).unwrap();
        m.call_method(&obj, "tick", vec![], 0).unwrap();
        m.call_method(&obj, "tick", vec![], 0).unwrap();
        if let Value::Obj { fields, .. } = &obj {
            assert_eq!(fields.borrow()["n"].as_i64(), Some(2));
        } else {
            panic!()
        }
    }
}

#[cfg(test)]
mod scalar_ref_tests {
    use super::*;
    use yalla_cpp::parse::parse_str;

    /// The generated-functor pattern: a pointer field to a captured local,
    /// mutated through `(*p)` — the machine must write back to the
    /// original variable (matching real C++ semantics).
    #[test]
    fn scalar_ref_writes_back_to_the_original() {
        let src = r#"
struct bump_functor {
  int* total;
  void operator()(int v) const { (*total) += v; }
};
int drive() {
  int total = 5;
  bump_functor f{&total};
  f(10);
  f(20);
  return total;
}
"#;
        let mut m = Machine::new(ExecConfig::default());
        m.load_tu(&parse_str(src).unwrap(), 0);
        let v = m.call("drive", vec![], 0).unwrap();
        assert_eq!(v.as_i64(), Some(35));
    }

    #[test]
    fn deref_of_scalar_ref_reads_current_value() {
        let src = r#"
int read_it(int* p) { return (*p) + 1; }
int drive() {
  int x = 41;
  return read_it(&x);
}
"#;
        let mut m = Machine::new(ExecConfig::default());
        m.load_tu(&parse_str(src).unwrap(), 0);
        assert_eq!(m.call("drive", vec![], 0).unwrap().as_i64(), Some(42));
    }

    #[test]
    fn address_of_shared_handles_stays_a_handle() {
        // Arrays/objects are already shared; `&arr` must not wrap them.
        let src = "double probe(Arr a) { return (*(&a))(0, 0); }";
        let mut m = Machine::new(ExecConfig::default());
        m.load_tu(&parse_str(src).unwrap(), 0);
        let data = Rc::new(RefCell::new(vec![7.0]));
        let arr = Value::Array2 { data, cols: 1 };
        assert_eq!(m.call("probe", vec![arr], 0).unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn qualified_unknown_names_read_as_zero() {
        // Library constants in stubbed headers (e.g. cv::LINE_8).
        let src = "int f() { return cv::LINE_8 + 1; }";
        let mut m = Machine::new(ExecConfig::default());
        m.load_tu(&parse_str(src).unwrap(), 0);
        assert_eq!(m.call("f", vec![], 0).unwrap().as_i64(), Some(1));
    }

    #[test]
    fn default_constructed_class_local_is_an_object() {
        let src = r#"
struct Counter { int n; void tick() { n += 1; } int get() { return n; } };
int drive() { Counter c; c.tick(); c.tick(); return c.get(); }
"#;
        let mut m = Machine::new(ExecConfig::default());
        m.load_tu(&parse_str(src).unwrap(), 0);
        assert_eq!(m.call("drive", vec![], 0).unwrap().as_i64(), Some(2));
    }
}
