//! The compilation cost model.
//!
//! Converts measured [`TuWork`] into per-phase virtual times. Constants
//! are calibrated so that a translation unit with the paper's Table 3
//! statistics for the `02` subject (~111k lines, 581 headers, heavy
//! template use) lands near the paper's Table 2 default column (~650 ms
//! with Clang), with the frontend/backend split of Figure 7a. The *shape*
//! of every result — who wins and by what order of magnitude — derives
//! from the measured counts, not from the constants.

use crate::phases::PhaseBreakdown;
use crate::tu::TuWork;

/// Which real compiler's behaviour the profile approximates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerKind {
    /// Clang 15-like profile (the paper's main compiler).
    Clang,
    /// GCC 9.4-like profile (the paper's §5.3 cross-check: slightly slower
    /// frontend, similar backend, slower PCH loads).
    Gcc,
}

impl CompilerKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CompilerKind::Clang => "clang",
            CompilerKind::Gcc => "gcc",
        }
    }
}

/// Cost constants of a simulated compiler (all µs unless stated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerProfile {
    /// Which compiler this approximates.
    pub kind: CompilerKind,
    /// Fixed process/driver overhead per compile (ms).
    pub startup_ms: f64,
    /// Preprocessing cost per line entering the TU (µs).
    pub preprocess_per_line_us: f64,
    /// Per-header open/stat/guard-check overhead (µs).
    pub per_header_us: f64,
    /// Lex+parse+sema cost per line (µs).
    pub parse_per_line_us: f64,
    /// Extra sema cost per token (µs) — denser code costs more.
    pub sema_per_token_us: f64,
    /// PCH AST deserialization per line covered by the PCH (µs).
    pub pch_load_per_line_us: f64,
    /// Template instantiation cost per distinct instantiation (µs).
    pub instantiate_per_inst_us: f64,
    /// Optimization cost per backend statement (µs).
    pub optimize_per_stmt_us: f64,
    /// Code generation cost per backend statement (µs).
    pub codegen_per_stmt_us: f64,
    /// Link cost per object-code statement (µs).
    pub link_per_stmt_us: f64,
    /// Fixed link overhead (ms).
    pub link_base_ms: f64,
    /// Extra LTO optimization cost per statement at link time (µs).
    pub lto_per_stmt_us: f64,
}

impl CompilerProfile {
    /// The Clang-15-like profile used throughout the evaluation.
    pub fn clang() -> Self {
        CompilerProfile {
            kind: CompilerKind::Clang,
            startup_ms: 12.0,
            preprocess_per_line_us: 0.55,
            parse_per_line_us: 3.0,
            sema_per_token_us: 0.08,
            per_header_us: 18.0,
            pch_load_per_line_us: 0.35,
            instantiate_per_inst_us: 60.0,
            optimize_per_stmt_us: 30.0,
            codegen_per_stmt_us: 18.0,
            link_per_stmt_us: 6.0,
            link_base_ms: 14.0,
            lto_per_stmt_us: 160.0,
        }
    }

    /// The GCC-9.4-like profile (paper §5.3: overall slower compiles, so
    /// YALLA's relative win grows to ~31×; PCH behaves slightly worse).
    pub fn gcc() -> Self {
        CompilerProfile {
            kind: CompilerKind::Gcc,
            startup_ms: 14.0,
            preprocess_per_line_us: 0.70,
            parse_per_line_us: 3.9,
            sema_per_token_us: 0.10,
            per_header_us: 22.0,
            pch_load_per_line_us: 0.45,
            instantiate_per_inst_us: 75.0,
            optimize_per_stmt_us: 33.0,
            codegen_per_stmt_us: 20.0,
            link_per_stmt_us: 6.5,
            link_base_ms: 16.0,
            lto_per_stmt_us: 180.0,
        }
    }

    /// Simulates a plain (no-PCH) compile of `work`.
    pub fn compile(&self, work: &TuWork) -> PhaseBreakdown {
        PhaseBreakdown {
            preprocess_ms: self.startup_ms
                + us(work.lines as f64 * self.preprocess_per_line_us)
                + us(work.headers as f64 * self.per_header_us),
            parse_sema_ms: us(work.lines as f64 * self.parse_per_line_us)
                + us(work.tokens as f64 * self.sema_per_token_us),
            instantiate_ms: us(work.instantiations as f64 * self.instantiate_per_inst_us),
            optimize_ms: us(work.backend_stmts() as f64 * self.optimize_per_stmt_us),
            codegen_ms: us(work.backend_stmts() as f64 * self.codegen_per_stmt_us),
        }
    }

    /// Simulates a compile of `work` where `pch_work` (a subset of the TU)
    /// was precompiled: its lines/tokens are *loaded* instead of parsed.
    /// Template instantiation and the backend are unchanged — the paper's
    /// Figure 7a observation that PCH "only improves the frontend time".
    pub fn compile_with_pch(&self, work: &TuWork, pch_work: &TuWork) -> PhaseBreakdown {
        let fresh_lines = work.lines.saturating_sub(pch_work.lines);
        let fresh_tokens = work.tokens.saturating_sub(pch_work.tokens);
        let fresh_headers = work.headers.saturating_sub(pch_work.headers);
        PhaseBreakdown {
            preprocess_ms: self.startup_ms
                + us(fresh_lines as f64 * self.preprocess_per_line_us)
                + us(fresh_headers as f64 * self.per_header_us),
            parse_sema_ms: us(pch_work.lines as f64 * self.pch_load_per_line_us)
                + us(fresh_lines as f64 * self.parse_per_line_us)
                + us(fresh_tokens as f64 * self.sema_per_token_us),
            instantiate_ms: us(work.instantiations as f64 * self.instantiate_per_inst_us),
            optimize_ms: us(work.backend_stmts() as f64 * self.optimize_per_stmt_us),
            codegen_ms: us(work.backend_stmts() as f64 * self.codegen_per_stmt_us),
        }
    }
}

fn us(v: f64) -> f64 {
    v / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A TU with the paper's `02` subject statistics (Table 3).
    fn paper_02_like() -> TuWork {
        TuWork {
            lines: 111_301,
            headers: 581,
            tokens: 700_000,
            macro_expansions: 40_000,
            decls: 25_000,
            concrete_body_stmts: 1_200,
            instantiated_template_stmts: 2_000,
            uninstantiated_template_stmts: 60_000,
            instantiations: 900,
        }
    }

    /// The same subject after YALLA (77 lines, 2 headers).
    fn paper_02_yalla() -> TuWork {
        TuWork {
            lines: 77,
            headers: 2,
            tokens: 600,
            macro_expansions: 0,
            decls: 40,
            concrete_body_stmts: 12,
            instantiated_template_stmts: 0,
            uninstantiated_template_stmts: 10,
            instantiations: 6,
        }
    }

    #[test]
    fn default_compile_lands_near_table_2() {
        let p = CompilerProfile::clang();
        let t = p.compile(&paper_02_like());
        // Paper: 650 ms default for 02. Accept a generous band — the shape
        // matters, not the third digit.
        assert!(
            (400.0..1000.0).contains(&t.total_ms()),
            "default total = {:.1} ms",
            t.total_ms()
        );
        // Fig 7a: frontend dominates the default build.
        assert!(t.frontend_ms() > t.backend_ms());
    }

    #[test]
    fn yalla_compile_is_order_of_magnitude_faster() {
        let p = CompilerProfile::clang();
        let default = p.compile(&paper_02_like()).total_ms();
        let yalla = p.compile(&paper_02_yalla()).total_ms();
        let speedup = default / yalla;
        assert!(
            speedup > 20.0,
            "expected >20x speedup, got {speedup:.1}x (default {default:.1} ms, yalla {yalla:.1} ms)"
        );
    }

    #[test]
    fn pch_helps_frontend_only() {
        let p = CompilerProfile::clang();
        let full = paper_02_like();
        // PCH covers the header bulk (everything except the user's ~300 lines).
        let mut pch = full;
        pch.lines -= 300;
        pch.tokens -= 3_000;
        let default = p.compile(&full);
        let with_pch = p.compile_with_pch(&full, &pch);
        assert!(with_pch.total_ms() < default.total_ms());
        // Backend identical (Fig. 7a).
        assert!((with_pch.backend_ms() - default.backend_ms()).abs() < 1e-9);
        // Paper: PCH ≈ 2.7–3.6× for PyKokkos subjects.
        let speedup = default.total_ms() / with_pch.total_ms();
        assert!((1.5..8.0).contains(&speedup), "PCH speedup = {speedup:.2}x");
        // And YALLA still beats PCH.
        let yalla = p.compile(&paper_02_yalla());
        assert!(yalla.total_ms() < with_pch.total_ms());
    }

    #[test]
    fn gcc_profile_is_slower_overall() {
        let clang = CompilerProfile::clang().compile(&paper_02_like());
        let gcc = CompilerProfile::gcc().compile(&paper_02_like());
        assert!(gcc.total_ms() > clang.total_ms());
    }

    #[test]
    fn empty_tu_costs_only_startup() {
        let p = CompilerProfile::clang();
        let t = p.compile(&TuWork::default());
        assert!((t.total_ms() - p.startup_ms).abs() < 1e-9);
    }

    #[test]
    fn monotonic_in_lines() {
        let p = CompilerProfile::clang();
        let mut small = paper_02_yalla();
        let mut prev = p.compile(&small).total_ms();
        for _ in 0..5 {
            small.lines *= 4;
            small.tokens *= 4;
            let next = p.compile(&small).total_ms();
            assert!(next > prev);
            prev = next;
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::tu::TuWork;

    #[test]
    fn pch_covering_more_than_the_tu_saturates() {
        // A PCH built from a superset prefix header: fresh counts clamp at
        // zero instead of underflowing.
        let p = CompilerProfile::clang();
        let tu = TuWork {
            lines: 1_000,
            tokens: 6_000,
            ..TuWork::default()
        };
        let pch = TuWork {
            lines: 5_000,
            tokens: 30_000,
            headers: 10,
            ..TuWork::default()
        };
        let t = p.compile_with_pch(&tu, &pch);
        assert!(t.total_ms().is_finite());
        assert!(t.total_ms() > 0.0);
    }

    #[test]
    fn compiler_kind_names() {
        assert_eq!(CompilerKind::Clang.name(), "clang");
        assert_eq!(CompilerKind::Gcc.name(), "gcc");
    }

    #[test]
    fn instantiations_cost_frontend_time() {
        let p = CompilerProfile::clang();
        let base = TuWork {
            lines: 100,
            tokens: 600,
            ..TuWork::default()
        };
        let heavy = TuWork {
            instantiations: 500,
            ..base
        };
        let d = p.compile(&heavy).frontend_ms() - p.compile(&base).frontend_ms();
        assert!(d > 10.0, "{d}");
    }
}
