//! Deterministic RNG and per-run configuration.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A small xorshift* RNG, seeded deterministically per test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a raw seed (zero is mapped to a fixed value).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Seeds from a test identifier and case index, so every case of every
    /// property draws an independent, reproducible stream.
    pub fn for_case(test_id: &str, case: u32) -> Self {
        // FNV-1a over the id, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D);
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..hi` (`lo < hi`).
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 4);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn in_range_stays_in_range() {
        let mut r = TestRng::new(42);
        for _ in 0..1000 {
            let v = r.in_range(5, 9);
            assert!((5..9).contains(&v));
        }
    }
}
