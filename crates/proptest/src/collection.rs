//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn from `len` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.in_range(self.len.start, self.len.end);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn length_in_range() {
        let s = vec(Just(1u8), 3..7);
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1));
        }
    }
}
