//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// The generic combinators (`prop_map`, `boxed`) carry a `Self: Sized`
/// bound so the trait stays object safe — [`BoxedStrategy`] is how
/// heterogeneous strategies (e.g. the arms of
/// [`prop_oneof!`](crate::prop_oneof)) unify behind one value type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (see
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// String strategies from a regex-like pattern (see [`crate::pattern`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::Pattern::compile(self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(isize, i64, i32, i16, i8);

impl Strategy for std::ops::Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty range");
        loop {
            let v = lo + (rng.next_u64() % u64::from(hi - lo)) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_clones() {
        let mut rng = TestRng::new(1);
        assert_eq!(Just(7i32).generate(&mut rng), 7);
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::new(1);
        let s = (1usize..5).prop_map(|v| v * 10);
        let v = s.generate(&mut rng);
        assert!(v % 10 == 0 && (10..50).contains(&v));
    }

    #[test]
    fn union_picks_every_arm_eventually() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = TestRng::new(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(3);
        let (a, b) = (1usize..2, 5usize..6).generate(&mut rng);
        assert_eq!((a, b), (1, 5));
    }
}
