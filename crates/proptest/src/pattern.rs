//! A generator for the regex-like string patterns proptest accepts as
//! `&str` strategies.
//!
//! Supported syntax — the subset this workspace's properties use:
//!
//! * literal characters,
//! * escapes: `\\`, `\n`, `\t`, `\r`, `\.`, `\-`, and `\PC` (any
//!   non-control character, proptest's spelling of "printable"),
//! * character classes `[...]` with ranges (`a-z`), literals, and the
//!   escapes above; `-` at the start/end is literal,
//! * postfix quantifiers `*` (0..=16), `+` (1..=16), `?`, `{m}`, `{m,n}`.
//!
//! Unsupported constructs panic with a clear message: patterns live in
//! test code, so failing fast beats silently wrong generation.

use crate::test_runner::TestRng;

/// Default repetition cap for `*` and `+`.
const UNBOUNDED_MAX: usize = 16;

/// One generatable atom.
#[derive(Debug, Clone)]
enum Atom {
    /// A single literal character.
    Lit(char),
    /// Inclusive character ranges (a class).
    Class(Vec<(char, char)>),
    /// Any non-control character (`\PC`).
    NonControl,
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Lit(c) => *c,
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = (rng.next_u64() % u64::from(total)) as u32;
                for (lo, hi) in ranges {
                    let width = *hi as u32 - *lo as u32 + 1;
                    if pick < width {
                        return char::from_u32(*lo as u32 + pick).unwrap_or(*lo);
                    }
                    pick -= width;
                }
                unreachable!("class pick out of bounds")
            }
            Atom::NonControl => {
                // Mostly printable ASCII, sometimes Latin-1/Greek/CJK so
                // multi-byte UTF-8 gets exercised; never a control char.
                match rng.below(8) {
                    0 => {
                        let extra = [
                            ('\u{00A1}', '\u{024F}'),
                            ('\u{0391}', '\u{03C9}'),
                            ('\u{4E00}', '\u{4E4F}'),
                        ];
                        let (lo, hi) = extra[rng.below(extra.len())];
                        char::from_u32(
                            lo as u32
                                + (rng.next_u64() % u64::from(hi as u32 - lo as u32 + 1)) as u32,
                        )
                        .unwrap_or('x')
                    }
                    _ => char::from_u32(0x20 + (rng.next_u64() % (0x7F - 0x20)) as u32).unwrap(),
                }
            }
        }
    }
}

/// A parsed pattern: a sequence of quantified atoms.
#[derive(Debug, Clone)]
pub struct Pattern {
    terms: Vec<(Atom, usize, usize)>,
}

impl Pattern {
    /// Parses `pat`, panicking on syntax outside the supported subset.
    pub fn compile(pat: &str) -> Self {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut terms: Vec<(Atom, usize, usize)> = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    i += 1;
                    let (a, used) = parse_escape(&chars[i..], pat);
                    i += used;
                    a
                }
                '[' => {
                    let (a, used) = parse_class(&chars[i..], pat);
                    i += used;
                    a
                }
                c @ ('*' | '+' | '?') => {
                    panic!("pattern {pat:?}: dangling quantifier `{c}`")
                }
                c @ ('(' | ')' | '|' | '^' | '$') => {
                    panic!("pattern {pat:?}: `{c}` is not supported by the proptest shim")
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '*' => {
                        i += 1;
                        (0, UNBOUNDED_MAX)
                    }
                    '+' => {
                        i += 1;
                        (1, UNBOUNDED_MAX)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .unwrap_or_else(|| panic!("pattern {pat:?}: unclosed {{"));
                        let body: String = chars[i + 1..i + close].iter().collect();
                        i += close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (
                                m.trim()
                                    .parse()
                                    .unwrap_or_else(|_| panic!("pattern {pat:?}: bad bound {m:?}")),
                                n.trim()
                                    .parse()
                                    .unwrap_or_else(|_| panic!("pattern {pat:?}: bad bound {n:?}")),
                            ),
                            None => {
                                let m = body.trim().parse().unwrap_or_else(|_| {
                                    panic!("pattern {pat:?}: bad bound {body:?}")
                                });
                                (m, m)
                            }
                        }
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "pattern {pat:?}: empty repetition {min}..{max}");
            terms.push((atom, min, max));
        }
        Pattern { terms }
    }

    /// Generates one string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in &self.terms {
            let n = if min == max {
                *min
            } else {
                rng.in_range(*min, max + 1)
            };
            for _ in 0..n {
                out.push(atom.generate(rng));
            }
        }
        out
    }
}

/// Parses one escape starting just after the backslash. Returns the atom
/// and how many characters were consumed.
fn parse_escape(rest: &[char], pat: &str) -> (Atom, usize) {
    match rest.first() {
        Some('P') => match rest.get(1) {
            Some('C') => (Atom::NonControl, 2),
            other => panic!("pattern {pat:?}: unsupported category \\P{other:?}"),
        },
        Some('n') => (Atom::Lit('\n'), 1),
        Some('t') => (Atom::Lit('\t'), 1),
        Some('r') => (Atom::Lit('\r'), 1),
        Some(&c) => (Atom::Lit(c), 1),
        None => panic!("pattern {pat:?}: trailing backslash"),
    }
}

/// Parses a `[...]` class starting at the `[`. Returns the atom and how
/// many characters were consumed (including both brackets).
fn parse_class(rest: &[char], pat: &str) -> (Atom, usize) {
    debug_assert_eq!(rest[0], '[');
    if rest.get(1) == Some(&'^') {
        panic!("pattern {pat:?}: negated classes are not supported by the proptest shim");
    }
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut i = 1;
    loop {
        let c = *rest
            .get(i)
            .unwrap_or_else(|| panic!("pattern {pat:?}: unclosed ["));
        if c == ']' {
            i += 1;
            break;
        }
        // One class member (possibly escaped)…
        let lo = if c == '\\' {
            i += 1;
            match parse_escape(&rest[i..], pat) {
                (Atom::Lit(l), used) => {
                    i += used;
                    l
                }
                (Atom::NonControl, used) => {
                    // `\PC` inside a class: fold in printable ASCII.
                    i += used;
                    ranges.push((' ', '~'));
                    continue;
                }
                _ => unreachable!(),
            }
        } else {
            i += 1;
            c
        };
        // …optionally the high end of a range.
        if rest.get(i) == Some(&'-') && rest.get(i + 1).is_some_and(|&c| c != ']') {
            i += 1;
            let hc = rest[i];
            let hi = if hc == '\\' {
                i += 1;
                match parse_escape(&rest[i..], pat) {
                    (Atom::Lit(h), used) => {
                        i += used;
                        h
                    }
                    _ => panic!("pattern {pat:?}: bad range end"),
                }
            } else {
                i += 1;
                hc
            };
            assert!(lo <= hi, "pattern {pat:?}: inverted range {lo}-{hi}");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(!ranges.is_empty(), "pattern {pat:?}: empty class");
    (Atom::Class(ranges), i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pat: &str, seed: u64) -> String {
        Pattern::compile(pat).generate(&mut TestRng::new(seed))
    }

    #[test]
    fn literal_passthrough() {
        assert_eq!(sample("abc", 1), "abc");
    }

    #[test]
    fn bounded_repetition() {
        for seed in 1..50 {
            let s = sample("[a-z]{2,4}", seed);
            assert!((2..=4).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn star_can_be_empty_and_capped() {
        let mut saw_empty = false;
        for seed in 1..200 {
            let s = sample("[0-9]*", seed);
            assert!(s.len() <= UNBOUNDED_MAX);
            saw_empty |= s.is_empty();
        }
        assert!(saw_empty, "`*` never produced the empty string");
    }

    #[test]
    fn class_with_escapes_and_punct() {
        for seed in 1..100 {
            let s = sample("[a-zA-Z0-9_{}();:<>,&*+=\\-\\. \n]*", seed);
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || "_{}();:<>,&*+=-. \n".contains(c),
                    "unexpected {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn non_control_category() {
        for seed in 1..100 {
            let s = sample("\\PC*", seed);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
    }

    #[test]
    fn exact_count() {
        assert_eq!(sample("x{5}", 3), "xxxxx");
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn groups_are_rejected() {
        Pattern::compile("(ab)+");
    }
}
