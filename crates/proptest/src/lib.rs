//! A std-only, dependency-free shim of the [proptest] crate.
//!
//! The offline build environment cannot fetch crates.io, so this crate
//! provides the *subset* of the proptest API the workspace actually uses,
//! under the same package name:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, tuple composition,
//!   integer-range strategies, and [`strategy::Just`],
//! * string strategies from a regex-like pattern (`"[a-z][a-z0-9_]{0,8}"`,
//!   `"\\PC*"`, character classes, `*`/`+`/`?`/`{m,n}` quantifiers),
//! * [`collection::vec`] (also reachable as `prop::collection::vec`),
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`) plus
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`].
//!
//! Generation is deterministic: each test case seeds a small xorshift RNG
//! from the test's module path, name and case index, so failures
//! reproduce across runs. There is no shrinking — a failing case panics
//! with the generated inputs visible in the assertion message.
//!
//! [proptest]: https://docs.rs/proptest

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod pattern;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Namespace alias matching `proptest::prop::...` paths used with a glob
/// import of the prelude (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` for `cases` generated inputs
/// (default 64, configurable with a leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            #[allow(clippy::redundant_closure_call)]
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_seed_same_value() {
        let s = "[a-z]{4}";
        let mut a = crate::test_runner::TestRng::for_case("t", 7);
        let mut b = crate::test_runner::TestRng::for_case("t", 7);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ident_pattern_shape(s in "[a-z][a-z0-9_]{0,8}") {
            assert!(!s.is_empty() && s.len() <= 9, "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn non_control_has_no_control(s in "\\PC*") {
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }

        #[test]
        fn vec_respects_bounds(v in prop::collection::vec(1usize..10, 2..5)) {
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (1..10).contains(x)));
        }

        #[test]
        fn oneof_and_map_compose(
            s in prop_oneof![
                Just("fixed".to_string()),
                "[0-9]{2}".prop_map(|d| format!("num_{d}")),
            ]
        ) {
            assert!(s == "fixed" || s.starts_with("num_"), "{s}");
        }
    }
}
