//! Property tests for the mega-corpus generator.
//!
//! Three guarantees the mega workload engine leans on: the include DAG
//! is always acyclic, every emitted project runs clean under a cold
//! engine, and generation is a pure function of `(config, seed)` — the
//! last one checked across *fresh processes*, not just within one, by
//! re-execing this test binary.

use std::collections::{HashMap, HashSet};

use yalla_core::Session;
use yalla_fuzz::{MegaConfig, MegaProject};

/// Small configs the per-seed properties sweep (kept well under the
/// named presets so the sweep stays fast on one core).
fn sweep_configs() -> Vec<MegaConfig> {
    vec![
        MegaConfig {
            files: 80,
            depth: 3,
            fanout: 2,
            tus: 4,
            seed: 0,
        },
        MegaConfig {
            files: 150,
            depth: 5,
            fanout: 3,
            tus: 8,
            seed: 0,
        },
        MegaConfig {
            files: 300,
            depth: 4,
            fanout: 4,
            tus: 12,
            seed: 0,
        },
    ]
}

/// Parses the `#include "..."` edges out of a generated tree.
fn include_edges(p: &MegaProject) -> HashMap<&str, Vec<&str>> {
    let mut edges: HashMap<&str, Vec<&str>> = HashMap::new();
    for (path, text) in &p.files {
        let deps = text
            .lines()
            .filter_map(|l| l.strip_prefix("#include \""))
            .map(|l| l.trim_end_matches('"'))
            .collect();
        edges.insert(path, deps);
    }
    edges
}

#[test]
fn include_dag_is_always_acyclic() {
    for mut cfg in sweep_configs() {
        for seed in 0..8u64 {
            cfg.seed = seed;
            let p = MegaProject::generate(&cfg);
            let edges = include_edges(&p);
            // Iterative three-color DFS over every file.
            let mut state: HashMap<&str, u8> = HashMap::new();
            for &start in edges.keys() {
                if state.contains_key(start) {
                    continue;
                }
                let mut stack = vec![(start, 0usize)];
                state.insert(start, 1);
                while let Some((node, next)) = stack.pop() {
                    let deps = &edges[node];
                    if next < deps.len() {
                        stack.push((node, next + 1));
                        let dep = deps[next];
                        match state.get(dep) {
                            Some(1) => panic!("include cycle through {dep} (seed {seed})"),
                            Some(_) => {}
                            None => {
                                state.insert(dep, 1);
                                stack.push((dep, 0));
                            }
                        }
                    } else {
                        state.insert(node, 2);
                    }
                }
            }
        }
    }
}

#[test]
fn every_emitted_project_runs_clean_under_a_cold_engine() {
    for mut cfg in sweep_configs() {
        for seed in 0..3u64 {
            cfg.seed = seed;
            let p = MegaProject::generate(&cfg);
            let (vfs, options) = p.render();
            let mut session = Session::with_store(options, vfs, None);
            let run = session
                .rerun()
                .unwrap_or_else(|e| panic!("cold engine failed (cfg {cfg:?}): {e}"));
            assert!(
                run.result.report.verification.passed(),
                "verification failed (cfg {cfg:?}): {:?}",
                run.result.report.verification.violations
            );
            assert_eq!(
                run.result.rewritten_sources.len(),
                p.tus.len(),
                "every TU must be rewritten (cfg {cfg:?})"
            );
        }
    }
}

#[test]
fn fresh_processes_emit_byte_identical_trees() {
    // Child leg: regenerate the requested preset and write its tree
    // hash where the parent asked.
    if let Ok(out) = std::env::var("YALLA_MEGA_HASH_OUT") {
        let name = std::env::var("YALLA_MEGA_PRESET").unwrap();
        let cfg = MegaConfig::preset(&name).unwrap();
        let p = MegaProject::generate(&cfg);
        std::fs::write(out, format!("{:016x} {}", p.tree_hash(), p.file_count())).unwrap();
        return;
    }
    let exe = std::env::current_exe().unwrap();
    let dir = std::env::temp_dir().join(format!("mega-hash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for preset in MegaConfig::preset_names() {
        let mut hashes = HashSet::new();
        for child in 0..2 {
            let out = dir.join(format!("{preset}.{child}"));
            let status = std::process::Command::new(&exe)
                .args(["fresh_processes_emit_byte_identical_trees", "--exact"])
                .env("YALLA_MEGA_HASH_OUT", &out)
                .env("YALLA_MEGA_PRESET", preset)
                .status()
                .unwrap();
            assert!(status.success(), "child process failed for {preset}");
            hashes.insert(std::fs::read_to_string(&out).unwrap());
        }
        assert_eq!(
            hashes.len(),
            1,
            "{preset}: fresh processes disagreed: {hashes:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
