#[test]
fn oracle_sanity_probe() {
    use yalla_fuzz::grammar::ProjectModel;
    use yalla_fuzz::oracle::{run_case, substitution_for, CaseOutcome, Sabotage};
    let mut nonempty_probes = 0;
    let mut rewritten_differs = 0;
    let mut total = 0;
    for seed in 1..=40u64 {
        let model = ProjectModel::generate(seed);
        total += 1;
        let sub = substitution_for(&model).expect("engine ok");
        let (vfs, _) = model.render();
        let orig_main = {
            let id = vfs.lookup("main.cpp").unwrap();
            vfs.text(id).to_string()
        };
        if sub
            .rewritten_sources
            .get("main.cpp")
            .map(|t| t != &orig_main)
            .unwrap_or(false)
        {
            rewritten_differs += 1;
        }
        match run_case(&model, Sabotage::None, (3, 5)) {
            CaseOutcome::Agree(t) => {
                if !t.probes.is_empty() {
                    nonempty_probes += 1;
                }
            }
            CaseOutcome::Diverged(d) => panic!("seed {seed} diverged: {d}"),
        }
    }
    eprintln!(
        "total={total} nonempty_probes={nonempty_probes} rewritten_differs={rewritten_differs}"
    );
    assert!(
        nonempty_probes >= total * 9 / 10,
        "probes mostly empty: {nonempty_probes}/{total}"
    );
    assert!(
        rewritten_differs >= total / 2,
        "rewrites rarely change main: {rewritten_differs}/{total}"
    );
}
