//! Grammar-based random project generation.
//!
//! A [`ProjectModel`] is a structured description of a whole project —
//! an expensive library header plus user sources plus a driver — drawn
//! from [`DetRng`] so the same seed always yields the same project. The
//! model covers the paper's Table 1 symbol kinds: classes (reached both
//! directly and through aliases), methods, fields, call operators, free
//! functions, scoped and unscoped enums, and templated calls taking
//! lambdas (which the engine turns into functors). Rendering the model
//! yields parseable C++ text; the model — not the text — is the unit the
//! shrinker deletes from.

use yalla_core::Options;
use yalla_corpus::gen::DetRng;
use yalla_cpp::vfs::Vfs;

/// Library header path inside generated projects.
pub const LIB_HEADER: &str = "fz_lib.hpp";
/// User source path.
pub const MAIN_SOURCE: &str = "main.cpp";
/// Support header (declares the probe; never substituted).
pub const SUPPORT_HEADER: &str = "support.hpp";
/// Driver path (loaded as its own machine TU; never rewritten).
pub const DRIVER_SOURCE: &str = "driver.cpp";
/// Namespace wrapping all generated library code.
pub const LIB_NAMESPACE: &str = "fz";
/// Entry point the oracle calls on the machine (defined by the driver).
pub const ENTRY: &str = "fuzz_entry";

/// One method of a generated library class.
#[derive(Debug, Clone)]
pub struct MethodModel {
    /// Method name (`m0_0`, ...).
    pub name: String,
    /// True when the method mutates a field and returns void.
    pub mutates: bool,
    /// Small constant folded into the body.
    pub k: i64,
}

/// A generated library class.
#[derive(Debug, Clone)]
pub struct ClassModel {
    /// Class name (`C0`, ...).
    pub name: String,
    /// Number of `int` fields (`f0..`), at least one.
    pub fields: usize,
    /// Methods.
    pub methods: Vec<MethodModel>,
    /// Whether the class has an `operator()(int)` reading a field.
    pub call_operator: bool,
}

/// A generated enum.
#[derive(Debug, Clone)]
pub struct EnumModel {
    /// Enum name (`E0`, ...).
    pub name: String,
    /// `enum class` when true.
    pub scoped: bool,
    /// Enumerators: name plus optional explicit value.
    pub variants: Vec<(String, Option<i64>)>,
}

/// A generated free function (`int ff0(int a, int b)`).
#[derive(Debug, Clone)]
pub struct FreeFnModel {
    /// Function name.
    pub name: String,
    /// Constant folded into the body.
    pub k: i64,
}

/// One statement inside a generated user function, modeled structurally
/// so the shrinker can delete statements one at a time.
#[derive(Debug, Clone)]
pub enum UserStmt {
    /// `probe(<tag>);` — the observable event.
    Probe(i64),
    /// `int x<n> = <expr>;`
    Local {
        /// Local index (`x{n}`).
        n: usize,
        /// Rendered initializer expression.
        expr: String,
    },
    /// `x<n> = x<n> <op> <expr>;`
    Update {
        /// Local index.
        n: usize,
        /// `+`, `-`, `*`, `^`.
        op: char,
        /// Rendered right-hand side.
        expr: String,
    },
    /// `a.<method>(<expr>);` — void method call on the class parameter.
    CallMutator {
        /// Method name.
        method: String,
        /// Rendered argument.
        expr: String,
    },
    /// `if (x<n> > <c>) { probe(<t1>); } else { x<n> = x<n> + <c2>; }`
    Branch {
        /// Local tested.
        n: usize,
        /// Comparison constant.
        c: i64,
        /// Probe tag in the then-branch.
        t1: i64,
        /// Added constant in the else-branch.
        c2: i64,
    },
    /// `for (int i = 0; i < <n>; i++) { x<t> = x<t> + i * <k>; }`
    Loop {
        /// Trip count.
        trips: i64,
        /// Local accumulated into.
        target: usize,
        /// Step multiplier.
        k: i64,
    },
    /// A lambda handed to the library's templated `apply`:
    /// `fz::apply([&](int i) { x<t> = x<t> + i * <k>; }, <n>);`
    Lambda {
        /// Local mutated by the lambda (captured by reference).
        target: usize,
        /// Step multiplier inside the lambda body.
        k: i64,
        /// Trip count passed to `apply`.
        trips: i64,
    },
    /// `probe(x<n>);`
    ProbeLocal(usize),
}

/// A generated user function: `int u<i>(fz::<Cls>& a, int k) { ... }`.
#[derive(Debug, Clone)]
pub struct UserFnModel {
    /// Function index (name `u{index}`).
    pub index: usize,
    /// The class parameter's spelled type (class or alias name, without
    /// namespace).
    pub param_type: String,
    /// Body statements.
    pub stmts: Vec<UserStmt>,
}

/// One driver statement: construct a class instance and call a user
/// function with it, folding the result into the accumulator.
#[derive(Debug, Clone)]
pub struct DriverCall {
    /// Class constructed for the call.
    pub class: String,
    /// Constructor field values.
    pub ctor_args: Vec<i64>,
    /// User function called (`u{index}`).
    pub user_fn: usize,
    /// Extra integer passed as `k`.
    pub k: i64,
}

/// A whole generated project.
#[derive(Debug, Clone)]
pub struct ProjectModel {
    /// Seed the model was drawn from.
    pub seed: u64,
    /// Library classes.
    pub classes: Vec<ClassModel>,
    /// Library enums.
    pub enums: Vec<EnumModel>,
    /// Library free functions.
    pub free_fns: Vec<FreeFnModel>,
    /// Aliases: `using A<i> = C<j>;` pairs (alias name, class name).
    pub aliases: Vec<(String, String)>,
    /// Whether the library defines the templated `apply` taking a functor.
    pub has_apply: bool,
    /// User functions.
    pub user_fns: Vec<UserFnModel>,
    /// Driver calls.
    pub driver_calls: Vec<DriverCall>,
}

impl ProjectModel {
    /// Draws a random project from `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut rng = DetRng::new(seed);
        let n_classes = 1 + rng.next(2); // 1..=2
        let n_enums = rng.next(3); // 0..=2
        let n_free = 1 + rng.next(3); // 1..=3
        let has_apply = rng.next(100) < 70;

        let classes: Vec<ClassModel> = (0..n_classes)
            .map(|c| {
                let fields = 1 + rng.next(3);
                let n_methods = 1 + rng.next(3);
                let methods = (0..n_methods)
                    .map(|m| MethodModel {
                        name: format!("m{c}_{m}"),
                        mutates: rng.next(100) < 30,
                        k: 1 + rng.next(9) as i64,
                    })
                    .collect();
                ClassModel {
                    name: format!("C{c}"),
                    fields,
                    methods,
                    call_operator: rng.next(100) < 40,
                }
            })
            .collect();

        let enums: Vec<EnumModel> = (0..n_enums)
            .map(|e| {
                let scoped = rng.next(100) < 50;
                let n_variants = 2 + rng.next(3);
                let variants = (0..n_variants)
                    .map(|v| {
                        let explicit = rng.next(100) < 35;
                        let value = explicit.then(|| rng.next(40) as i64);
                        (format!("V{e}_{v}"), value)
                    })
                    .collect();
                EnumModel {
                    name: format!("E{e}"),
                    scoped,
                    variants,
                }
            })
            .collect();

        let free_fns: Vec<FreeFnModel> = (0..n_free)
            .map(|f| FreeFnModel {
                name: format!("ff{f}"),
                k: 1 + rng.next(9) as i64,
            })
            .collect();

        let mut aliases = Vec::new();
        for (i, c) in classes.iter().enumerate() {
            if rng.next(100) < 50 {
                aliases.push((format!("A{i}"), c.name.clone()));
            }
        }

        let n_user = 1 + rng.next(2);
        let mut model = ProjectModel {
            seed,
            classes,
            enums,
            free_fns,
            aliases,
            has_apply,
            user_fns: Vec::new(),
            driver_calls: Vec::new(),
        };
        for u in 0..n_user {
            let fun = model.gen_user_fn(u, &mut rng);
            model.user_fns.push(fun);
        }

        let n_calls = 1 + rng.next(3);
        for _ in 0..n_calls {
            let user_fn = rng.next(model.user_fns.len().max(1));
            let class = model.class_behind(&model.user_fns[user_fn].param_type);
            let fields = model
                .classes
                .iter()
                .find(|c| c.name == class)
                .map(|c| c.fields)
                .unwrap_or(1);
            let ctor_args = (0..fields).map(|_| 1 + rng.next(20) as i64).collect();
            model.driver_calls.push(DriverCall {
                class,
                ctor_args,
                user_fn,
                k: 1 + rng.next(30) as i64,
            });
        }
        model
    }

    /// The class a spelled parameter type (class or alias) names.
    pub fn class_behind(&self, spelled: &str) -> String {
        self.aliases
            .iter()
            .find(|(a, _)| a == spelled)
            .map(|(_, c)| c.clone())
            .unwrap_or_else(|| spelled.to_string())
    }

    fn gen_user_fn(&self, index: usize, rng: &mut DetRng) -> UserFnModel {
        let class = &self.classes[rng.next(self.classes.len())];
        // Reach the class through an alias half the time one exists.
        let param_type = self
            .aliases
            .iter()
            .find(|(_, c)| *c == class.name)
            .filter(|_| rng.next(100) < 50)
            .map(|(a, _)| a.clone())
            .unwrap_or_else(|| class.name.clone());

        let mut stmts = vec![
            // Every user function opens with a top-level probe so every
            // call is observable (and the sabotage hook always bites).
            UserStmt::Probe(7_000 + index as i64),
            UserStmt::Local {
                n: 0,
                expr: "k".to_string(),
            },
        ];
        let mut locals = 1usize;
        let n_extra = 2 + rng.next(5);
        for _ in 0..n_extra {
            stmts.push(self.gen_stmt(class, rng, &mut locals));
        }
        stmts.push(UserStmt::ProbeLocal(0));
        UserFnModel {
            index,
            param_type,
            stmts,
        }
    }

    fn gen_stmt(&self, class: &ClassModel, rng: &mut DetRng, locals: &mut usize) -> UserStmt {
        let pick_local = |rng: &mut DetRng, locals: usize| rng.next(locals.max(1));
        let small_expr = |this: &Self, rng: &mut DetRng, locals: usize, class: &ClassModel| {
            this.gen_expr(rng, locals, class)
        };
        match rng.next(8) {
            0 => {
                let n = *locals;
                *locals += 1;
                UserStmt::Local {
                    n,
                    expr: small_expr(self, rng, n, class),
                }
            }
            1 => UserStmt::Update {
                n: pick_local(rng, *locals),
                op: ['+', '-', '*', '^'][rng.next(4)],
                expr: small_expr(self, rng, *locals, class),
            },
            2 if class.methods.iter().any(|m| m.mutates) => {
                let muts: Vec<&MethodModel> = class.methods.iter().filter(|m| m.mutates).collect();
                UserStmt::CallMutator {
                    method: muts[rng.next(muts.len())].name.clone(),
                    expr: small_expr(self, rng, *locals, class),
                }
            }
            3 => UserStmt::Branch {
                n: pick_local(rng, *locals),
                c: rng.next(60) as i64,
                t1: 8_000 + rng.next(100) as i64,
                c2: 1 + rng.next(9) as i64,
            },
            4 => UserStmt::Loop {
                trips: 1 + rng.next(6) as i64,
                target: pick_local(rng, *locals),
                k: 1 + rng.next(5) as i64,
            },
            5 if self.has_apply => UserStmt::Lambda {
                target: pick_local(rng, *locals),
                k: 1 + rng.next(5) as i64,
                trips: 1 + rng.next(5) as i64,
            },
            6 => UserStmt::Probe(9_000 + rng.next(500) as i64),
            _ => UserStmt::Update {
                n: pick_local(rng, *locals),
                op: '+',
                expr: small_expr(self, rng, *locals, class),
            },
        }
    }

    /// A small integer expression over in-scope names: locals, `k`, the
    /// class parameter `a` (fields, methods, call operator), free
    /// functions, enum constants, literals.
    fn gen_expr(&self, rng: &mut DetRng, locals: usize, class: &ClassModel) -> String {
        let atom = |rng: &mut DetRng, this: &Self| -> String {
            match rng.next(7) {
                0 => format!("{}", 1 + rng.next(50)),
                1 => "k".to_string(),
                2 if locals > 0 => format!("x{}", rng.next(locals)),
                3 if !this.free_fns.is_empty() => {
                    let f = &this.free_fns[rng.next(this.free_fns.len())];
                    format!("{LIB_NAMESPACE}::{}(k, {})", f.name, 1 + rng.next(12))
                }
                4 if !this.enums.is_empty() => {
                    let e = &this.enums[rng.next(this.enums.len())];
                    let (v, _) = &e.variants[rng.next(e.variants.len())];
                    if e.scoped {
                        format!("{LIB_NAMESPACE}::{}::{v}", e.name)
                    } else {
                        format!("{LIB_NAMESPACE}::{v}")
                    }
                }
                5 => {
                    // A non-mutating method or the call operator on `a`.
                    let getters: Vec<&MethodModel> =
                        class.methods.iter().filter(|m| !m.mutates).collect();
                    if class.call_operator && (getters.is_empty() || rng.next(2) == 0) {
                        format!("a({})", rng.next(8))
                    } else if let Some(m) = getters.first() {
                        format!("a.{}({})", m.name, 1 + rng.next(10))
                    } else {
                        format!("{}", 1 + rng.next(50))
                    }
                }
                _ => "k".to_string(),
            }
        };
        let a = atom(rng, self);
        if rng.next(100) < 45 {
            let b = atom(rng, self);
            let op = ['+', '-', '*'][rng.next(3)];
            format!("{a} {op} {b}")
        } else {
            a
        }
    }

    // ----- rendering ----------------------------------------------------

    /// Renders the library header.
    pub fn render_lib(&self) -> String {
        let mut out = String::from("#pragma once\n");
        out.push_str(&format!("namespace {LIB_NAMESPACE} {{\n"));
        for e in &self.enums {
            let kw = if e.scoped { "enum class" } else { "enum" };
            let vars: Vec<String> = e
                .variants
                .iter()
                .map(|(n, v)| match v {
                    Some(v) => format!("{n} = {v}"),
                    None => n.clone(),
                })
                .collect();
            out.push_str(&format!("{kw} {} {{ {} }};\n", e.name, vars.join(", ")));
        }
        for c in &self.classes {
            out.push_str(&format!("class {} {{\npublic:\n", c.name));
            for f in 0..c.fields {
                out.push_str(&format!("  int f{f};\n"));
            }
            for m in &c.methods {
                if m.mutates {
                    out.push_str(&format!(
                        "  void {}(int a0) {{ f0 = f0 + a0 * {}; }}\n",
                        m.name, m.k
                    ));
                } else {
                    out.push_str(&format!(
                        "  int {}(int a0) const {{ return f0 * {} + a0; }}\n",
                        m.name, m.k
                    ));
                }
            }
            if c.call_operator {
                out.push_str("  int operator()(int i) const { return f0 + i * 3; }\n");
            }
            out.push_str("};\n");
        }
        for (a, c) in &self.aliases {
            out.push_str(&format!("using {a} = {c};\n"));
        }
        for f in &self.free_fns {
            out.push_str(&format!(
                "inline int {}(int a, int b) {{ return a * {} + b; }}\n",
                f.name, f.k
            ));
        }
        if self.has_apply {
            out.push_str(
                "template <typename F>\ninline int apply(F f, int n) {\n  int acc = 0;\n  for (int i = 0; i < n; i++) { f(i); acc = acc + i; }\n  return acc;\n}\n",
            );
        }
        out.push_str(&format!("}} // namespace {LIB_NAMESPACE}\n"));
        out
    }

    /// Renders the user source.
    pub fn render_main(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("#include \"{LIB_HEADER}\"\n"));
        out.push_str(&format!("#include \"{SUPPORT_HEADER}\"\n"));
        for f in &self.user_fns {
            out.push_str(&format!(
                "int u{}({LIB_NAMESPACE}::{}& a, int k) {{\n",
                f.index, f.param_type
            ));
            for s in &f.stmts {
                out.push_str(&render_stmt(s));
            }
            out.push_str("  return x0;\n}\n");
        }
        out
    }

    /// Renders the support header (probe declaration; never substituted).
    pub fn render_support(&self) -> String {
        "#pragma once\nint probe(int v);\n".to_string()
    }

    /// Renders the driver (its own TU; never rewritten).
    pub fn render_driver(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("#include \"{LIB_HEADER}\"\n"));
        out.push_str(&format!("#include \"{SUPPORT_HEADER}\"\n"));
        out.push_str(&format!("int {ENTRY}(int s0, int s1) {{\n"));
        out.push_str("  int acc = s0 * 31 + s1;\n");
        for (i, call) in self.driver_calls.iter().enumerate() {
            let args: Vec<String> = call.ctor_args.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!(
                "  {LIB_NAMESPACE}::{} o{i} = {LIB_NAMESPACE}::{}({});\n",
                call.class,
                call.class,
                args.join(", ")
            ));
            out.push_str(&format!(
                "  acc = acc + u{}(o{i}, acc % 17 + {});\n",
                call.user_fn, call.k
            ));
            out.push_str("  probe(acc);\n");
        }
        out.push_str("  return acc;\n}\n");
        out
    }

    /// Renders the whole project into a fresh VFS plus matching engine
    /// options.
    pub fn render(&self) -> (Vfs, Options) {
        let mut vfs = Vfs::new();
        vfs.add_file(LIB_HEADER, self.render_lib());
        vfs.add_file(SUPPORT_HEADER, self.render_support());
        vfs.add_file(MAIN_SOURCE, self.render_main());
        vfs.add_file(DRIVER_SOURCE, self.render_driver());
        let options = Options {
            header: LIB_HEADER.to_string(),
            sources: vec![MAIN_SOURCE.to_string()],
            ..Options::default()
        };
        (vfs, options)
    }

    /// Non-blank line count of all four rendered files — the size measure
    /// the shrinker minimizes and acceptance criteria bound.
    pub fn line_count(&self) -> usize {
        [
            self.render_lib(),
            self.render_support(),
            self.render_main(),
            self.render_driver(),
        ]
        .iter()
        .flat_map(|t| t.lines())
        .filter(|l| !l.trim().is_empty())
        .count()
    }
}

fn render_stmt(s: &UserStmt) -> String {
    match s {
        UserStmt::Probe(tag) => format!("  probe({tag});\n"),
        UserStmt::Local { n, expr } => format!("  int x{n} = {expr};\n"),
        UserStmt::Update { n, op, expr } => format!("  x{n} = x{n} {op} ({expr});\n"),
        UserStmt::CallMutator { method, expr } => format!("  a.{method}({expr});\n"),
        UserStmt::Branch { n, c, t1, c2 } => format!(
            "  if (x{n} > {c}) {{ probe({t1}); }} else {{ x{n} = x{n} + {c2}; }}\n"
        ),
        UserStmt::Loop { trips, target, k } => format!(
            "  for (int i = 0; i < {trips}; i++) {{ x{target} = x{target} + i * {k}; }}\n"
        ),
        UserStmt::Lambda { target, k, trips } => format!(
            "  {LIB_NAMESPACE}::apply([&](int i) {{ x{target} = x{target} + i * {k}; }}, {trips});\n"
        ),
        UserStmt::ProbeLocal(n) => format!("  probe(x{n});\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ProjectModel::generate(7);
        let b = ProjectModel::generate(7);
        assert_eq!(a.render_lib(), b.render_lib());
        assert_eq!(a.render_main(), b.render_main());
        assert_eq!(a.render_driver(), b.render_driver());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProjectModel::generate(1);
        let b = ProjectModel::generate(2);
        assert_ne!(
            a.render_lib().len() + a.render_main().len(),
            b.render_lib().len() + b.render_main().len()
        );
    }

    #[test]
    fn rendered_project_parses() {
        for seed in 1..=20u64 {
            let model = ProjectModel::generate(seed);
            let (vfs, _) = model.render();
            for path in [MAIN_SOURCE, DRIVER_SOURCE] {
                let fe = yalla_cpp::Frontend::new(vfs.clone());
                fe.parse_translation_unit(path)
                    .unwrap_or_else(|e| panic!("seed {seed}: parse {path}: {e}"));
            }
        }
    }
}
