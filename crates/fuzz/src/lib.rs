//! **yalla-fuzz** — differential semantic-preservation fuzzing for the
//! Header Substitution engine.
//!
//! The paper's core guarantee (§3, §4.4) is that substitution preserves
//! behavior, not just compilability. This crate machine-checks that
//! claim end to end:
//!
//! * [`grammar`] draws whole random projects — an expensive header
//!   exercising every Table-1 symbol kind plus user sources with
//!   executable entry bodies — from a deterministic RNG;
//! * [`oracle`] runs each project twice on the simulator's abstract
//!   machine (original vs. post-substitution, wrappers TU included) and
//!   compares the observable traces and the `verify` outcome;
//! * [`shrink`] greedily deletes model elements on divergence until a
//!   minimal repro remains;
//! * [`repro`] serializes minimal repros as ready-to-run fixtures under
//!   `tests/repros/`;
//! * [`session_fuzz`] fuzzes *edit streams* through a warm
//!   [`yalla_core::Session`], asserting warm reruns match cold runs
//!   byte for byte;
//! * [`race`] fuzzes *request schedules* against one `yalla serve`
//!   shard from several real threads, asserting concurrent edit/rerun
//!   serialize (or reject) cleanly with no torn cache fingerprints.
//!
//! The `yalla fuzz` CLI subcommand drives a whole campaign.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod grammar;
pub mod mega;
pub mod oracle;
pub mod race;
pub mod repro;
pub mod session_fuzz;
pub mod shrink;

pub use grammar::ProjectModel;
pub use mega::{MegaConfig, MegaProject};
pub use oracle::{CaseOutcome, Divergence, ExecTrace, Sabotage};
pub use race::{run_race_case, RaceCaseReport, RaceMismatch};
pub use repro::{parse_fixture, render_fixture, Repro};
pub use session_fuzz::{
    edit_stream_seed, run_session_case, run_session_case_with_store, SessionCaseReport,
};
pub use shrink::{shrink, Shrunk};

use yalla_obs::metrics::names;

/// Campaign configuration (`yalla fuzz` flags).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; case seeds are derived from it deterministically.
    pub seed: u64,
    /// Number of differential cases to run.
    pub iters: u64,
    /// Shrink diverging cases to minimal repros.
    pub shrink: bool,
    /// Known-bad rewrite injection (testing hook; `None` in CI).
    pub sabotage: Sabotage,
    /// Also run the session edit-stream mode every this many cases
    /// (0 disables it).
    pub session_every: u64,
    /// Also run the daemon shard-race mode every this many cases
    /// (0 disables it).
    pub race_every: u64,
    /// In race cases, arm the daemon's deterministic cancel-injection:
    /// the first attempt of every rerun trips its cancel token at this
    /// checkpoint, on top of real supersedes from racing edits (0
    /// disables injection).
    pub cancel_every: u64,
    /// Cache dir for session-fuzz cases: each step additionally checks a
    /// warm-from-disk restart against the cold oracle (`None` disables).
    pub store_dir: Option<std::path::PathBuf>,
    /// Entry arguments handed to `fuzz_entry`.
    pub entry_args: (i64, i64),
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iters: 200,
            shrink: false,
            sabotage: Sabotage::None,
            session_every: 25,
            race_every: 50,
            cancel_every: 0,
            store_dir: None,
            entry_args: (3, 5),
        }
    }
}

/// One diverging case, with its optional minimized repro.
#[derive(Debug)]
pub struct DivergenceCase {
    /// Case seed (regenerate with [`ProjectModel::generate`]).
    pub case_seed: u64,
    /// What diverged.
    pub divergence: Divergence,
    /// Minimized repro fixture text, when shrinking was on.
    pub fixture: Option<String>,
    /// Non-blank line count of the minimized project, when shrunk.
    pub shrunk_lines: Option<usize>,
    /// Shrinker deletions performed.
    pub shrink_steps: usize,
}

/// Campaign results.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Differential cases executed.
    pub cases: u64,
    /// Session-fuzz cases executed.
    pub session_cases: u64,
    /// The case seed each session-fuzz case ran under, in order. A
    /// session case at campaign position `i` is seeded by position `i`'s
    /// case seed alone, so this list's prefix is identical across
    /// campaigns that differ only in `--iters` — the replay-stability
    /// test pins that.
    pub session_case_seeds: Vec<u64>,
    /// Warm-vs-cold mismatches across all session cases.
    pub session_mismatches: usize,
    /// Shard-race cases executed.
    pub race_cases: u64,
    /// Race-contract violations across all race cases.
    pub race_mismatches: usize,
    /// Diverging cases.
    pub divergences: Vec<DivergenceCase>,
}

impl CampaignReport {
    /// True when no case diverged and no session or race mismatch
    /// appeared.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty() && self.session_mismatches == 0 && self.race_mismatches == 0
    }
}

/// Runs a whole fuzzing campaign.
///
/// # Errors
///
/// Returns a diagnostic when the session-fuzz mode hits an engine error
/// (differential-case engine errors are recorded as divergences, not
/// returned).
pub fn run_campaign(config: &FuzzConfig) -> Result<CampaignReport, String> {
    let mut master = yalla_corpus::gen::DetRng::new(config.seed);
    let mut report = CampaignReport::default();

    for i in 0..config.iters {
        let case_seed = master.next_u64();
        let model = ProjectModel::generate(case_seed);
        let outcome = oracle::run_case(&model, config.sabotage, config.entry_args);
        report.cases += 1;
        yalla_obs::count(names::FUZZ_CASES, 1);
        if let CaseOutcome::Diverged(divergence) = outcome {
            yalla_obs::count(names::FUZZ_DIVERGENCES, 1);
            let mut case = DivergenceCase {
                case_seed,
                divergence: *divergence,
                fixture: None,
                shrunk_lines: None,
                shrink_steps: 0,
            };
            if config.shrink {
                if let Some(s) = shrink::shrink(&model, config.sabotage, config.entry_args) {
                    case.shrunk_lines = Some(s.model.line_count());
                    case.shrink_steps = s.steps;
                    case.divergence = s.divergence;
                    case.fixture = Some(repro::render_fixture(
                        &s.model,
                        config.sabotage,
                        config.entry_args,
                        &format!("{}", case.divergence),
                    ));
                }
            }
            report.divergences.push(case);
        }

        if config.session_every > 0 && (i + 1) % config.session_every == 0 {
            // The session case is seeded by the case seed directly (the
            // edit stream derives from it inside run_session_case), so a
            // recorded case seed replays the identical project and edit
            // stream no matter what `--iters` the replay runs under.
            let session = session_fuzz::run_session_case_with_store(
                case_seed,
                6,
                config.store_dir.as_deref(),
            )?;
            report.session_cases += 1;
            report.session_case_seeds.push(case_seed);
            report.session_mismatches += session.mismatches.len();
        }

        if config.race_every > 0 && (i + 1) % config.race_every == 0 {
            let race =
                race::run_race_case_with_cancel(case_seed ^ 0x5a5a, 4, 8, config.cancel_every)?;
            report.race_cases += 1;
            report.race_mismatches += race.mismatches.len();
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_divergence_free() {
        let report = run_campaign(&FuzzConfig {
            seed: 42,
            iters: 10,
            session_every: 5,
            ..FuzzConfig::default()
        })
        .unwrap();
        assert_eq!(report.cases, 10);
        if let Some(d) = report.divergences.first() {
            panic!("seed {} diverged: {}", d.case_seed, d.divergence);
        }
        assert_eq!(report.session_mismatches, 0);
    }

    #[test]
    fn session_cases_with_a_store_fuzz_disk_warm_restarts_cleanly() {
        let dir = std::env::temp_dir().join(format!("yalla-fuzz-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_campaign(&FuzzConfig {
            seed: 1717,
            iters: 6,
            session_every: 3,
            race_every: 0,
            store_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        })
        .unwrap();
        assert_eq!(report.session_cases, 2);
        assert_eq!(
            report.session_mismatches, 0,
            "warm-from-disk restarts must match the cold oracle"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_case_seeding_is_stable_across_iteration_budgets() {
        // Two campaigns from the same master seed, differing only in
        // `--iters`: the shorter campaign's session-case seeds must be a
        // prefix of the longer one's — replaying under a bigger budget
        // never drifts the cases already seen.
        let short = run_campaign(&FuzzConfig {
            seed: 99,
            iters: 4,
            session_every: 2,
            ..FuzzConfig::default()
        })
        .unwrap();
        let long = run_campaign(&FuzzConfig {
            seed: 99,
            iters: 8,
            session_every: 2,
            ..FuzzConfig::default()
        })
        .unwrap();
        assert_eq!(short.session_case_seeds.len(), 2);
        assert_eq!(long.session_case_seeds.len(), 4);
        assert_eq!(
            short.session_case_seeds,
            long.session_case_seeds[..2],
            "session-case seeds drifted with --iters"
        );
        // And a recorded case seed replays the identical edit stream.
        let a = run_session_case(short.session_case_seeds[0], 5).unwrap();
        let b = run_session_case(short.session_case_seeds[0], 5).unwrap();
        assert_eq!(a.edit_log, b.edit_log);
        assert!(!a.edit_log.is_empty());
    }

    #[test]
    fn sabotage_is_caught_and_shrinks_small() {
        let report = run_campaign(&FuzzConfig {
            seed: 7,
            iters: 3,
            shrink: true,
            sabotage: Sabotage::ProbeOffset,
            session_every: 0,
            ..FuzzConfig::default()
        })
        .unwrap();
        assert!(
            !report.divergences.is_empty(),
            "known-bad rewrite must be detected"
        );
        for d in &report.divergences {
            let lines = d.shrunk_lines.expect("shrunk");
            assert!(d.shrink_steps > 0, "shrinker made no progress");
            assert!(lines <= 25, "repro too large: {lines} lines");
            assert!(d.fixture.is_some());
        }
    }
}
