//! Greedy model-level shrinking.
//!
//! On divergence, the shrinker deletes one model element at a time —
//! driver calls, user functions, statements, library classes/methods,
//! enums, aliases, free functions — re-rendering and re-running the
//! oracle after each deletion. A deletion is kept only when the case
//! still diverges *with the same failure kind*; everything else is
//! rolled back. Passes repeat until a whole pass removes nothing, so
//! the result is locally minimal.

use std::mem::discriminant;

use crate::grammar::ProjectModel;
use crate::oracle::{run_case, CaseOutcome, Divergence, Sabotage};

/// True when two divergences count as "the same failure" for shrinking:
/// same variant, and for trace mismatches the same error-shape on each
/// side (so shrinking never trades a value mismatch in a clean run for
/// an unbound-name error it introduced itself).
fn same_failure(a: &Divergence, b: &Divergence) -> bool {
    if discriminant(a) != discriminant(b) {
        return false;
    }
    match (a, b) {
        (
            Divergence::TraceMismatch {
                original: ao,
                substituted: as_,
            },
            Divergence::TraceMismatch {
                original: bo,
                substituted: bs,
            },
        ) => ao.error.is_some() == bo.error.is_some() && as_.error.is_some() == bs.error.is_some(),
        _ => true,
    }
}

/// Result of shrinking one diverging case.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimal still-diverging model.
    pub model: ProjectModel,
    /// Successful deletions performed.
    pub steps: usize,
    /// The minimal model's divergence.
    pub divergence: Divergence,
}

fn divergence_of(outcome: &CaseOutcome) -> Option<&Divergence> {
    match outcome {
        CaseOutcome::Diverged(d) => Some(d),
        CaseOutcome::Agree(_) => None,
    }
}

/// Shrinks `model`, which must currently diverge under `sabotage`.
/// Returns `None` when the starting case does not diverge.
pub fn shrink(model: &ProjectModel, sabotage: Sabotage, entry_args: (i64, i64)) -> Option<Shrunk> {
    let start = run_case(model, sabotage, entry_args);
    let mut current = model.clone();
    let mut divergence = divergence_of(&start)?.clone();
    let reference = divergence.clone();
    let mut steps = 0usize;

    loop {
        let mut changed = false;
        for make in candidates(&current) {
            let Some(next) = make(&current) else { continue };
            let outcome = run_case(&next, sabotage, entry_args);
            if let Some(d) = divergence_of(&outcome) {
                if same_failure(d, &reference) {
                    divergence = d.clone();
                    current = next;
                    steps += 1;
                    yalla_obs::count(yalla_obs::metrics::names::FUZZ_SHRINK_STEPS, 1);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    Some(Shrunk {
        model: current,
        steps,
        divergence,
    })
}

/// Enumerates one whole pass of deletion candidates for `model`. Indices
/// are captured eagerly, so each candidate applies to whatever the model
/// looks like when it runs (out-of-range indices become inapplicable).
#[allow(clippy::type_complexity)]
fn candidates(model: &ProjectModel) -> Vec<Box<dyn Fn(&ProjectModel) -> Option<ProjectModel>>> {
    let mut out: Vec<Box<dyn Fn(&ProjectModel) -> Option<ProjectModel>>> = Vec::new();

    // Driver calls (always keep at least one so the entry still runs user
    // code).
    for i in (0..model.driver_calls.len()).rev() {
        out.push(Box::new(move |m| {
            if m.driver_calls.len() <= 1 || i >= m.driver_calls.len() {
                return None;
            }
            let mut n = m.clone();
            n.driver_calls.remove(i);
            Some(n)
        }));
    }

    // User functions no driver call references anymore.
    for i in (0..model.user_fns.len()).rev() {
        out.push(Box::new(move |m| {
            if i >= m.user_fns.len() {
                return None;
            }
            let idx = m.user_fns[i].index;
            if m.driver_calls.iter().any(|c| c.user_fn == idx) {
                return None;
            }
            let mut n = m.clone();
            n.user_fns.remove(i);
            Some(n)
        }));
    }

    // Statements inside every user function.
    for f in 0..model.user_fns.len() {
        for s in (0..model.user_fns[f].stmts.len()).rev() {
            out.push(Box::new(move |m| {
                if f >= m.user_fns.len() || s >= m.user_fns[f].stmts.len() {
                    return None;
                }
                let mut n = m.clone();
                n.user_fns[f].stmts.remove(s);
                Some(n)
            }));
        }
    }

    // Library surface: methods, then whole classes, enums, aliases, free
    // functions, and the templated `apply`.
    for c in 0..model.classes.len() {
        for mth in (0..model.classes[c].methods.len()).rev() {
            out.push(Box::new(move |m| {
                if c >= m.classes.len() || mth >= m.classes[c].methods.len() {
                    return None;
                }
                let mut n = m.clone();
                n.classes[c].methods.remove(mth);
                Some(n)
            }));
        }
        out.push(Box::new(move |m| {
            if c >= m.classes.len() || !m.classes[c].call_operator {
                return None;
            }
            let mut n = m.clone();
            n.classes[c].call_operator = false;
            Some(n)
        }));
        out.push(Box::new(move |m| {
            if c >= m.classes.len() || m.classes[c].fields <= 1 {
                return None;
            }
            let mut n = m.clone();
            n.classes[c].fields -= 1;
            for call in &mut n.driver_calls {
                if call.class == n.classes[c].name {
                    call.ctor_args.truncate(n.classes[c].fields);
                }
            }
            Some(n)
        }));
    }
    for c in (0..model.classes.len()).rev() {
        out.push(Box::new(move |m| {
            if c >= m.classes.len() {
                return None;
            }
            let name = m.classes[c].name.clone();
            let mut n = m.clone();
            n.classes.remove(c);
            n.aliases.retain(|(_, target)| *target != name);
            Some(n)
        }));
    }
    for e in (0..model.enums.len()).rev() {
        out.push(Box::new(move |m| {
            if e >= m.enums.len() {
                return None;
            }
            let mut n = m.clone();
            n.enums.remove(e);
            Some(n)
        }));
    }
    for a in (0..model.aliases.len()).rev() {
        out.push(Box::new(move |m| {
            if a >= m.aliases.len() {
                return None;
            }
            let mut n = m.clone();
            n.aliases.remove(a);
            Some(n)
        }));
    }
    for f in (0..model.free_fns.len()).rev() {
        out.push(Box::new(move |m| {
            if f >= m.free_fns.len() {
                return None;
            }
            let mut n = m.clone();
            n.free_fns.remove(f);
            Some(n)
        }));
    }
    out.push(Box::new(|m| {
        if !m.has_apply {
            return None;
        }
        let mut n = m.clone();
        n.has_apply = false;
        Some(n)
    }));

    out
}
