//! Mega-corpus generation: realistic 1k–10k-file project trees.
//!
//! A [`MegaConfig`] describes a synthetic project shaped like the large
//! codebases the paper targets: a deep *shared* include DAG (layered, so
//! it is acyclic by construction, with sliding-window fan-out producing
//! diamond includes), a facade header (`mega_lib.hpp`) that fronts the
//! whole shared region, many translation units that all pay for that
//! shared closure, and per-TU private header chains that soak up the
//! remaining file budget. Generation is pure: the same `(config, seed)`
//! pair yields byte-identical trees in any process on any host, which
//! the determinism suite checks across fresh processes.
//!
//! The named presets (`mega-1k`, `mega-4k`, `mega-10k`) are the replayable
//! corpus the `mega` bench and CI smoke drive.

use yalla_core::Options;
use yalla_corpus::gen::DetRng;
use yalla_cpp::vfs::Vfs;

/// Facade header fronting the shared include DAG; the substitution target.
pub const MEGA_HEADER: &str = "mega_lib.hpp";
/// Namespace wrapping all generated shared library code.
pub const MEGA_NAMESPACE: &str = "mg";
/// Ceiling on shared-region headers, so the expensive closure stays a
/// bounded cost that many TUs *share* rather than growing with `files`.
const MAX_SHARED: usize = 256;

/// Shape of a generated mega project.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegaConfig {
    /// Total file count to aim for (headers + TUs + facade).
    pub files: usize,
    /// Layers in the shared include DAG.
    pub depth: usize,
    /// Includes each shared header emits into the next layer.
    pub fanout: usize,
    /// Translation units (each is a parse root and a rewritten source).
    pub tus: usize,
    /// Generation seed; same `(config, seed)` → byte-identical tree.
    pub seed: u64,
}

impl MegaConfig {
    /// Looks up a named preset: `mega-1k`, `mega-4k`, or `mega-10k`.
    pub fn preset(name: &str) -> Option<MegaConfig> {
        match name {
            "mega-1k" => Some(MegaConfig {
                files: 1_000,
                depth: 6,
                fanout: 3,
                tus: 24,
                seed: 0x11,
            }),
            "mega-4k" => Some(MegaConfig {
                files: 4_000,
                depth: 8,
                fanout: 3,
                tus: 48,
                seed: 0x44,
            }),
            "mega-10k" => Some(MegaConfig {
                files: 10_000,
                depth: 10,
                fanout: 4,
                tus: 96,
                seed: 0xaa,
            }),
            _ => None,
        }
    }

    /// All preset names, in ascending size order.
    pub fn preset_names() -> &'static [&'static str] {
        &["mega-1k", "mega-4k", "mega-10k"]
    }
}

/// A fully generated mega project: every file plus the engine options
/// that drive it (all TUs as parse roots).
#[derive(Debug, Clone)]
pub struct MegaProject {
    /// `(path, text)` for every generated file, in emission order.
    pub files: Vec<(String, String)>,
    /// TU paths (`tu_<k>.cpp`), in index order.
    pub tus: Vec<String>,
    /// Shared-region header count (excluding the facade).
    pub shared_headers: usize,
    /// Private header count across all TU chains.
    pub private_headers: usize,
}

impl MegaProject {
    /// Generates the project tree for `config`. Deterministic: driven
    /// entirely by [`DetRng`] seeded from `config.seed`.
    pub fn generate(config: &MegaConfig) -> MegaProject {
        let depth = config.depth.max(1);
        let fanout = config.fanout.max(1);
        let tus = config.tus.max(1);
        // Shared region: bounded, at least one header per layer. An
        // eighth of the file budget (capped) keeps the shared closure
        // genuinely expensive — the cost every TU pays — while private
        // chains soak up the rest of the tree.
        let shared = (config.files / 8).clamp(depth, MAX_SHARED);
        let layer_sizes = split_layers(shared, depth);
        let mut rng = DetRng::new(config.seed);

        let mut files: Vec<(String, String)> = Vec::new();

        // Shared DAG, deepest layer first so includes always point at
        // files already emitted (edges only go layer i -> i+1).
        for (layer, &size) in layer_sizes.iter().enumerate().rev() {
            let next = layer_sizes.get(layer + 1).copied().unwrap_or(0);
            for idx in 0..size {
                let text = render_shared_header(layer, idx, next, fanout, &mut rng);
                files.push((shared_path(layer, idx), text));
            }
        }

        // Facade: includes every layer-0 header.
        let mut facade = String::from("#pragma once\n");
        for idx in 0..layer_sizes[0] {
            facade.push_str(&format!("#include \"{}\"\n", shared_path(0, idx)));
        }
        files.push((MEGA_HEADER.to_string(), facade));

        // Private chains: split the remaining file budget across TUs.
        let spent = shared + 1 + tus;
        let private_total = config.files.saturating_sub(spent);
        let chain_lens = split_layers(private_total, tus);

        let mut tu_paths = Vec::with_capacity(tus);
        for (k, &chain) in chain_lens.iter().enumerate() {
            // Chain tail first so each link includes an existing file.
            for j in (0..chain).rev() {
                let mut text = String::from("#pragma once\n");
                if j + 1 < chain {
                    text.push_str(&format!("#include \"{}\"\n", private_path(k, j + 1)));
                }
                let k1 = rng.next(23) as i64 + 1;
                text.push_str(&format!(
                    "inline int p{k}_{j}(int a) {{ return a + {k1}; }}\n"
                ));
                files.push((private_path(k, j), text));
            }
            let tu = render_tu(k, chain, &layer_sizes, &mut rng);
            let path = tu_path(k);
            files.push((path.clone(), tu));
            tu_paths.push(path);
        }

        MegaProject {
            files,
            tus: tu_paths,
            shared_headers: shared,
            private_headers: private_total,
        }
    }

    /// Renders into a fresh VFS plus engine options: the facade is the
    /// substitution target and every TU is a parse root.
    pub fn render(&self) -> (Vfs, Options) {
        let mut vfs = Vfs::new();
        for (path, text) in &self.files {
            vfs.add_file(path, text.clone());
        }
        let options = Options {
            header: MEGA_HEADER.to_string(),
            sources: self.tus.clone(),
            tu_roots: self.tus.clone(),
            ..Options::default()
        };
        (vfs, options)
    }

    /// FNV-64 over every `(path, text)` pair in sorted path order — the
    /// byte-identity fingerprint the determinism tests compare across
    /// processes and worker counts.
    pub fn tree_hash(&self) -> u64 {
        let mut sorted: Vec<&(String, String)> = self.files.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for (path, text) in sorted {
            eat(path.as_bytes());
            eat(&[0]);
            eat(text.as_bytes());
            eat(&[0xff]);
        }
        h
    }

    /// Total generated file count.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

/// Splits `total` into `parts` buckets, remainder spread over the
/// earliest buckets, so layer/chain sizes are deterministic.
fn split_layers(total: usize, parts: usize) -> Vec<usize> {
    let base = total / parts;
    let rem = total % parts;
    (0..parts).map(|i| base + usize::from(i < rem)).collect()
}

fn shared_path(layer: usize, idx: usize) -> String {
    format!("mg_{layer}_{idx}.hpp")
}

fn private_path(tu: usize, j: usize) -> String {
    format!("tu{tu}_p{j}.hpp")
}

fn tu_path(k: usize) -> String {
    format!("tu_{k}.cpp")
}

/// One shared header: `#pragma once`, a sliding window of includes into
/// the next layer (overlapping windows produce diamond includes), and a
/// small `mg` declaration payload — a free function always, plus a class
/// every 4th header and an enum every 5th, mirroring the paper's Table 1
/// symbol kinds without inflating per-header cost.
fn render_shared_header(
    layer: usize,
    idx: usize,
    next_layer: usize,
    fanout: usize,
    rng: &mut DetRng,
) -> String {
    let mut out = String::from("#pragma once\n");
    if next_layer > 0 {
        let mut seen = Vec::new();
        for t in 0..fanout {
            let target = (idx * fanout + t) % next_layer;
            if !seen.contains(&target) {
                seen.push(target);
                out.push_str(&format!(
                    "#include \"{}\"\n",
                    shared_path(layer + 1, target)
                ));
            }
        }
    }
    let k = rng.next(29) as i64 + 1;
    out.push_str(&format!("namespace {MEGA_NAMESPACE} {{\n"));
    out.push_str(&format!(
        "inline int h{layer}_{idx}(int a, int b) {{ return a * {k} + b; }}\n"
    ));
    if idx.is_multiple_of(4) {
        let km = rng.next(17) as i64 + 1;
        out.push_str(&format!(
            "class H{layer}_{idx} {{\npublic:\n  int f0;\n  int get(int a0) const {{ return f0 * {km} + a0; }}\n  void bump(int a0) {{ f0 = f0 + a0 * {km}; }}\n}};\n"
        ));
    }
    if idx.is_multiple_of(5) {
        let v = rng.next(9) as i64;
        out.push_str(&format!(
            "enum E{layer}_{idx} {{ E{layer}_{idx}_A = {v}, E{layer}_{idx}_B }};\n"
        ));
    }
    out.push_str(&format!("}} // namespace {MEGA_NAMESPACE}\n"));
    out
}

/// One translation unit: includes the facade (and its private chain head
/// when it has one) and defines functions touching shared symbols drawn
/// from layer 0, so every TU's usage analysis reaches into the shared
/// closure.
fn render_tu(k: usize, chain: usize, layer_sizes: &[usize], rng: &mut DetRng) -> String {
    let mut out = format!("#include \"{MEGA_HEADER}\"\n");
    if chain > 0 {
        out.push_str(&format!("#include \"{}\"\n", private_path(k, 0)));
    }
    let l0 = layer_sizes[0].max(1);
    let calls = 2 + rng.next(3);
    out.push_str(&format!("int tu{k}_fn(int a) {{\n  int acc = a;\n"));
    for _ in 0..calls {
        let idx = rng.next(l0);
        let kk = rng.next(13) as i64 + 1;
        out.push_str(&format!(
            "  acc = acc + {MEGA_NAMESPACE}::h0_{idx}(acc % 31 + 1, {kk});\n"
        ));
    }
    // Touch a class from layer 0 when one lands on this TU's draw.
    let cls = rng.next(l0);
    let cls = cls - (cls % 4);
    out.push_str(&format!(
        "  {MEGA_NAMESPACE}::H0_{cls} o = {MEGA_NAMESPACE}::H0_{cls}();\n  o.bump(acc % 5 + 1);\n  acc = acc + o.get(acc % 3);\n"
    ));
    if chain > 0 {
        out.push_str(&format!("  acc = acc + p{k}_0(acc % 11);\n"));
    }
    out.push_str("  return acc;\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_unknown_is_none() {
        for name in MegaConfig::preset_names() {
            assert!(MegaConfig::preset(name).is_some(), "{name}");
        }
        assert!(MegaConfig::preset("mega-2k").is_none());
    }

    #[test]
    fn generation_is_deterministic_in_process() {
        let cfg = MegaConfig::preset("mega-1k").unwrap();
        let a = MegaProject::generate(&cfg);
        let b = MegaProject::generate(&cfg);
        assert_eq!(a.tree_hash(), b.tree_hash());
        assert_eq!(a.files, b.files);
    }

    #[test]
    fn file_count_hits_the_target() {
        for name in MegaConfig::preset_names() {
            let cfg = MegaConfig::preset(name).unwrap();
            let p = MegaProject::generate(&cfg);
            let want = cfg.files;
            assert!(
                p.file_count() >= want && p.file_count() <= want + 1,
                "{name}: {} vs {want}",
                p.file_count()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = MegaConfig::preset("mega-1k").unwrap();
        let other = MegaConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        assert_ne!(
            MegaProject::generate(&cfg).tree_hash(),
            MegaProject::generate(&other).tree_hash()
        );
    }

    #[test]
    fn every_include_points_at_an_emitted_file() {
        let cfg = MegaConfig::preset("mega-1k").unwrap();
        let p = MegaProject::generate(&cfg);
        let paths: std::collections::HashSet<&str> =
            p.files.iter().map(|(p, _)| p.as_str()).collect();
        for (path, text) in &p.files {
            for line in text.lines() {
                if let Some(inc) = line.strip_prefix("#include \"") {
                    let inc = inc.trim_end_matches('"');
                    assert!(paths.contains(inc), "{path} includes missing {inc}");
                }
            }
        }
    }
}
