//! Shard-race fuzzing for the `yalla serve` daemon.
//!
//! The daemon serializes concurrent `edit`/`rerun`/`get` on one project
//! behind the shard mutex; a request is either applied atomically at
//! request granularity or cleanly rejected. This mode hammers that
//! contract: several real threads fire randomized interleaved request
//! schedules at *one* shard, then the final state is checked against two
//! independent oracles:
//!
//! * **Sequential equivalence** — each thread edits its own source file,
//!   so whatever the interleaving, the final file state is determined by
//!   per-thread program order alone. After all threads join, a draining
//!   rerun's artifacts must be byte-identical to a cold
//!   [`yalla_core::Engine`] run over the expected final file texts. Any
//!   difference means an edit tore, was dropped, or leaked mid-rerun.
//! * **No torn fingerprints** — a second rerun immediately after the
//!   drain must report every stage cached (`fully_cached`). If racing
//!   requests had recorded a stage result under a key not matching its
//!   inputs, this revalidation would recompute (or worse, return stale
//!   artifacts caught by the first oracle).
//!
//! Every response must parse as JSON with `"ok": true` here — the
//! schedule only sends valid requests, so a rejection is itself a
//! finding. `yalla fuzz --race-every N` runs one case every N
//! differential cases with a schedule seed derived from the campaign
//! seed.
//!
//! **Cancel mode** (`yalla fuzz --cancel-every N`,
//! [`run_race_case_with_cancel`]): the same schedules run with the
//! daemon's cancel-injection hook armed, so the first attempt of every
//! rerun trips its token at the N-th checkpoint — as if a superseding
//! edit had landed exactly at that stage boundary — on top of whatever
//! *real* supersedes the racing edit threads produce. The oracles are
//! unchanged and must still hold: every cancelled attempt retries to
//! completion, so the final state stays byte-equal to the sequential
//! cold run and no torn fingerprint may appear in any cache.

use std::sync::Arc;

use yalla_core::serve::ServeState;
use yalla_core::{Engine, Options};
use yalla_corpus::gen::DetRng;
use yalla_cpp::vfs::Vfs;
use yalla_exec::Executor;
use yalla_obs::chrome::escape_json;

/// One contract violation observed by a race case.
#[derive(Debug, Clone)]
pub struct RaceMismatch {
    /// Which oracle failed.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for RaceMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Outcome of one race case.
#[derive(Debug)]
pub struct RaceCaseReport {
    /// Total requests sent across all client threads.
    pub requests: usize,
    /// Requests the daemon rejected (must be 0 — the schedule is valid).
    pub rejected: usize,
    /// Reruns that actually executed (drain + per-thread).
    pub reruns: usize,
    /// Contract violations (empty on success).
    pub mismatches: Vec<RaceMismatch>,
}

impl RaceCaseReport {
    /// True when every oracle held.
    pub fn clean(&self) -> bool {
        self.rejected == 0 && self.mismatches.is_empty()
    }
}

const RACE_HEADER: &str = "\
namespace rc {
class Widget {
 public:
  int id() const;
  int scale(int k) const;
};
}  // namespace rc
";

fn source_name(thread: usize) -> String {
    format!("s{thread}.cpp")
}

/// The text of thread `t`'s source at revision `rev`. Revision 0 is the
/// opening state; each edit bumps the revision, so the final text is a
/// pure function of how many edits the thread submitted.
fn source_text(thread: usize, rev: usize) -> String {
    format!(
        "#include \"rc.hpp\"\nint use{thread}(rc::Widget& w) {{ return w.id() + w.scale({rev}); }}\n"
    )
}

fn open_request(threads: usize) -> String {
    let mut files = vec![format!("\"rc.hpp\": \"{}\"", escape_json(RACE_HEADER))];
    let mut sources = Vec::with_capacity(threads);
    for t in 0..threads {
        files.push(format!(
            "\"{}\": \"{}\"",
            source_name(t),
            escape_json(&source_text(t, 0))
        ));
        sources.push(format!("\"{}\"", source_name(t)));
    }
    format!(
        "{{\"op\": \"open\", \"project\": \"race\", \"header\": \"rc.hpp\", \
         \"sources\": [{}], \"files\": {{{}}}}}",
        sources.join(", "),
        files.join(", ")
    )
}

/// The cold-oracle result over the expected final file state.
fn cold_final(
    threads: usize,
    final_revs: &[usize],
) -> Result<yalla_core::SubstitutionResult, String> {
    let mut vfs = Vfs::new();
    vfs.add_file("rc.hpp", RACE_HEADER);
    let mut sources = Vec::with_capacity(threads);
    for (t, &rev) in final_revs.iter().enumerate() {
        vfs.add_file(&source_name(t), source_text(t, rev));
        sources.push(source_name(t));
    }
    Engine::new(Options {
        header: "rc.hpp".to_string(),
        sources,
        ..Options::default()
    })
    .run(&vfs)
    .map_err(|e| format!("cold oracle: {e}"))
}

/// Runs one race case: `threads` client threads each fire
/// `requests_per_thread` randomized edit/rerun/get/status requests at one
/// warm shard, then the final state is checked against the sequential
/// oracle and the torn-fingerprint oracle.
///
/// # Errors
///
/// Returns a diagnostic when the harness itself fails (thread panic,
/// unparseable response); contract violations are reported as
/// [`RaceMismatch`]es instead.
///
/// # Panics
///
/// Panics only on poisoned harness-internal locks.
pub fn run_race_case(
    seed: u64,
    threads: usize,
    requests_per_thread: usize,
) -> Result<RaceCaseReport, String> {
    run_race_case_with_cancel(seed, threads, requests_per_thread, 0)
}

/// [`run_race_case`] with the daemon's deterministic cancel-injection
/// armed: when `cancel_every > 0`, the first attempt of every rerun in
/// the schedule trips its cancel token at the `cancel_every`-th
/// checkpoint and must recover by retrying. Both oracles are unchanged —
/// injected cancellation may cost retries, never correctness.
///
/// # Errors
///
/// Same contract as [`run_race_case`].
///
/// # Panics
///
/// Panics only on poisoned harness-internal locks.
pub fn run_race_case_with_cancel(
    seed: u64,
    threads: usize,
    requests_per_thread: usize,
    cancel_every: u64,
) -> Result<RaceCaseReport, String> {
    let threads = threads.max(2);
    // Vary the contention profile with the seed: 1 worker makes every
    // rerun strictly serial, more workers interleave them with edits.
    let workers = 1 + (seed % 4) as usize;
    let state = Arc::new(ServeState::new(Executor::new(workers)));
    state.set_cancel_every(cancel_every);

    let r = state.handle_line(&open_request(threads));
    if !r.text.contains("\"ok\": true") {
        return Err(format!("open failed: {}", r.text));
    }
    // One cold rerun before the clients start, so every racing `get` has
    // a completed run to read — a rejection after this is a real finding.
    let r = state.handle_line("{\"op\": \"rerun\", \"project\": \"race\"}");
    if !r.text.contains("\"ok\": true") {
        return Err(format!("cold rerun failed: {}", r.text));
    }

    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let state = Arc::clone(&state);
        handles.push(std::thread::spawn(move || {
            let mut rng = DetRng::new(seed ^ (0xace0_0000 + t as u64));
            let mut rev = 0usize;
            let mut sent = 0usize;
            let mut rejected = 0usize;
            for _ in 0..requests_per_thread {
                let request = match rng.next(6) {
                    0 | 1 => {
                        rev += 1;
                        format!(
                            "{{\"op\": \"edit\", \"project\": \"race\", \"path\": \"{}\", \"text\": \"{}\"}}",
                            source_name(t),
                            escape_json(&source_text(t, rev))
                        )
                    }
                    2 | 3 => "{\"op\": \"rerun\", \"project\": \"race\"}".to_string(),
                    4 => format!(
                        "{{\"op\": \"get\", \"project\": \"race\", \"artifact\": \"source:{}\"}}",
                        source_name(t)
                    ),
                    _ => "{\"op\": \"status\"}".to_string(),
                };
                let response = state.handle_line(&request);
                sent += 1;
                if !response.text.contains("\"ok\": true") {
                    rejected += 1;
                }
            }
            (rev, sent, rejected)
        }));
    }

    let mut final_revs = vec![0usize; threads];
    let mut report = RaceCaseReport {
        requests: 2, // the open + the cold rerun
        rejected: 0,
        reruns: 1,
        mismatches: Vec::new(),
    };
    for (t, handle) in handles.into_iter().enumerate() {
        let (rev, sent, rejected) = handle
            .join()
            .map_err(|_| format!("client thread {t} panicked"))?;
        final_revs[t] = rev;
        report.requests += sent;
        report.rejected += rejected;
    }
    if report.rejected > 0 {
        report.mismatches.push(RaceMismatch {
            kind: "rejected-valid-request".to_string(),
            detail: format!("{} valid request(s) rejected", report.rejected),
        });
    }

    // Drain any still-pending edits, then check the torn-fingerprint
    // oracle: an immediate second rerun must be fully cached.
    let drain = state.handle_line("{\"op\": \"rerun\", \"project\": \"race\"}");
    let warm = state.handle_line("{\"op\": \"rerun\", \"project\": \"race\"}");
    report.requests += 2;
    report.reruns += 2;
    if !drain.text.contains("\"ok\": true") {
        report.mismatches.push(RaceMismatch {
            kind: "drain-failed".to_string(),
            detail: drain.text.clone(),
        });
    }
    if !warm.text.contains("\"fully_cached\": true") {
        report.mismatches.push(RaceMismatch {
            kind: "torn-fingerprint".to_string(),
            detail: format!(
                "post-drain rerun recomputed a stage — a cache key did not \
                 match its inputs: {}",
                warm.text
            ),
        });
    }

    // Sequential-equivalence oracle: artifacts must equal a cold run over
    // the deterministic final file state.
    let cold = cold_final(threads, &final_revs)?;
    let mut check = |artifact: &str, expected: &str| {
        let request =
            format!("{{\"op\": \"get\", \"project\": \"race\", \"artifact\": \"{artifact}\"}}");
        let response = state.handle_line(&request);
        report.requests += 1;
        let got = yalla_obs::json::parse(&response.text)
            .ok()
            .and_then(|v| v.get("text").and_then(|t| t.as_str().map(str::to_string)));
        if got.as_deref() != Some(expected) {
            report.mismatches.push(RaceMismatch {
                kind: "artifact-divergence".to_string(),
                detail: format!(
                    "`{artifact}` differs from the cold run over the final file state \
                     (got {} bytes, want {} bytes)",
                    got.map_or(0, |g| g.len()),
                    expected.len()
                ),
            });
        }
    };
    check("lightweight", &cold.lightweight_header);
    check("wrappers", &cold.wrappers_file);
    for (t, _) in final_revs.iter().enumerate() {
        let name = source_name(t);
        check(&format!("source:{name}"), &cold.rewritten_sources[&name]);
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_case_is_clean_across_seeds() {
        for seed in [1u64, 2, 3] {
            let report = run_race_case(seed, 4, 8).unwrap();
            assert!(report.clean(), "seed {seed}: {:?}", report.mismatches);
            assert!(report.requests > 4 * 8, "all requests counted");
        }
    }

    #[test]
    fn race_case_stays_clean_with_injected_cancellation() {
        // Sweep the injection point across the early checkpoints: entry,
        // store boundary, and into the stage nodes. Every rerun's first
        // attempt is cancelled there and must retry to a byte-identical
        // final state.
        for boundary in [1u64, 2, 3, 5] {
            let report = run_race_case_with_cancel(7, 4, 8, boundary).unwrap();
            assert!(
                report.clean(),
                "boundary {boundary}: {:?}",
                report.mismatches
            );
        }
    }

    #[test]
    fn final_state_is_a_pure_function_of_revisions() {
        // The oracle itself must be deterministic: two cold runs over the
        // same revisions agree byte for byte.
        let a = cold_final(3, &[2, 0, 5]).unwrap();
        let b = cold_final(3, &[2, 0, 5]).unwrap();
        assert_eq!(a.lightweight_header, b.lightweight_header);
        assert_eq!(a.rewritten_sources, b.rewritten_sources);
    }
}
