//! Ready-to-run repro fixtures.
//!
//! A minimal diverging project is serialized to a single text file under
//! `tests/repros/` so it replays as a plain regression test: the loader
//! reconstructs the VFS and options, and the replay asserts the oracle
//! now agrees (fixtures document cases the engine must handle forever).

use std::fmt::Write as _;

use yalla_core::Options;
use yalla_cpp::vfs::Vfs;

use crate::grammar::{ProjectModel, LIB_HEADER, MAIN_SOURCE};
use crate::oracle::Sabotage;

/// A parsed repro fixture.
#[derive(Debug, Clone)]
pub struct Repro {
    /// Seed recorded when the repro was minimized (informational).
    pub seed: u64,
    /// Sabotage active when the divergence was found (informational —
    /// replays run without it).
    pub sabotage: String,
    /// Entry arguments for the machine run.
    pub entry_args: (i64, i64),
    /// Project files: `(path, text)`.
    pub files: Vec<(String, String)>,
}

impl Repro {
    /// Reconstructs the VFS and engine options for replay.
    pub fn project(&self) -> (Vfs, Options) {
        let mut vfs = Vfs::new();
        for (path, text) in &self.files {
            vfs.add_file(path, text.clone());
        }
        let options = Options {
            header: LIB_HEADER.to_string(),
            sources: vec![MAIN_SOURCE.to_string()],
            ..Options::default()
        };
        (vfs, options)
    }

    /// Non-blank line count over all project files.
    pub fn line_count(&self) -> usize {
        self.files
            .iter()
            .flat_map(|(_, t)| t.lines())
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

/// Serializes a minimal model into fixture text.
pub fn render_fixture(
    model: &ProjectModel,
    sabotage: Sabotage,
    entry_args: (i64, i64),
    note: &str,
) -> String {
    let (vfs, _) = model.render();
    let mut out = String::new();
    let _ = writeln!(out, "# yalla-fuzz repro");
    let _ = writeln!(out, "# seed: {}", model.seed);
    let _ = writeln!(out, "# sabotage: {sabotage:?}");
    let _ = writeln!(out, "# entry-args: {} {}", entry_args.0, entry_args.1);
    for line in note.lines() {
        let _ = writeln!(out, "# note: {line}");
    }
    for (_, file) in vfs.iter() {
        let _ = writeln!(out, "--- file: {}", file.path);
        out.push_str(&file.text);
        if !file.text.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Parses fixture text back into a [`Repro`].
///
/// # Errors
///
/// Returns a diagnostic when the fixture is malformed (no files, bad
/// metadata).
pub fn parse_fixture(text: &str) -> Result<Repro, String> {
    let mut repro = Repro {
        seed: 0,
        sabotage: "None".to_string(),
        entry_args: (3, 5),
        files: Vec::new(),
    };
    let mut current: Option<(String, String)> = None;
    for line in text.lines() {
        if let Some(path) = line.strip_prefix("--- file: ") {
            if let Some(done) = current.take() {
                repro.files.push(done);
            }
            current = Some((path.trim().to_string(), String::new()));
            continue;
        }
        if let Some((_, body)) = &mut current {
            body.push_str(line);
            body.push('\n');
            continue;
        }
        let Some(meta) = line.strip_prefix('#') else {
            continue;
        };
        let meta = meta.trim();
        if let Some(v) = meta.strip_prefix("seed:") {
            repro.seed = v.trim().parse().map_err(|e| format!("bad seed: {e}"))?;
        } else if let Some(v) = meta.strip_prefix("sabotage:") {
            repro.sabotage = v.trim().to_string();
        } else if let Some(v) = meta.strip_prefix("entry-args:") {
            let mut it = v.split_whitespace();
            let a = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("bad entry-args")?;
            let b = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("bad entry-args")?;
            repro.entry_args = (a, b);
        }
    }
    if let Some(done) = current.take() {
        repro.files.push(done);
    }
    if repro.files.is_empty() {
        return Err("fixture contains no files".to_string());
    }
    Ok(repro)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_round_trips() {
        let model = ProjectModel::generate(11);
        let text = render_fixture(&model, Sabotage::None, (3, 5), "round trip");
        let repro = parse_fixture(&text).unwrap();
        assert_eq!(repro.seed, 11);
        assert_eq!(repro.entry_args, (3, 5));
        let (vfs, _) = repro.project();
        let (orig_vfs, _) = model.render();
        for (_, f) in orig_vfs.iter() {
            let id = vfs.lookup(&f.path).expect("file survives round trip");
            assert_eq!(vfs.text(id), f.text, "{} changed", f.path);
        }
    }
}
