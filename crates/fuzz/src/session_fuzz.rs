//! Session-backed edit-stream fuzzing.
//!
//! This mode stresses the incremental layer's cache keys: it holds one
//! warm [`Session`] over a generated project, applies a random stream of
//! syntactically valid edits (new user statements, new library
//! functions, identical-content touches, driver edits outside the
//! engine's input set), and after every edit asserts that the warm
//! rerun's artifacts are byte-identical to a cold engine run over the
//! same file state. Any difference means a cache key failed to capture
//! an input.
//!
//! With a store dir attached, every step additionally simulates a
//! process restart: a *fresh* session (fresh [`Store`] handle, empty
//! memory caches) over the same file state reruns warm-from-disk and is
//! held to the same byte-identical oracle — fuzzing the on-disk cache
//! keys the same way the in-memory ones are fuzzed.

use std::path::Path;
use std::sync::Arc;

use yalla_core::{Engine, Session};
use yalla_corpus::gen::DetRng;
use yalla_store::Store;

use crate::grammar::{ProjectModel, UserStmt, DRIVER_SOURCE, LIB_HEADER, MAIN_SOURCE};

/// One warm-vs-cold mismatch.
#[derive(Debug, Clone)]
pub struct SessionMismatch {
    /// Edit number (1-based) after which the mismatch appeared.
    pub step: usize,
    /// What the edit was.
    pub edit: String,
    /// Which artifact differed.
    pub artifact: String,
}

/// Outcome of one session-fuzz case.
#[derive(Debug)]
pub struct SessionCaseReport {
    /// Edits applied.
    pub edits: usize,
    /// Description of every edit, in application order. Because the edit
    /// stream is a pure function of the case seed (see
    /// [`edit_stream_seed`]), replaying the same case seed must
    /// reproduce this log byte-for-byte — the replay-stability test
    /// holds it to that.
    pub edit_log: Vec<String>,
    /// Mismatches found (empty on success).
    pub mismatches: Vec<SessionMismatch>,
    /// Identical-content touches that still re-ran a stage (cache
    /// over-invalidation; informational, not a failure).
    pub touch_recomputes: usize,
}

/// The random edits the stream draws from.
#[derive(Debug, Clone, Copy)]
enum EditKind {
    AppendUserStmt,
    AppendLibFn,
    TouchMain,
    TouchDriver,
    TweakDriver,
}

/// Derives the edit-stream RNG seed from a case seed — a pure
/// splitmix64-style mix, so the stream is a function of the case seed
/// *alone*. Campaign position (`--iters`, `--session-every` cadence)
/// must never leak into it: a divergence replayed later, under a
/// different iteration budget, has to walk the exact same edits.
pub fn edit_stream_seed(case_seed: u64) -> u64 {
    let mut z = case_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs one session-fuzz case: `edits` random edits against the project
/// generated from `seed`, checking warm-vs-cold equivalence after each.
///
/// # Errors
///
/// Returns a diagnostic when the engine itself fails (which the
/// generator is expected to avoid).
pub fn run_session_case(seed: u64, edits: usize) -> Result<SessionCaseReport, String> {
    run_session_case_with_store(seed, edits, None)
}

/// Like [`run_session_case`], optionally backed by an on-disk store at
/// `store_dir`: after each edit's warm-vs-cold check, a fresh session
/// (simulating a restarted process that has only the cache dir) reruns
/// warm-from-disk and its artifacts are compared against the cold oracle
/// too. Disk mismatches are reported with a `disk:` artifact prefix.
///
/// # Errors
///
/// Returns a diagnostic when the engine fails or the store dir cannot be
/// opened.
pub fn run_session_case_with_store(
    seed: u64,
    edits: usize,
    store_dir: Option<&Path>,
) -> Result<SessionCaseReport, String> {
    let store = match store_dir {
        Some(dir) => {
            Some(Arc::new(Store::open(dir).map_err(|e| {
                format!("opening store {}: {e}", dir.display())
            })?))
        }
        None => None,
    };
    let mut model = ProjectModel::generate(seed);
    let (vfs, options) = model.render();
    let mut session = Session::with_store(options.clone(), vfs, store.clone());
    session.rerun().map_err(|e| format!("cold run: {e}"))?;

    let mut rng = DetRng::new(edit_stream_seed(seed));
    let mut report = SessionCaseReport {
        edits: 0,
        edit_log: Vec::new(),
        mismatches: Vec::new(),
        touch_recomputes: 0,
    };
    let mut extra_lib_fns = 0usize;

    for step in 1..=edits {
        let kind = match rng.next(5) {
            0 => EditKind::AppendUserStmt,
            1 => EditKind::AppendLibFn,
            2 => EditKind::TouchMain,
            3 => EditKind::TouchDriver,
            _ => EditKind::TweakDriver,
        };
        let description = apply_edit(&mut session, &mut model, kind, &mut rng, &mut extra_lib_fns)?;
        report.edits += 1;
        report.edit_log.push(description.clone());

        let warm = session.rerun().map_err(|e| format!("warm rerun: {e}"))?;
        if matches!(kind, EditKind::TouchMain | EditKind::TouchDriver) && !warm.fully_cached() {
            report.touch_recomputes += 1;
        }
        let cold = Engine::new(options.clone())
            .run(session.vfs())
            .map_err(|e| format!("cold comparison run: {e}"))?;

        let warm_r = &warm.result;
        if warm_r.lightweight_header != cold.lightweight_header {
            report.mismatches.push(SessionMismatch {
                step,
                edit: description.clone(),
                artifact: "lightweight_header".to_string(),
            });
        }
        if warm_r.wrappers_file != cold.wrappers_file {
            report.mismatches.push(SessionMismatch {
                step,
                edit: description.clone(),
                artifact: "wrappers_file".to_string(),
            });
        }
        if warm_r.rewritten_sources != cold.rewritten_sources {
            report.mismatches.push(SessionMismatch {
                step,
                edit: description.clone(),
                artifact: "rewritten_sources".to_string(),
            });
        }

        // Restart simulation: a fresh session with a fresh store handle
        // on the same dir — only the cache dir survives — must reproduce
        // the cold artifacts from disk.
        if let Some(dir) = store_dir {
            let restart_store = Arc::new(
                Store::open(dir).map_err(|e| format!("reopening store {}: {e}", dir.display()))?,
            );
            let restart =
                Session::with_store(options.clone(), session.vfs().clone(), Some(restart_store))
                    .rerun()
                    .map_err(|e| format!("disk-warm rerun: {e}"))?;
            let r = &restart.result;
            for (artifact, differs) in [
                (
                    "disk:lightweight_header",
                    r.lightweight_header != cold.lightweight_header,
                ),
                ("disk:wrappers_file", r.wrappers_file != cold.wrappers_file),
                (
                    "disk:rewritten_sources",
                    r.rewritten_sources != cold.rewritten_sources,
                ),
            ] {
                if differs {
                    report.mismatches.push(SessionMismatch {
                        step,
                        edit: description.clone(),
                        artifact: artifact.to_string(),
                    });
                }
            }
        }
    }
    Ok(report)
}

fn apply_edit(
    session: &mut Session,
    model: &mut ProjectModel,
    kind: EditKind,
    rng: &mut DetRng,
    extra_lib_fns: &mut usize,
) -> Result<String, String> {
    let text_of = |session: &Session, path: &str| -> Result<String, String> {
        let id = session
            .vfs()
            .lookup(path)
            .ok_or_else(|| format!("no `{path}` in session"))?;
        Ok(session.vfs().text(id).to_string())
    };
    match kind {
        EditKind::AppendUserStmt => {
            let f = rng.next(model.user_fns.len().max(1));
            let stmt = match rng.next(3) {
                0 => UserStmt::Probe(6_000 + rng.next(400) as i64),
                1 => UserStmt::Update {
                    n: 0,
                    op: '+',
                    expr: format!("{}", 1 + rng.next(30)),
                },
                _ => UserStmt::ProbeLocal(0),
            };
            // Keep the trailing probe/return shape: insert before the end.
            let fun = &mut model.user_fns[f];
            let at = fun.stmts.len().saturating_sub(1);
            fun.stmts.insert(at, stmt);
            let index = fun.index;
            session
                .apply_edit(MAIN_SOURCE, model.render_main())
                .map_err(|e| e.to_string())?;
            Ok(format!("append statement to u{index}"))
        }
        EditKind::AppendLibFn => {
            *extra_lib_fns += 1;
            model.free_fns.push(crate::grammar::FreeFnModel {
                name: format!("ffx{extra_lib_fns}"),
                k: 1 + rng.next(9) as i64,
            });
            session
                .apply_edit(LIB_HEADER, model.render_lib())
                .map_err(|e| e.to_string())?;
            Ok(format!("add library function ffx{extra_lib_fns}"))
        }
        EditKind::TouchMain => {
            let same = text_of(session, MAIN_SOURCE)?;
            session
                .apply_edit(MAIN_SOURCE, same)
                .map_err(|e| e.to_string())?;
            Ok("touch main.cpp".to_string())
        }
        EditKind::TouchDriver => {
            let same = text_of(session, DRIVER_SOURCE)?;
            session
                .apply_edit(DRIVER_SOURCE, same)
                .map_err(|e| e.to_string())?;
            Ok("touch driver.cpp".to_string())
        }
        EditKind::TweakDriver => {
            let mut text = text_of(session, DRIVER_SOURCE)?;
            text.push_str(&format!("// pad {}\n", rng.next(1_000_000)));
            session
                .apply_edit(DRIVER_SOURCE, text)
                .map_err(|e| e.to_string())?;
            Ok("append comment to driver.cpp".to_string())
        }
    }
}
