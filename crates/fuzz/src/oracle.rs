//! The differential execution oracle.
//!
//! A generated project is run twice on the same [`Machine`] natives:
//! once as written (the expensive header's inline bodies are
//! interpreted in the user's TU) and once post-substitution (rewritten
//! sources include the lightweight header; the wrappers TU is loaded as
//! its own translation unit, exactly like the bench harness loads
//! subjects). The observable trace — probe-callback sequence, entry
//! return value, and any [`ExecError`] — must be identical; virtual
//! cycle counts are deliberately *excluded* (the cycle difference is the
//! paper's intended effect, not a bug). The engine's own `verify` pass
//! must also report success.

use std::cell::RefCell;
use std::rc::Rc;

use yalla_core::{Engine, Options, SubstitutionResult};
use yalla_cpp::vfs::Vfs;
use yalla_sim::ir::{ExecConfig, Machine, Value};

use crate::grammar::{ProjectModel, DRIVER_SOURCE, ENTRY, MAIN_SOURCE};

/// Everything observable about one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecTrace {
    /// Values passed to `probe`, in call order.
    pub probes: Vec<i64>,
    /// The entry point's return value (when execution succeeded).
    pub ret: Option<i64>,
    /// Execution error message (when execution failed).
    pub error: Option<String>,
}

/// Why the oracle flagged a case.
#[derive(Debug, Clone)]
pub enum Divergence {
    /// The engine itself failed on a generated project.
    EngineError(String),
    /// The engine's verification pass rejected its own output.
    VerifyFailed(String),
    /// One side failed to parse/load on the machine.
    MachineError {
        /// Which side (`"original"` / `"substituted"`).
        side: &'static str,
        /// The machine-layer failure.
        message: String,
    },
    /// The two runs produced different observable traces.
    TraceMismatch {
        /// Original-run trace.
        original: ExecTrace,
        /// Substituted-run trace.
        substituted: ExecTrace,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::EngineError(e) => write!(f, "engine error: {e}"),
            Divergence::VerifyFailed(e) => write!(f, "verification failed: {e}"),
            Divergence::MachineError { side, message } => {
                write!(f, "machine error ({side}): {message}")
            }
            Divergence::TraceMismatch {
                original,
                substituted,
            } => write!(
                f,
                "trace mismatch:\n  original:    {original:?}\n  substituted: {substituted:?}"
            ),
        }
    }
}

/// Outcome of one differential case.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// Both runs agreed.
    Agree(ExecTrace),
    /// The runs disagreed (or the pipeline failed).
    Diverged(Box<Divergence>),
}

impl CaseOutcome {
    /// True when the case diverged.
    pub fn is_divergence(&self) -> bool {
        matches!(self, CaseOutcome::Diverged(_))
    }
}

/// A deliberately wrong rewrite rule, injectable for testing the oracle
/// and the shrinker (the ISSUE's "known-bad rewrite" hook). Applied to
/// the rewritten main source *after* the engine runs, standing in for a
/// transformer bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// No sabotage: the engine's real output runs.
    #[default]
    None,
    /// Offsets the argument of the first `probe(` call in the rewritten
    /// main source — a minimal stand-in for a miscompiled call argument.
    ProbeOffset,
    /// Deletes the first `return` statement's expression, replacing it
    /// with `0` — a stand-in for a dropped rewrite.
    ZeroReturn,
}

impl Sabotage {
    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Sabotage::None),
            "probe-offset" => Some(Sabotage::ProbeOffset),
            "zero-return" => Some(Sabotage::ZeroReturn),
            _ => None,
        }
    }

    /// Applies the bad rewrite to rewritten source text.
    pub fn apply(self, text: &str) -> String {
        match self {
            Sabotage::None => text.to_string(),
            Sabotage::ProbeOffset => match text.find("probe(") {
                Some(i) => {
                    let mut out = String::with_capacity(text.len() + 4);
                    out.push_str(&text[..i + "probe(".len()]);
                    out.push_str("1 + ");
                    out.push_str(&text[i + "probe(".len()..]);
                    out
                }
                None => text.to_string(),
            },
            Sabotage::ZeroReturn => match text.find("return ") {
                Some(i) => {
                    let end = text[i..].find(';').map(|e| i + e).unwrap_or(text.len());
                    let mut out = String::with_capacity(text.len());
                    out.push_str(&text[..i]);
                    out.push_str("return 0");
                    out.push_str(&text[end..]);
                    out
                }
                None => text.to_string(),
            },
        }
    }
}

/// Runs one full differential case for `model`.
pub fn run_case(model: &ProjectModel, sabotage: Sabotage, entry_args: (i64, i64)) -> CaseOutcome {
    let (vfs, options) = model.render();
    run_case_on(&vfs, &options, sabotage, entry_args)
}

/// Runs one differential case on an already-rendered project — also the
/// replay path for checked-in repro fixtures.
pub fn run_case_on(
    vfs: &Vfs,
    options: &Options,
    sabotage: Sabotage,
    entry_args: (i64, i64),
) -> CaseOutcome {
    let result = match Engine::new(options.clone()).run(vfs) {
        Ok(r) => r,
        Err(e) => return CaseOutcome::Diverged(Box::new(Divergence::EngineError(e.to_string()))),
    };
    if options.verify && !result.report.verification.passed() {
        return CaseOutcome::Diverged(Box::new(Divergence::VerifyFailed(format!(
            "sources_parse={} wrappers_parse={} violations={:?}",
            result.report.verification.sources_parse,
            result.report.verification.wrappers_parse,
            result.report.verification.violations
        ))));
    }

    let original = match execute(vfs, None, entry_args) {
        Ok(t) => t,
        Err(message) => {
            return CaseOutcome::Diverged(Box::new(Divergence::MachineError {
                side: "original",
                message,
            }))
        }
    };

    let mut sub_vfs = vfs.clone();
    result.install_into(&mut sub_vfs, options);
    if sabotage != Sabotage::None {
        if let Some(text) = result.rewritten_sources.get(MAIN_SOURCE) {
            sub_vfs.add_file(MAIN_SOURCE, sabotage.apply(text));
        }
    }
    let substituted = match execute(&sub_vfs, Some(&options.wrappers_name), entry_args) {
        Ok(t) => t,
        Err(message) => {
            return CaseOutcome::Diverged(Box::new(Divergence::MachineError {
                side: "substituted",
                message,
            }))
        }
    };

    if original == substituted {
        CaseOutcome::Agree(original)
    } else {
        CaseOutcome::Diverged(Box::new(Divergence::TraceMismatch {
            original,
            substituted,
        }))
    }
}

/// Executes one side on the machine and captures its observable trace.
///
/// TU layout mirrors the bench harness: TU 0 is the (possibly rewritten)
/// user source, TU 1 the wrappers file (substituted side only), TU 2 the
/// driver. Unlike the harness, the library header is *not* stubbed —
/// its inline bodies are interpreted, which is what makes the original
/// and substituted runs comparable value-for-value.
fn execute(
    vfs: &Vfs,
    wrappers_name: Option<&str>,
    entry_args: (i64, i64),
) -> Result<ExecTrace, String> {
    let parse = |path: &str| -> Result<yalla_cpp::ast::TranslationUnit, String> {
        let fe = yalla_cpp::Frontend::new(vfs.clone());
        fe.parse_translation_unit(path)
            .map(|tu| tu.ast)
            .map_err(|e| format!("machine parse of {path}: {e}"))
    };

    let mut machine = Machine::new(ExecConfig::default());
    machine.load_tu(&parse(MAIN_SOURCE)?, 0);
    if let Some(w) = wrappers_name {
        machine.load_tu(&parse(w)?, 1);
    }
    machine.load_tu(&parse(DRIVER_SOURCE)?, 2);

    let trace: Rc<RefCell<Vec<i64>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = trace.clone();
    machine.register_native("probe", move |_m, args| {
        let v = args.first().and_then(Value::as_i64).unwrap_or(0);
        sink.borrow_mut().push(v);
        Ok(Value::Int(v))
    });

    machine.reset_counters();
    let outcome = machine.call(
        ENTRY,
        vec![Value::Int(entry_args.0), Value::Int(entry_args.1)],
        2,
    );
    let probes = trace.borrow().clone();
    Ok(match outcome {
        Ok(v) => ExecTrace {
            probes,
            ret: Some(v.as_i64().unwrap_or(0)),
            error: None,
        },
        Err(e) => ExecTrace {
            probes,
            ret: None,
            error: Some(e.message),
        },
    })
}

/// Re-runs only the engine for `model`, returning the substitution
/// artifacts (used by tests and the repro writer).
pub fn substitution_for(model: &ProjectModel) -> Result<SubstitutionResult, String> {
    let (vfs, options) = model.render();
    Engine::new(options).run(&vfs).map_err(|e| e.to_string())
}
