//! Criterion micro-benchmarks of the C++ frontend substrate: lexing,
//! preprocessing, and parsing throughput on generated library code.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use yalla_cpp::lex::lex_str;
use yalla_cpp::parse::parse_tokens;
use yalla_cpp::pp::preprocess;
use yalla_cpp::vfs::Vfs;

fn sample_source(functions: usize) -> String {
    let mut s = String::new();
    s.push_str("namespace lib {\n");
    for i in 0..functions {
        s.push_str(&format!(
            "template <typename T{i}>\ninline T{i} fn_{i}(T{i} v, int k) {{\n  int acc = k + {i};\n  acc = acc * 3 + 1;\n  return v;\n}}\n"
        ));
        if i % 3 == 0 {
            s.push_str(&format!(
                "class Cls_{i} {{\npublic:\n  Cls_{i}();\n  int method(int a, double b) const;\n  int size_;\n}};\n"
            ));
        }
    }
    s.push_str("}\n");
    s
}

fn bench_lexer(c: &mut Criterion) {
    let src = sample_source(500);
    let mut group = c.benchmark_group("frontend");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("lex", |b| b.iter(|| lex_str(&src).expect("lexes")));
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let src = sample_source(500);
    let tokens = lex_str(&src).expect("lexes");
    let mut group = c.benchmark_group("frontend");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| parse_tokens(tokens.clone()).expect("parses"))
    });
    group.finish();
}

fn bench_preprocess(c: &mut Criterion) {
    // A 40-header include tree with guards and macros.
    let mut vfs = Vfs::new();
    let mut umbrella = String::from("#pragma once\n#define LIB_VERSION 30100\n");
    for i in 0..40 {
        let path = format!("lib/h{i}.hpp");
        let body = format!(
            "#ifndef H{i}_GUARD\n#define H{i}_GUARD\n#define H{i}_VALUE {i}\n{}\n#endif\n",
            sample_source(12)
        );
        vfs.add_file(&path, body);
        umbrella.push_str(&format!("#include <{path}>\n"));
    }
    vfs.add_file("lib.hpp", umbrella);
    vfs.add_file(
        "main.cpp",
        "#include <lib.hpp>\n#if LIB_VERSION >= 30000\nint ok;\n#endif\nint main() { return H3_VALUE; }\n",
    );
    c.bench_function("frontend/preprocess_40_headers", |b| {
        b.iter(|| preprocess(&vfs, "main.cpp").expect("preprocesses"))
    });
}

criterion_group!(benches, bench_lexer, bench_parse, bench_preprocess);
criterion_main!(benches);
