//! Criterion micro-benchmarks of the Header Substitution engine itself
//! (the cost the paper reports as "tool time" in Figure 10 — here measured
//! for real on this implementation, not simulated).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use yalla_core::{Engine, Options};
use yalla_cpp::vfs::Vfs;

/// The paper's Figure 3 example with a mid-sized synthetic header.
fn figure3_vfs(filler_fns: usize) -> Vfs {
    let mut vfs = Vfs::new();
    let mut header = String::from("#pragma once\nnamespace Kokkos {\nnamespace Impl {\n");
    header.push_str(
        "struct TeamThreadRangeBoundariesStruct { int lo; int hi; };\n\
         template<class P> class HostThreadTeamMember { public: int league_rank() const; };\n",
    );
    for i in 0..filler_fns {
        header.push_str(&format!(
            "template <typename T> inline T detail_{i}(T v) {{ return v; }}\n"
        ));
    }
    header.push_str(
        "}\nclass OpenMP;\nclass LayoutRight {};\n\
         template<class D, class L> class View { public: View(); int& operator()(int i, int j); };\n\
         template<class S> class TeamPolicy { public: using member_type = Impl::HostThreadTeamMember<S>; };\n\
         template<class M> Impl::TeamThreadRangeBoundariesStruct TeamThreadRange(M& m, int n);\n\
         template<class R, class F> void parallel_for(R range, F functor);\n}\n",
    );
    vfs.add_file("Kokkos_Core.hpp", header);
    vfs.add_file(
        "functor.hpp",
        "#pragma once\n#include <Kokkos_Core.hpp>\n\
         using sp_t = Kokkos::OpenMP;\n\
         using member_t = Kokkos::TeamPolicy<sp_t>::member_type;\n\
         struct add_y { int y; Kokkos::View<int**, Kokkos::LayoutRight> x; void operator()(member_t &m); };\n",
    );
    vfs.add_file(
        "kernel.cpp",
        "#include \"functor.hpp\"\n\
         void add_y::operator()(member_t &m) {\n\
           int j = m.league_rank();\n\
           Kokkos::parallel_for(Kokkos::TeamThreadRange(m, 5), [&](int i) { x(j, i) += y; });\n\
         }\n",
    );
    vfs
}

fn options() -> Options {
    Options {
        header: "Kokkos_Core.hpp".into(),
        sources: vec!["kernel.cpp".into(), "functor.hpp".into()],
        ..Options::default()
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for filler in [100usize, 1_000, 5_000] {
        let vfs = figure3_vfs(filler);
        group.bench_function(format!("substitute_header_{filler}_filler_fns"), |b| {
            b.iter_batched(
                || vfs.clone(),
                |vfs| Engine::new(options()).run(&vfs).expect("engine runs"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_engine_no_verify(c: &mut Criterion) {
    let vfs = figure3_vfs(1_000);
    let mut opts = options();
    opts.verify = false;
    c.bench_function("engine/substitute_header_no_verify", |b| {
        b.iter_batched(
            || vfs.clone(),
            |vfs| Engine::new(opts.clone()).run(&vfs).expect("engine runs"),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_engine, bench_engine_no_verify);
criterion_main!(benches);
