//! The shared evaluation harness: everything the table/figure binaries
//! need for one subject, computed once.
//!
//! For each subject the harness produces the three build configurations
//! the paper compares (default, PCH, YALLA), the Table 3 statistics, the
//! Figure 10 one-off costs, and — where the subject has a kernel — the
//! dynamic cycle counts that give Figure 8 its run times.

use yalla_core::{Engine, Options, SubstitutionResult};
use yalla_corpus::{runtime, KernelSpec, Subject};
use yalla_cpp::vfs::Vfs;
use yalla_sim::build::{build_pch, compile_default, compile_using_pch, CompiledTu};
use yalla_sim::ir::{ExecConfig, Machine, Value};
use yalla_sim::link::ObjectFile;
use yalla_sim::pch::PchFile;
use yalla_sim::phases::PhaseBreakdown;
use yalla_sim::{BuildConfig, CompilerProfile, DevCycleSim};

/// YALLA's own analysis+generation cost per line of the original TU
/// (virtual µs). Calibrated so the Kokkos subjects' tool run lands near
/// the paper's Figure 10 (~1.5 s): the tool re-parses the whole TU and
/// runs its analysis, costing a few times a compiler frontend pass.
pub const TOOL_PER_LINE_US: f64 = 13.0;

/// Everything measured for one subject.
#[derive(Debug)]
pub struct SubjectEvaluation {
    /// Subject name (Table 2 "File").
    pub name: &'static str,
    /// Suite name (Table 2 "Subject").
    pub suite: &'static str,
    /// Default compile of the user TU.
    pub default: CompiledTu,
    /// Compile using the PCH.
    pub pch: CompiledTu,
    /// The PCH itself (build cost, size).
    pub pch_file: PchFile,
    /// Compile of the substituted user TU.
    pub yalla: CompiledTu,
    /// Compile of the generated wrappers TU (one-off, Figure 6 step ③).
    pub wrappers: CompiledTu,
    /// Virtual tool time (Figure 10 "yalla" bar).
    pub tool_ms: f64,
    /// The engine's substitution result (plan, report, artifacts).
    pub substitution: SubstitutionResult,
    /// Dynamic cycles of one kernel run under the default build.
    pub run_cycles_default: Option<u64>,
    /// Dynamic cycles of one kernel run under the YALLA build.
    pub run_cycles_yalla: Option<u64>,
}

impl SubjectEvaluation {
    /// Table 2: speedup of YALLA over default.
    pub fn yalla_speedup(&self) -> f64 {
        self.default.phases.total_ms() / self.yalla.phases.total_ms()
    }

    /// Table 2: speedup of PCH over default.
    pub fn pch_speedup(&self) -> f64 {
        self.default.phases.total_ms() / self.pch.phases.total_ms()
    }

    /// Figure 8: one dev-cycle iteration per configuration
    /// (default, PCH, YALLA — in that order).
    pub fn dev_cycles(&self, profile: &CompilerProfile) -> Vec<yalla_sim::CycleReport> {
        let sim = DevCycleSim::new(*profile);
        let run_default = self.run_cycles_default.unwrap_or(0);
        let run_yalla = self.run_cycles_yalla.unwrap_or(run_default);
        vec![
            sim.cycle(
                BuildConfig::Default,
                &self.default.phases,
                &[self.default.object],
                run_default,
                0.0,
            ),
            sim.cycle(
                BuildConfig::Pch,
                &self.pch.phases,
                &[self.pch.object],
                run_default,
                self.pch_file.build.total_ms(),
            ),
            sim.cycle(
                BuildConfig::Yalla,
                &self.yalla.phases,
                &[self.yalla.object, self.wrappers.object],
                run_yalla,
                self.tool_ms + self.wrappers.phases.total_ms(),
            ),
        ]
    }
}

/// Runs the whole harness for one subject.
///
/// # Errors
///
/// Returns a string diagnostic when any stage fails (frontend error,
/// engine error, failed verification, kernel execution error).
pub fn evaluate_subject(
    subject: &Subject,
    profile: &CompilerProfile,
) -> Result<SubjectEvaluation, String> {
    // --- default ---------------------------------------------------------
    let default = compile_default(&subject.vfs, &subject.main_source, profile, &[])
        .map_err(|e| format!("{}: default compile: {e}", subject.name))?;

    // --- PCH ----------------------------------------------------------------
    let pch_refs: Vec<&str> = subject.pch_headers.iter().map(|s| s.as_str()).collect();
    let pch_file = build_pch(&subject.vfs, &pch_refs, profile, &[])
        .map_err(|e| format!("{}: pch build: {e}", subject.name))?;
    let pch = compile_using_pch(&subject.vfs, &subject.main_source, &pch_file, profile, &[])
        .map_err(|e| format!("{}: pch compile: {e}", subject.name))?;

    // --- YALLA ----------------------------------------------------------------
    let options = Options {
        header: subject.header.clone(),
        sources: subject.sources.clone(),
        ..Options::default()
    };
    let substitution = Engine::new(options.clone())
        .run(&subject.vfs)
        .map_err(|e| format!("{}: engine: {e}", subject.name))?;
    if !substitution.report.verification.passed() {
        return Err(format!(
            "{}: verification failed: parse={} wrappers={} violations={:?}",
            subject.name,
            substitution.report.verification.sources_parse,
            substitution.report.verification.wrappers_parse,
            substitution.report.verification.violations
        ));
    }
    let mut sub_vfs = subject.vfs.clone();
    substitution.install_into(&mut sub_vfs, &options);
    let yalla = compile_default(&sub_vfs, &subject.main_source, profile, &[])
        .map_err(|e| format!("{}: yalla compile: {e}", subject.name))?;
    let wrappers = compile_default(&sub_vfs, &options.wrappers_name, profile, &[])
        .map_err(|e| format!("{}: wrappers compile: {e}", subject.name))?;
    let tool_ms = default.work.lines as f64 * TOOL_PER_LINE_US / 1000.0;

    // --- kernel runs --------------------------------------------------------
    let (run_cycles_default, run_cycles_yalla) = match &subject.kernel {
        Some(spec) => {
            let d = run_kernel(subject, spec, None)
                .map_err(|e| format!("{}: default run: {e}", subject.name))?;
            let y = run_kernel(subject, spec, Some((&substitution, &options)))
                .map_err(|e| format!("{}: yalla run: {e}", subject.name))?;
            (Some(d), Some(y))
        }
        None => (None, None),
    };

    Ok(SubjectEvaluation {
        name: subject.name,
        suite: subject.suite.name(),
        default,
        pch,
        pch_file,
        yalla,
        wrappers,
        tool_ms,
        substitution,
        run_cycles_default,
        run_cycles_yalla,
    })
}

/// Executes a subject's kernel on the abstract machine, under the default
/// build (artifacts `None`) or the YALLA build.
///
/// Library headers are stubbed out for the machine (their behaviour comes
/// from natives), so only the user's code — original or rewritten — is
/// interpreted.
///
/// # Errors
///
/// Returns a diagnostic on parse or execution failure.
pub fn run_kernel(
    subject: &Subject,
    spec: &KernelSpec,
    artifacts: Option<(&SubstitutionResult, &Options)>,
) -> Result<u64, String> {
    run_kernel_full(subject, spec, artifacts).map(|(cycles, _)| cycles)
}

/// Like [`run_kernel`] but also returns the kernel's result value — used
/// to check that the substituted program computes the *same answer* as
/// the original (the paper's "runs correctly" guarantee).
///
/// # Errors
///
/// Returns a diagnostic on parse or execution failure.
pub fn run_kernel_full(
    subject: &Subject,
    spec: &KernelSpec,
    artifacts: Option<(&SubstitutionResult, &Options)>,
) -> Result<(u64, i64), String> {
    run_kernel_cfg(subject, spec, artifacts, ExecConfig::default())
}

/// Like [`run_kernel_full`] with an explicit machine configuration (used
/// by the LTO ablation: `ExecConfig { lto: true, .. }` removes the
/// cross-TU call penalty, modeling link-time inlining).
///
/// # Errors
///
/// Returns a diagnostic on parse or execution failure.
pub fn run_kernel_cfg(
    subject: &Subject,
    spec: &KernelSpec,
    artifacts: Option<(&SubstitutionResult, &Options)>,
    config: ExecConfig,
) -> Result<(u64, i64), String> {
    // Build the machine's file tree: stub everything except user files.
    let mut keep: Vec<String> = subject.sources.clone();
    keep.push("driver.cpp".to_string());
    let mut mvfs = Vfs::new();
    for (_, file) in subject.vfs.iter() {
        if keep.contains(&file.path) {
            mvfs.add_file(&file.path, file.text.clone());
        } else {
            mvfs.add_file(&file.path, "#pragma once\n");
        }
    }
    let mut wrappers_name = None;
    if let Some((result, options)) = artifacts {
        for (path, text) in &result.rewritten_sources {
            mvfs.add_file(path, text.clone());
        }
        mvfs.add_file(&options.lightweight_name, result.lightweight_header.clone());
        mvfs.add_file(&options.wrappers_name, result.wrappers_file.clone());
        wrappers_name = Some(options.wrappers_name.clone());
    }

    let parse = |path: &str| -> Result<yalla_cpp::ast::TranslationUnit, String> {
        let fe = yalla_cpp::Frontend::new(mvfs.clone());
        fe.parse_translation_unit(path)
            .map(|tu| tu.ast)
            .map_err(|e| format!("machine parse of {path}: {e}"))
    };

    let mut machine = Machine::new(config);
    // TU 0: the user's (possibly rewritten) kernel TU.
    machine.load_tu(&parse(&subject.main_source)?, 0);
    // TU 1: the wrappers TU (YALLA only).
    if let Some(w) = &wrappers_name {
        machine.load_tu(&parse(w)?, 1);
    }
    // TU 2: the driver (never rewritten).
    machine.load_tu(&parse("driver.cpp")?, 2);
    runtime::install(&mut machine, spec.runtime);

    let args: Vec<Value> = spec.args.iter().map(|v| Value::Int(*v)).collect();
    machine.reset_counters();
    let result = machine
        .call(&spec.entry, args, 2)
        .map_err(|e| format!("kernel `{}`: {e}", spec.entry))?;
    Ok((
        machine.cycles * spec.repeat as u64,
        result.as_i64().unwrap_or(0),
    ))
}

/// Evaluates every subject in parallel (order preserved). Failures are
/// reported per subject rather than aborting the sweep.
pub fn evaluate_all(profile: &CompilerProfile) -> Vec<Result<SubjectEvaluation, String>> {
    let subjects = yalla_corpus::all_subjects();
    let mut results: Vec<Option<Result<SubjectEvaluation, String>>> =
        (0..subjects.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for subject in &subjects {
            let profile = *profile;
            handles.push(scope.spawn(move || evaluate_subject(subject, &profile)));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(
                handle
                    .join()
                    .unwrap_or_else(|_| Err("evaluation thread panicked".to_string())),
            );
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("slot filled"))
        .collect()
}

/// Builds the two-object link list for a yalla build (used by figures).
pub fn yalla_objects(eval: &SubjectEvaluation) -> [ObjectFile; 2] {
    [eval.yalla.object, eval.wrappers.object]
}

/// Pretty-prints a phase breakdown in the Figure 7 style.
pub fn phase_row(label: &str, p: &PhaseBreakdown) -> String {
    format!(
        "{label:<10} frontend {:>8.1} ms   backend {:>8.1} ms   total {:>8.1} ms",
        p.frontend_ms(),
        p.backend_ms(),
        p.total_ms()
    )
}
