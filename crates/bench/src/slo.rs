//! Latency SLOs: parse `slo.toml` and check measured P99s against it.
//!
//! The checked-in `slo.toml` pins one P99 bound (µs) per request class:
//!
//! ```toml
//! [slo.rerun]
//! p99_us = 250000
//! ```
//!
//! The `latency` bench loads it with [`Slo::load`] and fails its run —
//! and therefore CI — when any measured class P99 exceeds its bound.
//! The parser is a deliberate TOML subset (tables, integer keys, `#`
//! comments) so the workspace stays dependency-free; anything outside
//! the subset is a hard error rather than a silent skip.

use std::collections::BTreeMap;
use std::path::Path;

/// P99 bounds per request class, in microseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Slo {
    bounds: BTreeMap<String, u64>,
}

/// One measured quantile that broke its bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Request class (`open`, `edit`, `rerun`, ...).
    pub class: String,
    /// Configuration label the measurement came from.
    pub config: String,
    /// Measured P99 (µs).
    pub p99_us: u64,
    /// The bound it exceeded (µs).
    pub bound_us: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SLO violation: {} P99 {} us > {} us bound ({})",
            self.class, self.p99_us, self.bound_us, self.config
        )
    }
}

impl Slo {
    /// Parses the `slo.toml` subset: `[slo.<class>]` tables each holding
    /// `p99_us = <integer>`, with `#` comments and blank lines.
    ///
    /// # Errors
    ///
    /// Returns a `line: message` string for anything outside the subset —
    /// unknown tables, unknown keys, non-integer values, duplicates.
    pub fn parse(text: &str) -> Result<Slo, String> {
        let mut bounds = BTreeMap::new();
        let mut class: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let err = |msg: String| format!("slo.toml:{}: {msg}", lineno + 1);
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = header
                    .strip_prefix("slo.")
                    .ok_or_else(|| err(format!("expected [slo.<class>], got [{header}]")))?;
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(err(format!("bad class name `{name}`")));
                }
                if bounds.contains_key(name) {
                    return Err(err(format!("duplicate table [slo.{name}]")));
                }
                class = Some(name.to_string());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(format!("expected `key = value`, got `{line}`")))?;
            if key.trim() != "p99_us" {
                return Err(err(format!("unknown key `{}`", key.trim())));
            }
            let class = class
                .as_ref()
                .ok_or_else(|| err("p99_us outside any [slo.<class>] table".to_string()))?;
            let us: u64 = value
                .trim()
                .parse()
                .map_err(|e| err(format!("bad p99_us `{}`: {e}", value.trim())))?;
            if bounds.insert(class.clone(), us).is_some() {
                return Err(err(format!("duplicate p99_us for class `{class}`")));
            }
        }
        Ok(Slo { bounds })
    }

    /// Reads and parses an SLO file.
    ///
    /// # Errors
    ///
    /// Propagates read failures and [`Slo::parse`] errors as strings.
    pub fn load(path: &Path) -> Result<Slo, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Slo::parse(&text)
    }

    /// The bound for one class, if pinned.
    pub fn bound_us(&self, class: &str) -> Option<u64> {
        self.bounds.get(class).copied()
    }

    /// Number of pinned classes.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True when no class is pinned.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Checks measured `(class, config, p99_us)` triples; returns every
    /// violation. Classes without a pinned bound pass — the SLO file
    /// states what is enforced, not what is measured.
    pub fn check(&self, measured: &[(String, String, u64)]) -> Vec<Violation> {
        let mut violations = Vec::new();
        for (class, config, p99_us) in measured {
            if let Some(bound_us) = self.bound_us(class) {
                if *p99_us > bound_us {
                    violations.push(Violation {
                        class: class.clone(),
                        config: config.clone(),
                        p99_us: *p99_us,
                        bound_us,
                    });
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# latency SLOs (microseconds)
[slo.open]
p99_us = 2000000
[slo.rerun]
p99_us = 500000  # includes the cold first rerun
";

    #[test]
    fn parses_the_subset() {
        let slo = Slo::parse(SAMPLE).unwrap();
        assert_eq!(slo.len(), 2);
        assert_eq!(slo.bound_us("open"), Some(2_000_000));
        assert_eq!(slo.bound_us("rerun"), Some(500_000));
        assert_eq!(slo.bound_us("edit"), None);
    }

    #[test]
    fn rejects_out_of_subset_input() {
        for (text, needle) in [
            ("[latency.open]\np99_us = 1", "expected [slo.<class>]"),
            ("[slo.open]\np50_us = 1", "unknown key"),
            ("p99_us = 1", "outside any"),
            ("[slo.open]\np99_us = fast", "bad p99_us"),
            (
                "[slo.open]\np99_us = 1\n[slo.open]\np99_us = 2",
                "duplicate",
            ),
        ] {
            let err = Slo::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn check_passes_within_bounds_and_ignores_unpinned_classes() {
        let slo = Slo::parse(SAMPLE).unwrap();
        let measured = vec![
            ("open".to_string(), "clients1".to_string(), 1_999_999),
            ("rerun".to_string(), "clients8".to_string(), 500_000),
            ("edit".to_string(), "clients8".to_string(), u64::MAX),
        ];
        assert!(slo.check(&measured).is_empty());
    }

    /// The deliberate-regression drill: the same measurements that pass
    /// the checked-in bounds must fail once a bound is flipped below the
    /// measured P99 — proving the gate actually gates.
    #[test]
    fn flipping_a_bound_below_measurement_fails_the_check() {
        let measured = vec![("rerun".to_string(), "clients8".to_string(), 400_000)];
        let honest = Slo::parse(SAMPLE).unwrap();
        assert!(honest.check(&measured).is_empty(), "sanity: within bounds");

        let flipped = Slo::parse(&SAMPLE.replace("p99_us = 500000", "p99_us = 399999")).unwrap();
        let violations = flipped.check(&measured);
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(
            (v.class.as_str(), v.p99_us, v.bound_us),
            ("rerun", 400_000, 399_999)
        );
        assert!(v
            .to_string()
            .contains("SLO violation: rerun P99 400000 us > 399999 us"));
    }
}
