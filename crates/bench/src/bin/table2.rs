//! Regenerates **Table 2** of the paper: compilation time with the
//! default, PCH, and YALLA configurations plus the speedups, for all 18
//! subjects; prints the per-suite and overall averages quoted in §5.3.
//!
//! Usage: `table2 [--compiler clang|gcc] [--csv <path>]`

use std::collections::BTreeMap;

use yalla_bench::harness::evaluate_all;
use yalla_bench::results::{records_for, write_records};
use yalla_sim::CompilerProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = match args.iter().position(|a| a == "--compiler") {
        Some(i) if args.get(i + 1).map(String::as_str) == Some("gcc") => CompilerProfile::gcc(),
        _ => CompilerProfile::clang(),
    };
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());

    println!(
        "Table 2: compilation time with {} and speedup using YALLA and PCH",
        profile.kind.name()
    );
    println!(
        "{:<24} {:<12} {:>12} {:>10} {:>11} {:>12} {:>14}",
        "File", "Subject", "Default [ms]", "PCH [ms]", "Yalla [ms]", "PCH Speedup", "Yalla Speedup"
    );

    let mut csv =
        String::from("file,subject,default_ms,pch_ms,yalla_ms,pch_speedup,yalla_speedup\n");
    let mut by_suite: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
    let mut all: Vec<(f64, f64)> = Vec::new();
    let mut records = Vec::new();

    for eval in evaluate_all(&profile) {
        let eval = match eval {
            Ok(e) => e,
            Err(e) => {
                eprintln!("SKIP {e}");
                continue;
            }
        };
        records.extend(records_for(&eval));
        let d = eval.default.phases.total_ms();
        let p = eval.pch.phases.total_ms();
        let y = eval.yalla.phases.total_ms();
        println!(
            "{:<24} {:<12} {:>12.0} {:>10.0} {:>11.0} {:>11.1}x {:>13.1}x",
            eval.name,
            eval.suite,
            d,
            p,
            y,
            eval.pch_speedup(),
            eval.yalla_speedup()
        );
        csv.push_str(&format!(
            "{},{},{:.1},{:.1},{:.1},{:.2},{:.2}\n",
            eval.name,
            eval.suite,
            d,
            p,
            y,
            eval.pch_speedup(),
            eval.yalla_speedup()
        ));
        by_suite
            .entry(eval.suite)
            .or_default()
            .push((eval.pch_speedup(), eval.yalla_speedup()));
        all.push((eval.pch_speedup(), eval.yalla_speedup()));
    }

    let avg = |v: &[(f64, f64)]| {
        let n = v.len().max(1) as f64;
        (
            v.iter().map(|x| x.0).sum::<f64>() / n,
            v.iter().map(|x| x.1).sum::<f64>() / n,
        )
    };
    println!();
    for (suite, vals) in &by_suite {
        let (p, y) = avg(vals);
        println!("{suite:<14} average: PCH {p:.1}x, YALLA {y:.1}x");
    }
    let (p, y) = avg(&all);
    println!(
        "Overall average ({}): PCH {p:.1}x, YALLA {y:.1}x   (paper, clang: PCH 2.8x, YALLA 24.5x; gcc: 2.7x / 31.4x)",
        profile.kind.name()
    );

    if let Some(path) = csv_path {
        std::fs::write(&path, csv).expect("write csv");
        println!("wrote {path}");
    }
    match write_records(std::path::Path::new("results"), "table2", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
