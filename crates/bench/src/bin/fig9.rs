//! Regenerates **Figure 9** of the paper: the `02` kernel as compiled by
//! the default configuration (library calls inlined into direct memory
//! accesses) versus after YALLA (cross-TU `callq` to `paren_operator`
//! that the compiler cannot inline).

use yalla_core::{Engine, Options};
use yalla_corpus::subject_by_name;
use yalla_cpp::vfs::Vfs;
use yalla_sim::ir::{ExecConfig, Machine};

fn build_machine(subject: &yalla_corpus::Subject, yalla: bool) -> (Machine, String) {
    let options = Options {
        header: subject.header.clone(),
        sources: subject.sources.clone(),
        ..Options::default()
    };
    // Stub the library tree (as the kernel-run harness does).
    let keep: Vec<String> = subject.sources.clone();
    let mut mvfs = Vfs::new();
    for (_, file) in subject.vfs.iter() {
        if keep.contains(&file.path) || file.path == "driver.cpp" {
            mvfs.add_file(&file.path, file.text.clone());
        } else {
            mvfs.add_file(&file.path, "#pragma once\n");
        }
    }
    let mut functor_class = String::from("o2_functor::operator()");
    if yalla {
        let result = Engine::new(options.clone())
            .run(&subject.vfs)
            .expect("engine runs on 02");
        for (path, text) in &result.rewritten_sources {
            mvfs.add_file(path, text.clone());
        }
        mvfs.add_file(&options.lightweight_name, result.lightweight_header.clone());
        mvfs.add_file(&options.wrappers_name, result.wrappers_file.clone());
        if let Some(f) = result.plan.functors.first() {
            functor_class = format!("{}::operator()", f.name);
        }
    }
    let mut machine = Machine::new(ExecConfig::default());
    let parse = |path: &str| {
        yalla_cpp::Frontend::new(mvfs.clone())
            .parse_translation_unit(path)
            .map(|t| t.ast)
            .expect("machine parse")
    };
    machine.load_tu(&parse(&subject.main_source), 0);
    if yalla {
        machine.load_tu(&parse("yalla_wrappers.cpp"), 1);
    }
    (machine, functor_class)
}

fn main() {
    let subject = subject_by_name("02").expect("02 subject");
    println!("Figure 9: the 02 PyKokkos kernel before and after YALLA\n");

    println!("--- (a) C++ kernel (original) ---");
    let kernel_id = subject.vfs.lookup("kernel.cpp").expect("kernel.cpp");
    println!("{}", subject.vfs.text(kernel_id));

    println!("--- (b) pseudo-assembly, default build (accesses inlined) ---");
    let (default_machine, _) = build_machine(&subject, false);
    let asm = default_machine
        .disassemble("o2_functor::operator()", 0)
        .expect("kernel disassembles");
    println!("{asm}");

    println!("--- (c) pseudo-assembly, YALLA build (cross-TU calls survive) ---");
    let (yalla_machine, functor) = build_machine(&subject, true);
    let kernel_asm = yalla_machine
        .disassemble("o2_functor::operator()", 0)
        .expect("rewritten kernel disassembles");
    println!("; kernel body:");
    println!("{kernel_asm}");
    let functor_asm = yalla_machine
        .disassemble(&functor, 0)
        .expect("functor disassembles");
    println!("; generated functor ({functor}):");
    println!("{functor_asm}");

    let inlined = !asm.contains("callq");
    let calls_survive =
        functor_asm.contains("callq <paren_operator>") || kernel_asm.contains("callq");
    println!(
        "default build inlines all accesses: {}",
        if inlined { "yes" } else { "NO" }
    );
    println!(
        "yalla build leaves wrapper calls: {}",
        if calls_survive { "yes" } else { "NO" }
    );
}
