//! Quick end-to-end smoke run over a few subjects (development aid).

use yalla_bench::harness::evaluate_subject;
use yalla_corpus::try_subject_by_name;
use yalla_sim::CompilerProfile;

fn main() {
    let profile = CompilerProfile::clang();
    for name in std::env::args().skip(1) {
        let subject = match try_subject_by_name(&name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("smoke: {e}");
                std::process::exit(2);
            }
        };
        match evaluate_subject(&subject, &profile) {
            Ok(eval) => {
                println!(
                    "{:<24} default {:>8.1} ms  pch {:>8.1} ms ({:>5.1}x)  yalla {:>8.1} ms ({:>5.1}x)  loc {} -> {}  run {:?} -> {:?}",
                    eval.name,
                    eval.default.phases.total_ms(),
                    eval.pch.phases.total_ms(),
                    eval.pch_speedup(),
                    eval.yalla.phases.total_ms(),
                    eval.yalla_speedup(),
                    eval.default.work.lines,
                    eval.yalla.work.lines,
                    eval.run_cycles_default,
                    eval.run_cycles_yalla,
                );
                for d in &eval.substitution.plan.diagnostics {
                    println!("    note: {}", d.message);
                }
            }
            Err(e) => println!("{name}: FAILED: {e}"),
        }
    }
}
