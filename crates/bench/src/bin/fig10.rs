//! Regenerates **Figure 10** of the paper: the first-time compilation of
//! the `02` subject with and without YALLA — the one-off startup cost of
//! running the tool and compiling the wrappers file (§5.5).
//!
//! The tool bar is decomposed from the engine's *measured* span data
//! (`SubstitutionResult::timings`, recorded by `yalla-obs` spans around
//! each Figure-5 phase), scaled to the virtual tool time so the phase
//! shares are real even though the magnitude is simulated.
//!
//! Also writes `results/BENCH_fig10.json` with every per-run record.

use yalla_bench::harness::evaluate_subject;
use yalla_bench::results::{records_for, write_records};
use yalla_corpus::subject_by_name;
use yalla_sim::CompilerProfile;

fn bar(ms: f64) -> String {
    "#".repeat(((ms / 25.0).round() as usize).max(1))
}

fn main() {
    let profile = CompilerProfile::clang();
    let subject = subject_by_name("02").expect("02 subject");
    let eval = evaluate_subject(&subject, &profile).expect("02 evaluates");

    println!("Figure 10: first-time compilation of 02 (one bar char = 25 ms)\n");
    let default_total = eval.default.phases.total_ms();
    println!("default:");
    println!(
        "  main compile {:>8.0} ms |{}",
        default_total,
        bar(default_total)
    );
    println!("  total        {default_total:>8.0} ms\n");

    let main = eval.yalla.phases.total_ms();
    let tool = eval.tool_ms;
    let wrappers = eval.wrappers.phases.total_ms();
    let total = main + tool + wrappers;
    println!("yalla (first compile):");
    println!("  tool run     {tool:>8.0} ms |{}", bar(tool));

    // Split the tool bar by the engine's span-measured phase durations.
    let t = &eval.substitution.timings;
    let phases = [
        ("parse", t.parse),
        ("analyze", t.analyze),
        ("plan", t.plan),
        ("generate", t.generate),
        ("verify", t.verify),
    ];
    let measured_total = t.total().as_secs_f64().max(1e-12);
    for (name, dur) in phases {
        let share = dur.as_secs_f64() / measured_total;
        println!(
            "    {name:<10} {:>6.0} ms ({:>4.1}% of measured {:.2} ms tool run)",
            tool * share,
            100.0 * share,
            measured_total * 1000.0
        );
    }

    println!("  wrappers     {wrappers:>8.0} ms |{}", bar(wrappers));
    println!("  main compile {main:>8.0} ms |{}", bar(main));
    println!("  total        {total:>8.0} ms\n");

    println!(
        "extra one-off cost: {:.1} s (paper: ~2 s, ~1.5 s tool + ~0.5 s wrappers)",
        (total - default_total + (default_total - main)) / 1000.0
    );
    println!(
        "steady-state iterations afterwards compile only {main:.0} ms instead of {default_total:.0} ms"
    );

    let records = records_for(&eval);
    match write_records(std::path::Path::new("results"), "fig10", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
