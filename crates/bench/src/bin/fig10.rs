//! Regenerates **Figure 10** of the paper: the first-time compilation of
//! the `02` subject with and without YALLA — the one-off startup cost of
//! running the tool and compiling the wrappers file (§5.5).

use yalla_bench::harness::evaluate_subject;
use yalla_corpus::subject_by_name;
use yalla_sim::CompilerProfile;

fn bar(ms: f64) -> String {
    "#".repeat(((ms / 25.0).round() as usize).max(1))
}

fn main() {
    let profile = CompilerProfile::clang();
    let subject = subject_by_name("02").expect("02 subject");
    let eval = evaluate_subject(&subject, &profile).expect("02 evaluates");

    println!("Figure 10: first-time compilation of 02 (one bar char = 25 ms)\n");
    let default_total = eval.default.phases.total_ms();
    println!("default:");
    println!(
        "  main compile {:>8.0} ms |{}",
        default_total,
        bar(default_total)
    );
    println!("  total        {default_total:>8.0} ms\n");

    let main = eval.yalla.phases.total_ms();
    let tool = eval.tool_ms;
    let wrappers = eval.wrappers.phases.total_ms();
    let total = main + tool + wrappers;
    println!("yalla (first compile):");
    println!("  tool run     {tool:>8.0} ms |{}", bar(tool));
    println!("  wrappers     {wrappers:>8.0} ms |{}", bar(wrappers));
    println!("  main compile {main:>8.0} ms |{}", bar(main));
    println!("  total        {total:>8.0} ms\n");

    println!(
        "extra one-off cost: {:.1} s (paper: ~2 s, ~1.5 s tool + ~0.5 s wrappers)",
        (total - default_total + (default_total - main)) / 1000.0
    );
    println!(
        "steady-state iterations afterwards compile only {main:.0} ms instead of {default_total:.0} ms"
    );
}
