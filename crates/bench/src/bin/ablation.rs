//! Ablation study — the design choices DESIGN.md calls out, plus the
//! paper's §6 extensions implemented in this reproduction:
//!
//! 1. **Multi-header substitution** ("apply Header Substitution to entire
//!    projects"): substitute *every* library header an OpenCV subject
//!    includes, not just `core.hpp`.
//! 2. **YALLA + PCH combination** ("the two techniques can be used
//!    simultaneously"): substitute the core header *and* precompile the
//!    remaining module headers.
//! 3. **LTO** (§5.4): recover the run-time loss at link-time cost.

use yalla_bench::harness::{evaluate_subject, run_kernel_cfg};
use yalla_core::substitute_headers;
use yalla_corpus::subject_by_name;
use yalla_sim::build::{build_pch, compile_default, compile_using_pch};
use yalla_sim::devcycle::CYCLES_PER_MS;
use yalla_sim::ir::ExecConfig;
use yalla_sim::link::link_ms;
use yalla_sim::CompilerProfile;

fn main() {
    let profile = CompilerProfile::clang();

    // ---------------------------------------------------------------
    println!("== Ablation 1: single- vs multi-header substitution (laplace) ==\n");
    let subject = subject_by_name("laplace").expect("laplace exists");
    let default = compile_default(&subject.vfs, &subject.main_source, &profile, &[])
        .expect("default compiles");
    println!(
        "default                         {:>8.1} ms   ({} lines)",
        default.phases.total_ms(),
        default.work.lines
    );

    // Single header (what Table 2 does).
    let eval = evaluate_subject(&subject, &profile).expect("laplace evaluates");
    println!(
        "yalla (core.hpp only)           {:>8.1} ms   ({} lines kept)  {:.1}x",
        eval.yalla.phases.total_ms(),
        eval.yalla.work.lines,
        eval.yalla_speedup()
    );

    // Multi-header: substitute every library header the subject includes.
    let headers: Vec<String> = vec![
        "opencv2/core.hpp".into(),
        "opencv2/imgproc.hpp".into(),
        "opencv2/highgui.hpp".into(),
    ];
    let multi = substitute_headers(&subject.vfs, &headers, &subject.sources)
        .expect("multi-substitution runs");
    let mut multi_vfs = subject.vfs.clone();
    multi.install_into(&mut multi_vfs);
    let multi_compile = compile_default(&multi_vfs, &subject.main_source, &profile, &[])
        .expect("multi-substituted TU compiles");
    println!(
        "yalla (all {} opencv headers)    {:>8.1} ms   ({} lines kept)  {:.1}x",
        multi.steps.len(),
        multi_compile.phases.total_ms(),
        multi_compile.work.lines,
        default.phases.total_ms() / multi_compile.phases.total_ms()
    );
    for (h, step) in &multi.steps {
        assert!(step.report.verification.passed(), "{h} failed verification");
    }
    println!(
        "  (every step verified; wrappers files: {})\n",
        multi.steps.len()
    );

    // ---------------------------------------------------------------
    println!("== Ablation 2: YALLA + PCH combined (laplace) ==\n");
    // PCH alone (covers all modules, Table 2 configuration).
    println!(
        "pch alone                       {:>8.1} ms",
        eval.pch.phases.total_ms()
    );
    // YALLA for core + PCH for what remains.
    let mut sub_vfs = subject.vfs.clone();
    let options = yalla_core::Options {
        header: subject.header.clone(),
        sources: subject.sources.clone(),
        ..yalla_core::Options::default()
    };
    eval.substitution.install_into(&mut sub_vfs, &options);
    let remaining = ["opencv2/imgproc.hpp", "opencv2/highgui.hpp"];
    let pch = build_pch(&sub_vfs, &remaining, &profile, &[]).expect("pch builds");
    let combined = compile_using_pch(&sub_vfs, &subject.main_source, &pch, &profile, &[])
        .expect("combined compiles");
    println!(
        "yalla(core) + pch(rest)         {:>8.1} ms   -> {:.1}x over default",
        combined.phases.total_ms(),
        default.phases.total_ms() / combined.phases.total_ms()
    );
    println!(
        "  (yalla alone {:.1}x, pch alone {:.1}x — the combination wins, §6's conjecture)\n",
        eval.yalla_speedup(),
        eval.pch_speedup()
    );

    // ---------------------------------------------------------------
    println!("== Ablation 3: LTO on the YALLA build (02, §5.4) ==\n");
    let subject = subject_by_name("02").expect("02 exists");
    let eval = evaluate_subject(&subject, &profile).expect("02 evaluates");
    let spec = subject.kernel.clone().expect("02 has a kernel");
    let run_default = eval.run_cycles_default.unwrap() as f64 / CYCLES_PER_MS;
    let run_yalla = eval.run_cycles_yalla.unwrap() as f64 / CYCLES_PER_MS;
    // LTO run: same machine, no cross-TU penalty.
    let options = yalla_core::Options {
        header: subject.header.clone(),
        sources: subject.sources.clone(),
        ..yalla_core::Options::default()
    };
    // The YALLA build re-run with cross-TU inlining (what LTO recovers).
    let (lto_cycles, _) = run_kernel_cfg(
        &subject,
        &spec,
        Some((&eval.substitution, &options)),
        ExecConfig {
            lto: true,
            ..ExecConfig::default()
        },
    )
    .expect("lto run");
    let lto_cycles = lto_cycles as f64 / CYCLES_PER_MS;
    let objects = [eval.yalla.object, eval.wrappers.object];
    let plain_link = link_ms(&profile, &objects, false);
    let lto_link = link_ms(&profile, &objects, true);
    println!("run time   default {run_default:>7.1} ms | yalla {run_yalla:>7.1} ms | yalla+lto {lto_cycles:>7.1} ms");
    println!("link time  plain   {plain_link:>7.1} ms | lto   {lto_link:>7.1} ms");
    let iter_yalla = eval.yalla.phases.total_ms() + plain_link + run_yalla;
    let iter_lto = eval.yalla.phases.total_ms() + lto_link + lto_cycles;
    println!(
        "iteration  yalla   {iter_yalla:>7.1} ms | yalla+lto {iter_lto:>7.1} ms   (paper §5.4: LTO not worth it: {})",
        if iter_lto > iter_yalla { "confirmed" } else { "NOT confirmed" }
    );
}
