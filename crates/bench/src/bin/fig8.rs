//! Regenerates **Figure 8** of the paper: end-to-end development-cycle
//! speedup (compile + link + run) of YALLA and PCH over the default
//! configuration, per subject.

use yalla_bench::harness::evaluate_all;
use yalla_sim::CompilerProfile;

fn bar(x: f64) -> String {
    let n = (x * 4.0).round().clamp(0.0, 60.0) as usize;
    "#".repeat(n.max(1))
}

fn main() {
    let profile = CompilerProfile::clang();
    println!("Figure 8: development-cycle speedup over default (compile + link + run)");
    println!(
        "{:<24} {:>9} {:>9}   (bars: 1 char = 0.25x)",
        "File", "PCH", "Yalla"
    );
    let mut speedups = Vec::new();
    for eval in evaluate_all(&profile) {
        let eval = match eval {
            Ok(e) => e,
            Err(e) => {
                eprintln!("SKIP {e}");
                continue;
            }
        };
        let cycles = eval.dev_cycles(&profile);
        let default = &cycles[0];
        let pch = cycles[1].speedup_over(default);
        let yalla = cycles[2].speedup_over(default);
        println!("{:<24} {:>8.2}x {:>8.2}x", eval.name, pch, yalla);
        println!("{:<24} pch   |{}", "", bar(pch));
        println!("{:<24} yalla |{}", "", bar(yalla));
        println!(
            "{:<24}       (default itr {:.0} ms = {:.0} compile + {:.0} link + {:.0} run; yalla itr {:.0} ms, run {:.0} ms)",
            "",
            default.iteration_ms(),
            default.compile_ms,
            default.link_ms,
            default.run_ms,
            cycles[2].iteration_ms(),
            cycles[2].run_ms,
        );
        speedups.push(yalla);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    println!("\nYALLA average development-cycle speedup: {avg:.2}x   (paper: 4.68x)");
}
