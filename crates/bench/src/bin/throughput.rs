//! Daemon throughput under concurrent clients (`yalla serve`).
//!
//! Drives one `yalla serve` daemon over its real Unix socket with K
//! synthetic clients, each iterating the paper's development cycle over
//! its share of the 18 corpus subjects: open the project, one cold
//! rerun (the full pipeline), then steady-state edit→rerun iterations —
//! edits that leave the substitution inputs unchanged, the paper's §6
//! common case, so the warm session revalidates in milliseconds. Every
//! rerun carries the subject's *modeled build latency* — the simulator's
//! default-configuration compile time for that TU, injected as a real
//! sleep inside the rerun task — so an iteration costs what it costs the
//! developer: the tool run plus the client-blocking compile.
//!
//! Two configurations run back to back, cold each time (fresh daemon,
//! fresh shards, same request scripts, same injected latencies):
//!
//! * **sequential** — 1 client, 1 executor worker: every build serializes,
//!   the classic one-developer-at-a-time baseline;
//! * **parallel8** — 8 clients, 8 executor workers: reruns overlap, the
//!   executor schedules them across workers.
//!
//! The report compares measured wall-clock against the list-scheduling
//! model ([`yalla_sim::concurrent_makespan`]) over the per-subject
//! modeled costs. Writes `results/BENCH_throughput.json`.

#[cfg(not(unix))]
fn main() {
    eprintln!("the throughput bench drives a Unix-socket daemon; unix only");
}

#[cfg(unix)]
fn main() {
    imp::main();
}

#[cfg(unix)]
mod imp {
    use std::os::unix::net::UnixStream;
    use std::path::{Path, PathBuf};
    use std::time::Instant;

    use yalla_bench::results::{write_records, RunRecord};
    use yalla_core::serve::{client_request, Server};
    use yalla_corpus::{all_subjects, Subject};
    use yalla_exec::Executor;
    use yalla_obs::chrome::escape_json;
    use yalla_obs::json::JsonValue;
    use yalla_sim::build::compile_default;
    use yalla_sim::{concurrent_makespan, CompilerProfile};

    /// Edit→rerun iterations per subject (the first is the cold one).
    /// High enough that the steady-state iterations — whose cost is the
    /// modeled compile, not the tool — dominate the one-time cold run,
    /// as they do across a development session (§6).
    const ITERATIONS: usize = 10;
    /// Clients (and workers) in the parallel configuration.
    const FLEET: usize = 8;

    struct Workload {
        subject: &'static str,
        open: String,
        rerun: String,
        /// The edited main-source text of each iteration.
        edits: Vec<String>,
        /// Injected per-rerun build latency (µs).
        latency_us: f64,
    }

    fn workload(subject: &Subject, latency_ms: f64) -> Workload {
        let latency_us = latency_ms * 1_000.0;
        let mut files = Vec::new();
        for (id, _) in subject.vfs.iter() {
            files.push(format!(
                "\"{}\": \"{}\"",
                escape_json(subject.vfs.path(id)),
                escape_json(subject.vfs.text(id))
            ));
        }
        let sources: Vec<String> = subject.sources.iter().map(|s| format!("\"{s}\"")).collect();
        let open = format!(
            "{{\"op\": \"open\", \"project\": \"{}\", \"header\": \"{}\", \
             \"sources\": [{}], \"files\": {{{}}}, \"build_latency_us\": {latency_us}}}",
            subject.name,
            escape_json(&subject.header),
            sources.join(", "),
            files.join(", ")
        );
        let main_id = subject
            .vfs
            .lookup(&subject.main_source)
            .unwrap_or_else(|| panic!("{}: no main source", subject.name));
        // Steady-state edits: the file is rewritten with unchanged
        // content (the stand-in for an edit that does not alter the
        // substitution inputs — §6's common case), so the warm rerun
        // revalidates its caches instead of recomputing, and the
        // injected compile latency dominates the iteration exactly as
        // the real compile dominates the developer's.
        let main_text = subject.vfs.text(main_id).to_string();
        let edits = (1..=ITERATIONS)
            .map(|_| {
                format!(
                    "{{\"op\": \"edit\", \"project\": \"{}\", \"path\": \"{}\", \"text\": \"{}\"}}",
                    subject.name,
                    escape_json(&subject.main_source),
                    escape_json(&main_text)
                )
            })
            .collect();
        Workload {
            subject: subject.name,
            open,
            rerun: format!("{{\"op\": \"rerun\", \"project\": \"{}\"}}", subject.name),
            edits,
            latency_us,
        }
    }

    /// Runs one client's script over its share of the corpus; returns
    /// each subject's wall-clock (open + all iterations), in µs, plus
    /// how many of its reruns recomputed a stage (all but the cold one
    /// should be fully cached — the steady-state premise).
    fn run_client(socket: &Path, group: &[Workload]) -> Vec<(String, f64, usize)> {
        let verbose = std::env::var("THROUGHPUT_TRACE").is_ok();
        let mut stream = connect(socket);
        let mut walls = Vec::with_capacity(group.len());
        for w in group {
            let start = Instant::now();
            let mut recomputed = 0usize;
            for request in std::iter::once(&w.open)
                .chain((0..ITERATIONS).flat_map(|i| [&w.edits[i], &w.rerun]))
            {
                let req_start = Instant::now();
                let r = client_request(&mut stream, request)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.subject));
                if verbose {
                    let op = &request[9..request[9..].find('"').map_or(6, |i| i + 9)];
                    println!(
                        "    {} {op}: {:.1} ms",
                        w.subject,
                        req_start.elapsed().as_secs_f64() * 1e3
                    );
                }
                assert!(
                    r.get("ok") == Some(&JsonValue::Bool(true)),
                    "{}: rejected: {r:?}",
                    w.subject
                );
                if r.get("fully_cached") == Some(&JsonValue::Bool(false)) {
                    recomputed += 1;
                }
            }
            walls.push((
                w.subject.to_string(),
                start.elapsed().as_secs_f64() * 1e6,
                recomputed,
            ));
        }
        walls
    }

    /// (utime, stime) of this process in seconds, from `/proc/self/stat`
    /// (0.0 on platforms without procfs) — separates real compute from
    /// kernel-side scheduling overhead in the pass reports.
    fn cpu_times() -> (f64, f64) {
        let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
            return (0.0, 0.0);
        };
        // Fields 14/15 (1-based), counted after the parenthesized comm.
        let Some(rest) = stat.rsplit(") ").next() else {
            return (0.0, 0.0);
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let tick = 100.0; // USER_HZ on every Linux this runs on
        let get = |i: usize| {
            fields
                .get(i)
                .and_then(|f| f.parse::<f64>().ok())
                .unwrap_or(0.0)
        };
        (get(11) / tick, get(12) / tick)
    }

    fn connect(path: &Path) -> UnixStream {
        for _ in 0..200 {
            if let Ok(s) = UnixStream::connect(path) {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("could not connect to {}", path.display());
    }

    /// One full cold corpus pass: fresh daemon, `workers` executor
    /// workers, one client thread per group. Returns (total wall µs,
    /// per-subject µs sorted by name).
    fn run_config(
        tag: &str,
        workers: usize,
        groups: Vec<Vec<Workload>>,
    ) -> (f64, Vec<(String, f64, usize)>) {
        let socket = std::env::temp_dir().join(format!(
            "yalla-throughput-{tag}-{}.sock",
            std::process::id()
        ));
        let server = Server::start(&socket, Executor::new(workers)).expect("start daemon");
        let (user0, sys0) = cpu_times();
        let start = Instant::now();
        let mut handles = Vec::new();
        for group in groups {
            let socket = socket.clone();
            handles.push(std::thread::spawn(move || run_client(&socket, &group)));
        }
        let mut walls = Vec::new();
        for handle in handles {
            walls.extend(handle.join().expect("client thread"));
        }
        let total_us = start.elapsed().as_secs_f64() * 1e6;
        let (user1, sys1) = cpu_times();
        let recomputed: usize = walls.iter().map(|w| w.2).sum();
        println!(
            "  {tag}: wall {:.2} s, user {:.2} s, sys {:.2} s, {recomputed} rerun(s) recomputed a stage",
            total_us / 1e6,
            user1 - user0,
            sys1 - sys0
        );
        let mut stream = connect(&socket);
        let _ = client_request(&mut stream, "{\"op\": \"shutdown\"}");
        server.join();
        walls.sort_by(|a, b| a.0.cmp(&b.0));
        (total_us, walls)
    }

    fn build_workloads() -> Vec<Workload> {
        let profile = CompilerProfile::clang();
        let mut loads: Vec<Workload> = all_subjects()
            .iter()
            .map(|s| {
                let compiled = compile_default(&s.vfs, &s.main_source, &profile, &[])
                    .unwrap_or_else(|e| panic!("{}: sim compile: {e}", s.name));
                workload(s, compiled.phases.total_ms())
            })
            .collect();
        // Heaviest first, so the greedy group assignment below balances.
        loads.sort_by(|a, b| b.latency_us.total_cmp(&a.latency_us));
        loads
    }

    /// Greedy balance into `n` groups by modeled chain cost.
    fn split(loads: Vec<Workload>, n: usize) -> Vec<Vec<Workload>> {
        let mut groups: Vec<(f64, Vec<Workload>)> = (0..n).map(|_| (0.0, Vec::new())).collect();
        for load in loads {
            let lightest = groups
                .iter_mut()
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("n > 0");
            lightest.0 += load.latency_us * ITERATIONS as f64;
            lightest.1.push(load);
        }
        groups.into_iter().map(|(_, g)| g).collect()
    }

    pub(super) fn main() {
        let loads = build_workloads();
        let modeled: Vec<f64> = loads
            .iter()
            .map(|w| w.latency_us * ITERATIONS as f64 / 1e3)
            .collect();

        println!("sequential pass (1 client, 1 worker)...");
        let (seq_total, seq_walls) = run_config("seq", 1, vec![build_workloads()]);
        println!("parallel pass ({FLEET} clients, {FLEET} workers)...");
        let (par_total, par_walls) = run_config("par", FLEET, split(loads, FLEET));

        let speedup = seq_total / par_total;
        let modeled_speedup = modeled.iter().sum::<f64>() / concurrent_makespan(&modeled, FLEET);
        println!(
            "modeled sleep total {:.2} s (chains of {} iterations)",
            modeled.iter().sum::<f64>() / 1e3,
            ITERATIONS
        );
        println!(
            "\n{:<24} {:>14} {:>14} {:>10}",
            "subject", "seq (ms)", "par8 (ms)", "recomputed"
        );
        let mut records = Vec::new();
        for ((name, seq_us, seq_rec), (par_name, par_us, par_rec)) in
            seq_walls.iter().zip(&par_walls)
        {
            assert_eq!(name, par_name);
            println!(
                "{name:<24} {:>14.1} {:>14.1} {:>6}/{:<3}",
                seq_us / 1e3,
                par_us / 1e3,
                seq_rec,
                par_rec
            );
            for (config, us) in [("sequential", seq_us), ("parallel8", par_us)] {
                records.push(RunRecord {
                    subject: name.clone(),
                    config: config.to_string(),
                    phase_us: vec![("wall".to_string(), *us)],
                });
            }
        }
        println!(
            "\ncorpus total: sequential {:.2} s, parallel8 {:.2} s — speedup {speedup:.2}x \
             (sleep-only list-scheduling model: {modeled_speedup:.2}x)",
            seq_total / 1e6,
            par_total / 1e6
        );
        records.push(RunRecord {
            subject: "corpus".to_string(),
            config: "sequential".to_string(),
            phase_us: vec![("wall".to_string(), seq_total)],
        });
        records.push(RunRecord {
            subject: "corpus".to_string(),
            config: "parallel8".to_string(),
            phase_us: vec![
                ("wall".to_string(), par_total),
                ("speedup_x1000".to_string(), speedup * 1e3),
                ("modeled_speedup_x1000".to_string(), modeled_speedup * 1e3),
            ],
        });

        let out = write_records(&PathBuf::from("results"), "throughput", &records)
            .expect("write results");
        println!("wrote {}", out.display());
        assert!(
            speedup >= 3.0,
            "parallel daemon must beat the sequential baseline by >= 3x, got {speedup:.2}x"
        );
    }
}
