//! Measures the persistent on-disk store across a real process boundary.
//!
//! The disk tier's whole point is that warmth survives the process: a
//! `yalla` invocation (or a restarted daemon) that has *only* the cache
//! dir must skip recomputation. Holding both runs in one process would
//! let the in-memory caches leak into the measurement, so this bench
//! re-executes itself:
//!
//! * the parent spawns `current_exe() --child <dir>` — a fresh process
//!   that runs every corpus subject with the store attached, populating
//!   the (initially empty) cache dir from nothing;
//! * it then spawns the same child again — another fresh process whose
//!   only shared state with the first is the cache dir — and requires
//!   every subject to come back fully cached with zero files reparsed;
//! * each child prints one tab-separated line per subject (wall µs,
//!   cached flag, reparse count); the parent checks the contract,
//!   prints the speedup table, and writes `results/BENCH_store.json`
//!   with `store-cold` / `store-warm` records.
//!
//! The parent also measures the **on-disk footprint** of each subject's
//! run bundle: the binary module encoding (what the store persists,
//! DESIGN.md §13) against the line-oriented text rendering
//! (`yalla dump --format=text`) as the size baseline. The binary form
//! must be smaller for every subject; `store-bytes` records carry both
//! numbers (in bytes, despite the field name's µs convention —
//! `config` disambiguates).

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use yalla_bench::results::{write_records, RunRecord};
use yalla_core::persist::{encode_run, render_text};
use yalla_core::{Engine, Options, Session};
use yalla_corpus::all_subjects;
use yalla_store::Store;

/// One subject's measurement as reported by a child process.
struct Measured {
    subject: String,
    wall_us: f64,
    fully_cached: bool,
    files_reparsed: usize,
}

fn child(dir: &Path) -> Result<(), String> {
    let store = Arc::new(Store::open(dir).map_err(|e| format!("open {}: {e}", dir.display()))?);
    for subject in all_subjects() {
        let options = Options {
            header: subject.header.clone(),
            sources: subject.sources.clone(),
            ..Options::default()
        };
        let mut session =
            Session::with_store(options, subject.vfs.clone(), Some(Arc::clone(&store)));
        let start = Instant::now();
        let run = session
            .rerun()
            .map_err(|e| format!("{}: {e}", subject.name))?;
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        println!(
            "{}\t{wall_us:.1}\t{}\t{}",
            subject.name,
            run.fully_cached(),
            run.files_reparsed
        );
    }
    Ok(())
}

fn spawn_child(dir: &Path) -> Result<Vec<Measured>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let out = std::process::Command::new(exe)
        .arg("--child")
        .arg(dir)
        .output()
        .map_err(|e| format!("spawning child: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "child failed ({}): {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut measured = Vec::new();
    for line in stdout.lines() {
        let mut cols = line.split('\t');
        let parse = || format!("bad child line: {line:?}");
        measured.push(Measured {
            subject: cols.next().ok_or_else(parse)?.to_string(),
            wall_us: cols.next().and_then(|v| v.parse().ok()).ok_or_else(parse)?,
            fully_cached: cols.next().and_then(|v| v.parse().ok()).ok_or_else(parse)?,
            files_reparsed: cols.next().and_then(|v| v.parse().ok()).ok_or_else(parse)?,
        });
    }
    Ok(measured)
}

fn parent() -> Result<usize, String> {
    let dir = std::env::temp_dir().join(format!("yalla-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = spawn_child(&dir)?;
    let warm = spawn_child(&dir)?;
    let _ = std::fs::remove_dir_all(&dir);
    if cold.len() != warm.len() || cold.is_empty() {
        return Err(format!(
            "child runs disagree: {} cold vs {} warm subjects",
            cold.len(),
            warm.len()
        ));
    }

    let mut failures = 0usize;
    let mut records = Vec::new();
    println!(
        "{:<10} {:>14} {:>14}  disk-warm speedup",
        "subject", "cold (µs)", "disk-warm (µs)"
    );
    for (c, w) in cold.iter().zip(&warm) {
        if c.subject != w.subject {
            return Err(format!(
                "subject order differs: {} vs {}",
                c.subject, w.subject
            ));
        }
        if !w.fully_cached || w.files_reparsed != 0 {
            eprintln!(
                "{}: fresh process was not disk-warm (cached={}, reparsed={})",
                w.subject, w.fully_cached, w.files_reparsed
            );
            failures += 1;
        }
        if c.fully_cached {
            eprintln!("{}: cold run hit a cache in a fresh dir", c.subject);
            failures += 1;
        }
        println!(
            "{:<10} {:>14.0} {:>14.0}  {:>6.1}x",
            c.subject,
            c.wall_us,
            w.wall_us,
            c.wall_us / w.wall_us.max(1.0)
        );
        records.push(RunRecord {
            subject: c.subject.clone(),
            config: "store-cold".to_string(),
            phase_us: vec![("wall".to_string(), c.wall_us)],
        });
        records.push(RunRecord {
            subject: w.subject.clone(),
            config: "store-warm".to_string(),
            phase_us: vec![("wall".to_string(), w.wall_us)],
        });
    }

    // Size pass: one in-process engine run per subject, encoded both
    // ways. The binary module format must beat the text rendering on
    // every subject, or the compactness claim regressed.
    println!();
    println!(
        "{:<10} {:>12} {:>12}  binary/text",
        "subject", "binary (B)", "text (B)"
    );
    for subject in all_subjects() {
        let options = Options {
            header: subject.header.clone(),
            sources: subject.sources.clone(),
            ..Options::default()
        };
        let result = match Engine::new(options).run(&subject.vfs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: size pass engine run: {e}", subject.name);
                failures += 1;
                continue;
            }
        };
        let Some(binary) = encode_run(&result) else {
            eprintln!("{}: run bundle not persistable", subject.name);
            failures += 1;
            continue;
        };
        let text = render_text(&result);
        if binary.len() >= text.len() {
            eprintln!(
                "{}: binary bundle ({} B) is not smaller than the text rendering ({} B)",
                subject.name,
                binary.len(),
                text.len()
            );
            failures += 1;
        }
        println!(
            "{:<10} {:>12} {:>12}  {:>10.2}",
            subject.name,
            binary.len(),
            text.len(),
            binary.len() as f64 / text.len() as f64
        );
        records.push(RunRecord {
            subject: subject.name.to_string(),
            config: "store-bytes".to_string(),
            phase_us: vec![
                ("binary_bytes".to_string(), binary.len() as f64),
                ("text_bytes".to_string(), text.len() as f64),
            ],
        });
    }

    match write_records(Path::new("results"), "store", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write results: {e}");
            failures += 1;
        }
    }
    Ok(failures)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--child") {
        let dir = args.get(2).expect("--child takes the cache dir");
        if let Err(e) = child(Path::new(dir)) {
            eprintln!("store bench child: {e}");
            std::process::exit(1);
        }
        return;
    }
    match parent() {
        Ok(0) => {}
        Ok(failures) => {
            eprintln!("{failures} failure(s)");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("store bench: {e}");
            std::process::exit(1);
        }
    }
}
