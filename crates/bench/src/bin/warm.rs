//! Measures cold vs. warm incremental-session reruns across the corpus.
//!
//! For every evaluation subject the bench holds one [`Session`] and times:
//!
//! * **tool-cold** — the first `rerun()` (every stage misses; this is what
//!   a one-shot `Engine::run` costs),
//! * **tool-warm** — an immediate no-op `rerun()` (every stage hits; the
//!   cost of revalidating the content hashes),
//! * **tool-warm-edit** — a `rerun()` after appending a trailing comment
//!   to the main source (one TU re-parses, but the used-symbol set is
//!   unchanged so plan/emit stay cached — the paper's §6 steady state).
//!
//! Each record's phases are the engine's span-measured [`Timings`] (zero
//! for cached stages) plus a `wall` entry with the end-to-end rerun time.
//! Writes `results/BENCH_warm.json`.

use std::time::Instant;

use yalla_bench::results::{write_records, RunRecord};
use yalla_core::{Options, Session, SessionRun, Timings, YallaError};
use yalla_corpus::all_subjects;

fn record(subject: &str, config: &str, timings: &Timings, wall_us: f64) -> RunRecord {
    RunRecord {
        subject: subject.to_string(),
        config: config.to_string(),
        phase_us: vec![
            ("parse".to_string(), timings.parse.as_secs_f64() * 1e6),
            ("analyze".to_string(), timings.analyze.as_secs_f64() * 1e6),
            ("plan".to_string(), timings.plan.as_secs_f64() * 1e6),
            ("generate".to_string(), timings.generate.as_secs_f64() * 1e6),
            ("verify".to_string(), timings.verify.as_secs_f64() * 1e6),
            ("wall".to_string(), wall_us),
        ],
    }
}

fn timed(session: &mut Session) -> Result<(SessionRun, f64), YallaError> {
    let start = Instant::now();
    let run = session.rerun()?;
    Ok((run, start.elapsed().as_secs_f64() * 1e6))
}

fn main() {
    let mut records = Vec::new();
    let mut failures = 0usize;
    println!(
        "{:<10} {:>12} {:>12} {:>14}  warm speedup",
        "subject", "cold (µs)", "warm (µs)", "warm+edit (µs)"
    );
    for subject in all_subjects() {
        let options = Options {
            header: subject.header.clone(),
            sources: subject.sources.clone(),
            ..Options::default()
        };
        let mut session = Session::new(options, subject.vfs.clone());
        let (cold, cold_us) = match timed(&mut session) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: cold run failed: {e}", subject.name);
                failures += 1;
                continue;
            }
        };
        let (warm, warm_us) = match timed(&mut session) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: warm run failed: {e}", subject.name);
                failures += 1;
                continue;
            }
        };
        assert!(
            warm.fully_cached() && warm.files_reparsed == 0,
            "{}: no-op rerun must be fully cached",
            subject.name
        );

        // Trailing comment on the main source: reparse, same used set.
        let main = &subject.main_source;
        let id = session.vfs().lookup(main).expect("main source exists");
        let edited = format!("{}\n// bench tweak\n", session.vfs().text(id));
        session.apply_edit(main, edited).expect("edit applies");
        let (edit, edit_us) = match timed(&mut session) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: warm-edit run failed: {e}", subject.name);
                failures += 1;
                continue;
            }
        };

        if warm_us >= cold_us {
            eprintln!(
                "{}: warm rerun ({warm_us:.0} µs) not below cold ({cold_us:.0} µs)",
                subject.name
            );
            failures += 1;
        }
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>14.0}  {:>6.0}x  (edit reparsed {})",
            subject.name,
            cold_us,
            warm_us,
            edit_us,
            cold_us / warm_us.max(1.0),
            edit.files_reparsed,
        );
        records.push(record(
            subject.name,
            "tool-cold",
            &cold.result.timings,
            cold_us,
        ));
        records.push(record(
            subject.name,
            "tool-warm",
            &warm.result.timings,
            warm_us,
        ));
        records.push(record(
            subject.name,
            "tool-warm-edit",
            &edit.result.timings,
            edit_us,
        ));
    }

    match write_records(std::path::Path::new("results"), "warm", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write results: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} failure(s)");
        std::process::exit(1);
    }
}
