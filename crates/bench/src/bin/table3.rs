//! Regenerates **Table 3** of the paper: lines of code and headers
//! entering each subject's translation unit before and after YALLA.
//!
//! Usage: `table3 [--csv <path>]`

use yalla_bench::harness::evaluate_all;
use yalla_sim::CompilerProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    let profile = CompilerProfile::clang();

    println!("Table 3: code statistics before and after applying YALLA");
    println!(
        "{:<24} {:>13} {:>11} {:>16} {:>14}",
        "File", "Default LOCs", "Yalla LOCs", "Default Headers", "Yalla Headers"
    );
    let mut csv = String::from("file,default_locs,yalla_locs,default_headers,yalla_headers\n");
    for eval in evaluate_all(&profile) {
        let eval = match eval {
            Ok(e) => e,
            Err(e) => {
                eprintln!("SKIP {e}");
                continue;
            }
        };
        println!(
            "{:<24} {:>13} {:>11} {:>16} {:>14}",
            eval.name,
            eval.default.work.lines,
            eval.yalla.work.lines,
            eval.default.work.headers,
            eval.yalla.work.headers
        );
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            eval.name,
            eval.default.work.lines,
            eval.yalla.work.lines,
            eval.default.work.headers,
            eval.yalla.work.headers
        ));
    }
    println!("\n(paper, 02 row: 111301 -> 77 LOCs, 581 -> 2 headers)");
    if let Some(path) = csv_path {
        std::fs::write(&path, csv).expect("write csv");
        println!("wrote {path}");
    }
}
