//! Mega-corpus bench: cold/warm wall-clock and peak resident bytes for
//! the generated 1k–10k-file project trees at 1, 2, and 8 workers.
//!
//! For every preset (`mega-1k`, `mega-4k`, `mega-10k`) and worker count
//! the bench runs a cold session (every TU parses) and an immediate warm
//! rerun (everything hits), recording wall-clock, total parse work, the
//! parse critical path (longest single-TU parse), and the parse cache's
//! peak resident bytes. It then replays the preset under a deliberately
//! tiny `--mem-budget` and asserts the artifacts stay byte-identical to
//! the unbounded run while `cache.evictions` climbs — eviction is a
//! memory knob, never a correctness knob.
//!
//! Parse *scaling* is reported two ways: the measured cold wall ratio,
//! and a work/critical-path model `total_parse / max(longest_parse,
//! total_parse / workers)` — the measured ratio collapses to ~1x on
//! single-core hosts (CI containers), so the model records what the DAG
//! exposes while `host_cpus` records what the host could exploit. The
//! acceptance bound (>=2x modeled parse speedup at 8 workers on
//! mega-4k) checks the *shape* of the fan-out, not the host.
//!
//! Writes `results/BENCH_mega.json`. Flags: `--smoke` (mega-1k only,
//! workers 1/2, for the CI 120 s budget), `--preset NAME`, `--slo
//! slo.toml` (checks the mega-1k cold wall at 1 worker against
//! `[slo.mega-1k-cold]`), `--event-log PATH` (stage-level event log,
//! uploaded by CI when the smoke fails).

use std::path::Path;
use std::time::Instant;

use yalla_bench::results::{write_records, RunRecord};
use yalla_bench::slo::Slo;
use yalla_core::{Options, Session, SessionRun, YallaError};
use yalla_cpp::cache;
use yalla_cpp::vfs::Vfs;
use yalla_exec::Executor;
use yalla_fuzz::{MegaConfig, MegaProject};
use yalla_obs::metrics::names;

/// Worker counts the full bench sweeps.
const WORKERS: &[usize] = &[1, 2, 8];
/// Budget for the eviction pass: small enough that every preset's
/// resident set blows through it many times over.
const TINY_BUDGET: u64 = 256 * 1024;

/// FNV-64 over every artifact a run produces — the byte-identity
/// fingerprint compared across worker counts and budget settings.
fn artifact_hash(run: &SessionRun) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(run.result.lightweight_header.as_bytes());
    eat(run.result.wrappers_file.as_bytes());
    for (path, text) in &run.result.rewritten_sources {
        eat(path.as_bytes());
        eat(text.as_bytes());
    }
    h
}

struct Timed {
    run: SessionRun,
    wall_us: f64,
}

fn timed(session: &mut Session, exec: &Executor) -> Result<Timed, YallaError> {
    let start = Instant::now();
    let run = session.rerun_on(exec)?;
    Ok(Timed {
        run,
        wall_us: start.elapsed().as_secs_f64() * 1e6,
    })
}

fn evictions() -> i64 {
    yalla_obs::global()
        .metrics()
        .counter(names::CACHE_EVICTIONS)
        .get()
}

/// One preset's full sweep: cold+warm at each worker count, then the
/// tiny-budget eviction pass. Returns the records plus the mega-4k
/// modeled 8-worker parse speedup (for the acceptance bound).
fn run_preset(
    preset: &str,
    workers: &[usize],
    records: &mut Vec<RunRecord>,
    failures: &mut usize,
) -> Option<f64> {
    let cfg = MegaConfig::preset(preset).expect("known preset");
    let project = MegaProject::generate(&cfg);
    let (vfs, options) = project.render();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "{preset}: {} files ({} shared headers, {} private, {} TUs)",
        project.file_count(),
        project.shared_headers,
        project.private_headers,
        project.tus.len()
    );

    let mut baseline_hash: Option<u64> = None;
    let mut speedup_8w = None;
    for &w in workers {
        let exec = Executor::new(w);
        cache::reset_peak_resident();
        let mut session = session_for(&options, &vfs);
        let cold = match timed(&mut session, &exec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{preset} w{w}: cold run failed: {e}");
                *failures += 1;
                continue;
            }
        };
        let peak = cache::peak_bytes_resident();
        let warm = match timed(&mut session, &exec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{preset} w{w}: warm rerun failed: {e}");
                *failures += 1;
                continue;
            }
        };
        if !warm.run.fully_cached() {
            eprintln!("{preset} w{w}: warm rerun was not fully cached");
            *failures += 1;
        }
        let hash = artifact_hash(&cold.run);
        match baseline_hash {
            None => baseline_hash = Some(hash),
            Some(base) if base != hash => {
                eprintln!("{preset} w{w}: artifacts differ from 1-worker run");
                *failures += 1;
            }
            Some(_) => {}
        }

        let parse_us = cold.run.result.timings.parse.as_secs_f64() * 1e6;
        let longest_us = cold.run.parse_longest.as_secs_f64() * 1e6;
        // Work/critical-path model: W workers can't beat the longest
        // single TU parse, nor do better than an even split of the work.
        let model_us = longest_us.max(parse_us / w as f64).max(1.0);
        let model_speedup = parse_us / model_us;
        if preset == "mega-4k" && w == 8 {
            speedup_8w = Some(model_speedup);
        }
        println!(
            "  w{w}: cold {:>9.0} us  warm {:>7.0} us  parse {:>9.0} us \
             (longest {:>8.0} us, modeled {model_speedup:.2}x)  peak {:>6} KiB",
            cold.wall_us,
            warm.wall_us,
            parse_us,
            longest_us,
            peak / 1024,
        );
        records.push(RunRecord {
            subject: preset.to_string(),
            config: format!("cold-w{w}"),
            phase_us: vec![
                ("wall".to_string(), cold.wall_us),
                ("parse".to_string(), parse_us),
                ("parse_longest".to_string(), longest_us),
                ("parse_model".to_string(), model_us),
                ("peak_resident_bytes".to_string(), peak as f64),
                ("host_cpus".to_string(), host_cpus as f64),
            ],
        });
        records.push(RunRecord {
            subject: preset.to_string(),
            config: format!("warm-w{w}"),
            phase_us: vec![("wall".to_string(), warm.wall_us)],
        });
    }

    // Eviction pass: same preset, tiny budget, must stay byte-identical.
    cache::set_mem_budget(Some(TINY_BUDGET));
    cache::reset_peak_resident();
    let before = evictions();
    let exec = Executor::new(1);
    let mut session = session_for(&options, &vfs);
    let outcome = timed(&mut session, &exec);
    drop(session);
    cache::set_mem_budget(None);
    match outcome {
        Ok(t) => {
            let evicted = evictions() - before;
            let peak = cache::peak_bytes_resident();
            if Some(artifact_hash(&t.run)) != baseline_hash {
                eprintln!("{preset}: tiny-budget artifacts differ from unbounded run");
                *failures += 1;
            }
            if evicted == 0 {
                eprintln!("{preset}: tiny budget evicted nothing");
                *failures += 1;
            }
            if peak > TINY_BUDGET.saturating_mul(4) {
                eprintln!("{preset}: peak {peak} B far above the {TINY_BUDGET} B budget");
                *failures += 1;
            }
            println!(
                "  eviction: cold {:>9.0} us under {} KiB budget, {evicted} evictions, \
                 peak {} KiB, artifacts byte-identical",
                t.wall_us,
                TINY_BUDGET / 1024,
                peak / 1024,
            );
            records.push(RunRecord {
                subject: preset.to_string(),
                config: "cold-w1-tiny-budget".to_string(),
                phase_us: vec![
                    ("wall".to_string(), t.wall_us),
                    ("evictions".to_string(), evicted as f64),
                    ("peak_resident_bytes".to_string(), peak as f64),
                ],
            });
        }
        Err(e) => {
            eprintln!("{preset}: tiny-budget run failed: {e}");
            *failures += 1;
        }
    }
    speedup_8w
}

fn session_for(options: &Options, vfs: &Vfs) -> Session {
    // No store: every cold run must actually pay for parsing, and runs
    // must not warm each other through a shared disk tier.
    Session::with_store(options.clone(), vfs.clone(), None)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut preset_filter: Option<String> = None;
    let mut slo_path: Option<String> = None;
    let mut event_log: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--preset" => {
                i += 1;
                preset_filter = Some(args.get(i).expect("--preset NAME").clone());
            }
            "--slo" => {
                i += 1;
                slo_path = Some(args.get(i).expect("--slo PATH").clone());
            }
            "--event-log" => {
                i += 1;
                event_log = Some(args.get(i).expect("--event-log PATH").clone());
            }
            other => {
                eprintln!(
                    "unknown flag {other} (expected --smoke, --preset NAME, --slo PATH, \
                     --event-log PATH)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = &event_log {
        yalla_obs::enable();
        if let Err(e) = yalla_obs::log::init_file(Path::new(path)) {
            eprintln!("opening event log {path}: {e}");
            std::process::exit(2);
        }
    }

    let presets: Vec<&str> = match &preset_filter {
        Some(name) => {
            if MegaConfig::preset(name).is_none() {
                eprintln!(
                    "unknown preset {name} (have {:?})",
                    MegaConfig::preset_names()
                );
                std::process::exit(2);
            }
            vec![MegaConfig::preset_names()
                .iter()
                .find(|p| *p == name)
                .copied()
                .unwrap()]
        }
        None if smoke => vec!["mega-1k"],
        None => MegaConfig::preset_names().to_vec(),
    };
    let workers: &[usize] = if smoke { &[1, 2] } else { WORKERS };

    let mut records = Vec::new();
    let mut failures = 0usize;
    let mut mega4k_speedup = None;
    for preset in &presets {
        if let Some(s) = run_preset(preset, workers, &mut records, &mut failures) {
            mega4k_speedup = Some(s);
        }
    }

    if let Some(speedup) = mega4k_speedup {
        if speedup < 2.0 {
            eprintln!("mega-4k modeled parse speedup at 8 workers {speedup:.2}x < 2x bound");
            failures += 1;
        } else {
            println!("mega-4k modeled parse speedup at 8 workers: {speedup:.2}x (bound 2x)");
        }
    }

    if let Some(path) = slo_path {
        let slo = match Slo::load(Path::new(&path)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("loading {path}: {e}");
                std::process::exit(2);
            }
        };
        let measured: Vec<(String, String, u64)> = records
            .iter()
            .filter(|r| r.config == "cold-w1")
            .filter_map(|r| {
                let wall = r.phase_us.iter().find(|(k, _)| k == "wall")?.1;
                Some((format!("{}-cold", r.subject), r.config.clone(), wall as u64))
            })
            .collect();
        for v in slo.check(&measured) {
            eprintln!("{v}");
            failures += 1;
        }
        println!("SLO check against {path}: {} class(es)", measured.len());
    }

    match write_records(Path::new("results"), "mega", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("writing results: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} failure(s)");
        std::process::exit(1);
    }
}
