//! Client-observed request latency per request class (`yalla serve`).
//!
//! Drives a `yalla serve` daemon over its real Unix socket and measures
//! what a *client* waits per request — not the server-side stage spans —
//! classified by request class (`open`, `edit`, `rerun`, `get`,
//! `status`). Each client walks its share of the corpus subjects through
//! the development cycle: one `open` (cold pipeline), then steady-state
//! `edit`→`rerun` iterations, a few artifact `get`s, and one `status`.
//! Unlike the throughput bench no modeled build latency is injected —
//! this bench measures the tool and daemon themselves.
//!
//! Two configurations run back to back, cold each time:
//!
//! * **clients1** — 1 client, 1 executor worker (no contention);
//! * **clients8** — 8 clients, 8 executor workers (contended tails).
//!
//! Per configuration the samples feed the same log-bucketed histograms
//! the daemon exports (`yalla_obs::Histogram`), and the report prints
//! P50/P95/P99 per class. Writes `results/BENCH_latency.json` with one
//! record per subject and configuration plus `corpus` aggregates.
//!
//! With `--slo <slo.toml>` every per-class aggregate P99 is checked
//! against its pinned bound and the run exits non-zero on a violation —
//! the CI latency gate. `--subjects N` trims the corpus for smoke runs;
//! `--event-log <path>` streams the daemon's JSONL span log for
//! post-mortem joins when the gate fails.

#[cfg(not(unix))]
fn main() {
    eprintln!("the latency bench drives a Unix-socket daemon; unix only");
}

#[cfg(unix)]
fn main() {
    imp::main();
}

#[cfg(unix)]
mod imp {
    use std::collections::BTreeMap;
    use std::os::unix::net::UnixStream;
    use std::path::{Path, PathBuf};
    use std::time::Instant;

    use yalla_bench::results::{write_records, RunRecord};
    use yalla_bench::slo::Slo;
    use yalla_core::serve::{client_request, Server};
    use yalla_corpus::{all_subjects, Subject};
    use yalla_exec::Executor;
    use yalla_obs::chrome::escape_json;
    use yalla_obs::json::JsonValue;
    use yalla_obs::{Histogram, HistogramSnapshot};

    /// Steady-state `edit`→`rerun` pairs per subject (after the cold open).
    const ITERATIONS: usize = 8;
    /// Artifact `get` requests per subject.
    const GETS: usize = 4;
    /// Clients (and workers) in the contended configuration.
    const FLEET: usize = 8;

    const USAGE: &str =
        "usage: latency [--subjects N] [--slo <slo.toml>] [--event-log <OUT.jsonl>]";

    /// One measured request: subject, request class, client-observed µs.
    type Sample = (&'static str, &'static str, u64);

    struct Workload {
        subject: &'static str,
        /// `(class, request-line)` in script order.
        script: Vec<(&'static str, String)>,
    }

    fn workload(subject: &Subject) -> Workload {
        let mut files = Vec::new();
        for (id, _) in subject.vfs.iter() {
            files.push(format!(
                "\"{}\": \"{}\"",
                escape_json(subject.vfs.path(id)),
                escape_json(subject.vfs.text(id))
            ));
        }
        let sources: Vec<String> = subject.sources.iter().map(|s| format!("\"{s}\"")).collect();
        let mut script = vec![(
            "open",
            format!(
                "{{\"op\": \"open\", \"project\": \"{}\", \"header\": \"{}\", \
                 \"sources\": [{}], \"files\": {{{}}}}}",
                subject.name,
                escape_json(&subject.header),
                sources.join(", "),
                files.join(", ")
            ),
        )];
        let main_id = subject
            .vfs
            .lookup(&subject.main_source)
            .unwrap_or_else(|| panic!("{}: no main source", subject.name));
        // Same-content edits: §6's common case, so warm reruns revalidate.
        let main_text = subject.vfs.text(main_id).to_string();
        let rerun = format!("{{\"op\": \"rerun\", \"project\": \"{}\"}}", subject.name);
        for _ in 0..ITERATIONS {
            script.push((
                "edit",
                format!(
                    "{{\"op\": \"edit\", \"project\": \"{}\", \"path\": \"{}\", \"text\": \"{}\"}}",
                    subject.name,
                    escape_json(&subject.main_source),
                    escape_json(&main_text)
                ),
            ));
            script.push(("rerun", rerun.clone()));
        }
        for _ in 0..GETS {
            script.push((
                "get",
                format!(
                    "{{\"op\": \"get\", \"project\": \"{}\", \"artifact\": \"lightweight\"}}",
                    subject.name
                ),
            ));
        }
        script.push(("status", "{\"op\": \"status\"}".to_string()));
        Workload {
            subject: subject.name,
            script,
        }
    }

    fn connect(path: &Path) -> UnixStream {
        for _ in 0..200 {
            if let Ok(s) = UnixStream::connect(path) {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("could not connect to {}", path.display());
    }

    /// Runs one client's scripts; every request becomes one [`Sample`].
    fn run_client(socket: &Path, group: &[Workload]) -> Vec<Sample> {
        let mut stream = connect(socket);
        let mut samples = Vec::new();
        for w in group {
            for (class, request) in &w.script {
                let start = Instant::now();
                let r = client_request(&mut stream, request)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.subject));
                let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                assert!(
                    r.get("ok") == Some(&JsonValue::Bool(true)),
                    "{}: rejected: {r:?}",
                    w.subject
                );
                samples.push((w.subject, *class, us));
            }
        }
        samples
    }

    /// One full cold pass: fresh daemon, `workers` executor workers, one
    /// client thread per group.
    fn run_config(tag: &str, workers: usize, groups: Vec<Vec<Workload>>) -> Vec<Sample> {
        let socket =
            std::env::temp_dir().join(format!("yalla-latency-{tag}-{}.sock", std::process::id()));
        let server = Server::start(&socket, Executor::new(workers)).expect("start daemon");
        let mut handles = Vec::new();
        for group in groups {
            let socket = socket.clone();
            handles.push(std::thread::spawn(move || run_client(&socket, &group)));
        }
        let mut samples = Vec::new();
        for handle in handles {
            samples.extend(handle.join().expect("client thread"));
        }
        let mut stream = connect(&socket);
        let _ = client_request(&mut stream, "{\"op\": \"shutdown\"}");
        server.join();
        samples
    }

    /// Round-robin split into `n` client groups.
    fn split(loads: Vec<Workload>, n: usize) -> Vec<Vec<Workload>> {
        let mut groups: Vec<Vec<Workload>> = (0..n).map(|_| Vec::new()).collect();
        for (i, load) in loads.into_iter().enumerate() {
            groups[i % n].push(load);
        }
        groups.retain(|g| !g.is_empty());
        groups
    }

    /// Histograms per key, fed from samples.
    fn histograms(
        samples: &[Sample],
        key: impl Fn(&Sample) -> String,
    ) -> BTreeMap<String, HistogramSnapshot> {
        let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
        for sample in samples {
            hists.entry(key(sample)).or_default().record(sample.2);
        }
        hists.into_iter().map(|(k, h)| (k, h.snapshot())).collect()
    }

    fn quantile_entries(class: &str, snap: &HistogramSnapshot) -> Vec<(String, f64)> {
        vec![
            (format!("{class}.p50"), snap.quantile(0.50) as f64),
            (format!("{class}.p95"), snap.quantile(0.95) as f64),
            (format!("{class}.p99"), snap.quantile(0.99) as f64),
            (format!("{class}.count"), snap.count as f64),
        ]
    }

    pub(super) fn main() {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut subjects_cap: Option<usize> = None;
        let mut slo_path: Option<PathBuf> = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> String {
                it.next()
                    .cloned()
                    .unwrap_or_else(|| panic!("{name} needs a value\n{USAGE}"))
            };
            match arg.as_str() {
                "--subjects" => {
                    subjects_cap = Some(
                        value("--subjects")
                            .parse()
                            .unwrap_or_else(|e| panic!("bad --subjects: {e}")),
                    );
                }
                "--slo" => slo_path = Some(PathBuf::from(value("--slo"))),
                "--event-log" => {
                    let path = PathBuf::from(value("--event-log"));
                    yalla_obs::log::init_file(&path)
                        .unwrap_or_else(|e| panic!("opening event log {}: {e}", path.display()));
                }
                "--help" | "-h" => {
                    println!("{USAGE}");
                    return;
                }
                other => panic!("unknown argument `{other}`\n{USAGE}"),
            }
        }
        let slo = slo_path.map(|p| Slo::load(&p).unwrap_or_else(|e| panic!("{e}")));

        let subjects = all_subjects();
        let take = subjects_cap.unwrap_or(subjects.len()).min(subjects.len());
        let build = || subjects.iter().take(take).map(workload).collect::<Vec<_>>();

        println!("clients1 pass (1 client, 1 worker, {take} subject(s))...");
        let seq = run_config("seq", 1, vec![build()]);
        println!("clients8 pass ({FLEET} clients, {FLEET} workers, {take} subject(s))...");
        let par = run_config("par", FLEET, split(build(), FLEET));

        let mut records = Vec::new();
        let mut measured = Vec::new();
        println!(
            "\n{:<10} {:<9} {:>7} {:>12} {:>12} {:>12}",
            "config", "class", "count", "p50 (us)", "p95 (us)", "p99 (us)"
        );
        for (config, samples) in [("clients1", &seq), ("clients8", &par)] {
            // Corpus-wide per-class aggregates: the printed table, the
            // `corpus` records, and the SLO gate.
            let by_class = histograms(samples, |s| s.1.to_string());
            let mut corpus_entries = Vec::new();
            for (class, snap) in &by_class {
                println!(
                    "{config:<10} {class:<9} {:>7} {:>12} {:>12} {:>12}",
                    snap.count,
                    snap.quantile(0.50),
                    snap.quantile(0.95),
                    snap.quantile(0.99)
                );
                corpus_entries.extend(quantile_entries(class, snap));
                measured.push((class.clone(), config.to_string(), snap.quantile(0.99)));
            }
            records.push(RunRecord {
                subject: "corpus".to_string(),
                config: config.to_string(),
                phase_us: corpus_entries,
            });
            // Per-subject per-class quantiles.
            let by_subject_class = histograms(samples, |s| format!("{}\u{0}{}", s.0, s.1));
            let mut per_subject: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
            for (key, snap) in &by_subject_class {
                let (subject, class) = key.split_once('\u{0}').expect("joined key");
                per_subject
                    .entry(subject.to_string())
                    .or_default()
                    .extend(quantile_entries(class, snap));
            }
            for (subject, entries) in per_subject {
                records.push(RunRecord {
                    subject,
                    config: config.to_string(),
                    phase_us: entries,
                });
            }
        }

        let out =
            write_records(&PathBuf::from("results"), "latency", &records).expect("write results");
        println!("\nwrote {}", out.display());
        yalla_obs::log::flush();

        if let Some(slo) = slo {
            let violations = slo.check(&measured);
            for v in &violations {
                eprintln!("{v}");
            }
            if !violations.is_empty() {
                std::process::exit(1);
            }
            println!(
                "SLO check passed: {} class bound(s), {} measurement(s)",
                slo.len(),
                measured.len()
            );
        }
    }
}
