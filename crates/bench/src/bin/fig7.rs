//! Regenerates **Figure 7** of the paper: time spent in the compiler's
//! frontend and backend phases for the `02` and `drawing` subjects under
//! the default, PCH, and YALLA configurations. Also dumps Chrome-trace
//! JSON files (the artifact's `results/traces/` equivalents) when given
//! `--traces <dir>`.

use yalla_bench::harness::{evaluate_subject, phase_row};
use yalla_bench::results::{records_for, write_records};
use yalla_corpus::subject_by_name;
use yalla_sim::trace::Trace;
use yalla_sim::CompilerProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_dir = args
        .iter()
        .position(|a| a == "--traces")
        .and_then(|i| args.get(i + 1).cloned());
    let profile = CompilerProfile::clang();
    let mut records = Vec::new();

    for name in ["02", "drawing"] {
        let subject = subject_by_name(name).expect("subject exists");
        let eval = match evaluate_subject(&subject, &profile) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("SKIP {e}");
                continue;
            }
        };
        println!("Figure 7: {name} subject — compilation phase breakdown");
        println!("  {}", phase_row("default", &eval.default.phases));
        println!("  {}", phase_row("pch", &eval.pch.phases));
        println!("  {}", phase_row("yalla", &eval.yalla.phases));
        // The two claims of §5.3, checked in-band:
        let pch_backend_same =
            (eval.pch.phases.backend_ms() - eval.default.phases.backend_ms()).abs() < 1e-6;
        println!(
            "  -> PCH backend identical to default: {}",
            if pch_backend_same { "yes" } else { "NO" }
        );
        println!(
            "  -> YALLA reduces both frontend ({:.1}x) and backend ({:.1}x)",
            eval.default.phases.frontend_ms() / eval.yalla.phases.frontend_ms().max(0.001),
            eval.default.phases.backend_ms() / eval.yalla.phases.backend_ms().max(0.001),
        );
        println!();

        records.extend(records_for(&eval));

        if let Some(dir) = &trace_dir {
            std::fs::create_dir_all(dir).expect("create trace dir");
            // Each configuration gets its own pid track (labelled via a
            // metadata event), so the merged file shows the three builds
            // side by side in the viewer.
            let mut traces = Vec::new();
            for (pid, (mode, phases)) in [
                ("default", &eval.default.phases),
                ("pch", &eval.pch.phases),
                ("yalla", &eval.yalla.phases),
            ]
            .into_iter()
            .enumerate()
            {
                let mut t = Trace::for_process(pid as u32 + 1, &format!("config={mode}"));
                t.push_compile(name, phases);
                let path = format!("{dir}/{name}-{mode}.json");
                std::fs::write(&path, t.to_json()).expect("write trace");
                println!("  wrote {path}");
                traces.push(t);
            }
            let merged = format!("{dir}/{name}-all.json");
            std::fs::write(&merged, Trace::merged_json(&traces)).expect("write trace");
            println!("  wrote {merged}");
        }
    }

    match write_records(std::path::Path::new("results"), "fig7", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
